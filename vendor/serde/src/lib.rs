//! Offline vendored subset of the `serde` API.
//!
//! The workspace derives `Serialize` / `Deserialize` on result and config
//! structs so downstream consumers can plug in a real serializer, but no
//! code in-tree ever drives the serde data model (persistence uses the
//! compact binary format in `etsb-tensor::serialize`). With crates.io
//! unreachable from the build container, these marker traits and a
//! matching derive are all the workspace needs to compile.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker for types whose serialized form is defined by the workspace.
///
/// The vendored trait carries no methods; deriving it records intent and
/// keeps signatures source-compatible with upstream serde.
pub trait Serialize {}

/// Marker for types that can be reconstructed from serialized form.
///
/// See [`Serialize`] for why the vendored trait carries no methods.
pub trait Deserialize<'de>: Sized {}
