//! Derive macros for the vendored `serde` marker traits.
//!
//! Written against `proc_macro` alone (no `syn`/`quote`, which are
//! unreachable offline). The macros locate the `struct`/`enum` name and
//! its generic parameters by token inspection and emit an empty trait
//! impl — sufficient because the vendored traits carry no methods.

use proc_macro::{TokenStream, TokenTree};

/// Name plus generic parameter lists extracted from a type definition.
struct TypeHeader {
    name: String,
    /// Parameter list with bounds, e.g. `<T: Clone, const N: usize>`.
    params: String,
    /// Argument list without bounds, e.g. `<T, N>`.
    args: String,
}

/// Scan the item's tokens for `struct`/`enum`, returning the type name and
/// its generics (bounds stripped for the argument position).
fn parse_header(input: TokenStream) -> TypeHeader {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if *id.to_string() == *"struct" || *id.to_string() == *"enum" => {
                break;
            }
            // Skip attribute bodies and doc comments wholesale.
            _ => i += 1,
        }
    }
    let name = match tokens.get(i + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected type name after struct/enum, found {other:?}"),
    };
    // Generics: a `<` punct immediately after the name.
    let mut params = String::new();
    let mut args = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i + 2) {
        if p.as_char() == '<' {
            let mut depth = 1usize;
            let mut j = i + 3;
            let mut raw: Vec<TokenTree> = Vec::new();
            while j < tokens.len() && depth > 0 {
                if let TokenTree::Punct(p) = &tokens[j] {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                raw.push(tokens[j].clone());
                j += 1;
            }
            params = format!("<{}>", tokens_to_string(&raw));
            args = format!("<{}>", strip_bounds(&raw));
        }
    }
    TypeHeader { name, params, args }
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    tokens
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Reduce `T: Clone + Send, 'a, const N: usize` to `T, 'a, N` for the
/// argument position of the emitted impl.
fn strip_bounds(tokens: &[TokenTree]) -> String {
    let mut out: Vec<String> = Vec::new();
    let mut depth = 0usize;
    let mut current: Vec<String> = Vec::new();
    let mut in_bounds = false;
    let mut is_const = false;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' || p.as_char() == '(' => {
                depth += 1;
            }
            TokenTree::Punct(p) if p.as_char() == '>' || p.as_char() == ')' => {
                depth = depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if let Some(first) = param_name(&current, is_const) {
                    out.push(first);
                }
                current.clear();
                in_bounds = false;
                is_const = false;
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == ':' && depth == 0 => {
                in_bounds = true;
                continue;
            }
            TokenTree::Ident(id) if depth == 0 && !in_bounds && id.to_string() == "const" => {
                is_const = true;
                continue;
            }
            _ => {}
        }
        if !in_bounds {
            current.push(t.to_string());
        }
    }
    if let Some(first) = param_name(&current, is_const) {
        out.push(first);
    }
    out.join(", ")
}

/// First meaningful token of a generic parameter: the name (with a
/// leading `'` glued back on for lifetimes).
fn param_name(parts: &[String], _is_const: bool) -> Option<String> {
    if parts.is_empty() {
        return None;
    }
    if parts[0] == "'" && parts.len() > 1 {
        return Some(format!("'{}", parts[1]));
    }
    Some(parts[0].clone())
}

/// Derive the vendored `serde::Serialize` marker for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let h = parse_header(input);
    format!(
        "impl {params} serde::Serialize for {name} {args} {{}}",
        params = h.params,
        name = h.name,
        args = h.args
    )
    .parse()
    .expect("derive(Serialize): generated impl must parse")
}

/// Derive the vendored `serde::Deserialize` marker for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let h = parse_header(input);
    let params = if h.params.is_empty() {
        "<'de>".to_string()
    } else {
        format!("<'de, {}", &h.params[1..])
    };
    format!(
        "impl {params} serde::Deserialize<'de> for {name} {args} {{}}",
        params = params,
        name = h.name,
        args = h.args
    )
    .parse()
    .expect("derive(Deserialize): generated impl must parse")
}
