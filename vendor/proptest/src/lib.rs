//! Offline vendored subset of the `proptest` API.
//!
//! Implements the surface the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, numeric range
//! strategies, tuple strategies, `collection::vec`, a character-class
//! regex string generator, `any::<T>()`, the `proptest!` macro and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! deterministic case index instead of a minimized input), and the case
//! stream is a pure function of the test name and case index, so
//! failures reproduce exactly across runs and machines.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, Standard};

#[doc(hidden)]
pub use rand;

/// Runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// FNV-1a over the test name: decorrelates the RNG streams of different
/// properties while keeping each stream stable across runs.
pub fn seed_for(test_name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Generator of test-case values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// Type of value the strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl<T: SampleUniform + Clone> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + Clone> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// Strategy that always yields a clone of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical strategy, mirroring `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Construct the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy behind [`any`]: samples the type's canonical distribution.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Standard> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = Any<$t>;

            fn arbitrary() -> Any<$t> {
                Any { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

impl_arbitrary_via_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed size or a range.
    pub trait IntoSizeRange {
        /// Draw a concrete length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy yielding vectors of `element`-generated values.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector of values from `element`, with length drawn from `len`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// String strategies, mirroring `proptest::string`.
pub mod string {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Error from an unsupported or malformed pattern.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "string_regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// One regex atom: the characters it may yield and its repetition.
    struct Atom {
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Strategy yielding strings matching a character-class regex.
    pub struct RegexGeneratorStrategy {
        atoms: Vec<Atom>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let n = rng.gen_range(atom.min..=atom.max);
                for _ in 0..n {
                    out.push(atom.choices[rng.gen_range(0..atom.choices.len())]);
                }
            }
            out
        }
    }

    /// Build a string strategy from a regex. Supports the subset the
    /// workspace uses: literal characters, escapes, character classes
    /// with ranges, and `{m}` / `{m,n}` quantifiers.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let mut chars = pattern.chars().peekable();
        let mut atoms: Vec<Atom> = Vec::new();
        while let Some(c) = chars.next() {
            let choices = match c {
                '[' => parse_class(&mut chars)?,
                '\\' => vec![unescape(
                    chars
                        .next()
                        .ok_or_else(|| Error("dangling escape".into()))?,
                )],
                '{' | '}' | ']' => return Err(Error(format!("unexpected `{c}`"))),
                c => vec![c],
            };
            let (min, max) = parse_quantifier(&mut chars)?;
            atoms.push(Atom { choices, min, max });
        }
        Ok(RegexGeneratorStrategy { atoms })
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            c => c,
        }
    }

    fn parse_class(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Result<Vec<char>, Error> {
        let mut members: Vec<char> = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            let c = chars
                .next()
                .ok_or_else(|| Error("unterminated class".into()))?;
            match c {
                ']' => {
                    members.extend(pending.take());
                    break;
                }
                '-' if pending.is_some() && chars.peek() != Some(&']') => {
                    let lo = pending.take().expect("checked above");
                    let hi = match chars.next() {
                        Some('\\') => unescape(
                            chars
                                .next()
                                .ok_or_else(|| Error("dangling escape".into()))?,
                        ),
                        Some(c) => c,
                        None => return Err(Error("unterminated class".into())),
                    };
                    if (hi as u32) < (lo as u32) {
                        return Err(Error(format!("inverted range {lo}-{hi}")));
                    }
                    members.extend((lo as u32..=hi as u32).filter_map(char::from_u32));
                }
                '\\' => {
                    members.extend(pending.take());
                    pending = Some(unescape(
                        chars
                            .next()
                            .ok_or_else(|| Error("dangling escape".into()))?,
                    ));
                }
                c => {
                    members.extend(pending.take());
                    pending = Some(c);
                }
            }
        }
        if members.is_empty() {
            return Err(Error("empty character class".into()));
        }
        Ok(members)
    }

    fn parse_quantifier(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Result<(usize, usize), Error> {
        if chars.peek() != Some(&'{') {
            return Ok((1, 1));
        }
        chars.next();
        let mut body = String::new();
        loop {
            match chars.next() {
                Some('}') => break,
                Some(c) => body.push(c),
                None => return Err(Error("unterminated quantifier".into())),
            }
        }
        let parse = |s: &str| {
            s.trim()
                .parse::<usize>()
                .map_err(|_| Error(format!("bad quantifier bound `{s}`")))
        };
        match body.split_once(',') {
            Some((lo, hi)) => {
                let (lo, hi) = (parse(lo)?, parse(hi)?);
                if hi < lo {
                    return Err(Error(format!("inverted quantifier {{{lo},{hi}}}")));
                }
                Ok((lo, hi))
            }
            None => {
                let n = parse(&body)?;
                Ok((n, n))
            }
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Assert a condition inside a property, mirroring `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Assert equality inside a property, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Assert inequality inside a property, mirroring `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Define property tests, mirroring the `proptest!` macro. Each property
/// runs `cases` deterministic cases; the case index is printed on panic
/// via the standard assertion message's source location.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..u64::from(__config.cases) {
                    let mut __rng =
                        <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                            $crate::seed_for(stringify!($name), __case),
                        );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::string::string_regex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = (1usize..5, -1.0f32..1.0).prop_map(|(n, x)| (n * 2, x));
        for _ in 0..200 {
            let (n, x) = strat.generate(&mut rng);
            assert!((2..10).contains(&n) && n % 2 == 0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn vec_respects_length_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let strat = crate::collection::vec(0u8..10, 3usize..7);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 10));
        }
    }

    #[test]
    fn string_regex_matches_class_and_quantifier() {
        let mut rng = StdRng::seed_from_u64(5);
        let strat = string_regex("[a-c]{2,4}").unwrap();
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            assert!((2..=4).contains(&s.chars().count()), "bad length: {s:?}");
            assert!(
                s.chars().all(|c| ('a'..='c').contains(&c)),
                "bad char: {s:?}"
            );
        }
        // The table-crate pattern: space-to-tilde range, unicode, quote, newline.
        let strat = string_regex("[ -~äöüé日,\"\n]{0,12}").unwrap();
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            assert!(s.chars().count() <= 12);
        }
    }

    #[test]
    fn string_regex_rejects_garbage() {
        assert!(string_regex("[a-").is_err());
        assert!(string_regex("a{2").is_err());
        assert!(string_regex("[z-a]").is_err());
    }

    #[test]
    fn flat_map_feeds_dependent_strategy() {
        let mut rng = StdRng::seed_from_u64(6);
        let strat = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u8..5, n));
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(a in 0usize..10, b in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert_eq!(b as usize <= 1, true);
        }
    }
}
