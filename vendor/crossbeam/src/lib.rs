//! Offline vendored subset of `crossbeam`.
//!
//! Only `crossbeam::channel::unbounded` is consumed (by the
//! data-parallel evaluation helpers in `etsb-nn`), so this vendored
//! version delegates to `std::sync::mpsc`, which provides the same
//! unbounded MPSC semantics for that use.

/// Multi-producer single-consumer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;

    /// Sending half; cloneable for fan-in from worker threads.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Error returned when the receiving half has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> Sender<T> {
        /// Send `value`; fails only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half; iterate to drain until all senders drop.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocking iterator over received values.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.iter()
        }
    }

    /// Channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_in_preserves_all_messages() {
        let (tx, rx) = channel::unbounded::<usize>();
        std::thread::scope(|scope| {
            for w in 0..4 {
                let tx = tx.clone();
                scope.spawn(move || {
                    for i in 0..25 {
                        tx.send(w * 25 + i).unwrap();
                    }
                });
            }
            drop(tx);
            let mut got: Vec<usize> = rx.into_iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        });
    }
}
