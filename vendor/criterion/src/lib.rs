//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! With crates.io unreachable, this crate keeps the workspace's bench
//! targets compiling and runnable. It is a smoke-test harness, not a
//! statistics engine: each benchmark body runs a fixed small number of
//! iterations and reports a coarse mean wall-clock time to stdout.

use std::time::Instant;

/// Iterations run per benchmark body; enough to amortize clock reads
/// while keeping `cargo bench` fast in CI.
const ITERS: u32 = 10;

/// Do not let the optimizer delete a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timer handed to benchmark closures, mirroring `criterion::Bencher`.
pub struct Bencher {
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    /// Time `f` over a fixed iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        self.last_ns = start.elapsed().as_nanos() as f64 / f64::from(ITERS);
    }
}

/// Benchmark identifier within a group, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name plus parameter, e.g. `plain/64`.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        self.parent.run_one(&label, f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.parent.run_one(&label, |b| f(b, input));
        self
    }

    /// Accepted for source compatibility; the vendored harness uses a
    /// fixed iteration count instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for source compatibility with the upstream builder.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, f);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            parent: self,
        }
    }

    fn run_one<F>(&mut self, label: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { last_ns: 0.0 };
        f(&mut b);
        println!("bench {label:<48} {:>12.0} ns/iter", b.last_ns);
    }
}

/// Declare a group of benchmark functions, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench binary entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
