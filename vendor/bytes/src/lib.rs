//! Offline vendored subset of the `bytes` crate.
//!
//! Implements the checkpoint codec's exact needs: an append-only
//! [`BytesMut`] builder, a cheaply cloneable read view [`Bytes`] whose
//! `get_*` calls consume from the front, and the [`Buf`]/[`BufMut`]
//! traits those methods live on. The storage is a plain `Arc<[u8]>`
//! rather than upstream's vtable machinery; semantics for the used
//! surface are identical.

use std::sync::Arc;

/// Read access to a byte cursor, mirroring `bytes::Buf`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// View of the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }

    /// Split off the first `len` bytes as an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(
            self.remaining() >= len,
            "copy_to_bytes: need {len} bytes, have {}",
            self.remaining()
        );
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }

    /// Fill `dst` from the front of the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice: need {} bytes, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Append access to a byte builder, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Growable byte buffer; freeze into [`Bytes`] when done writing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Ensure room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Copy the written bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Convert into an immutable, cheaply cloneable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::from(self.data.into_boxed_slice()),
            start: 0,
            end_offset: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Immutable shared byte view; reads consume from the front.
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    /// Bytes trimmed off the back relative to `data.len()`.
    end_offset: usize,
}

impl Bytes {
    /// View over a static slice (copied; the vendored version does not
    /// keep the `'static` borrow).
    pub fn from_static(src: &'static [u8]) -> Self {
        Bytes::copy_from_slice(src)
    }

    /// View over a copy of `src`.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: Arc::from(src),
            start: 0,
            end_offset: 0,
        }
    }

    /// Length of the unread view.
    pub fn len(&self) -> usize {
        self.data.len() - self.end_offset - self.start
    }

    /// Whether the view is exhausted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sub-view over `range` (relative to the current view), sharing
    /// storage with `self`.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice: range {range:?} out of bounds for view of {} bytes",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end_offset: self.data.len() - (self.start + range.end),
        }
    }

    fn view(&self) -> &[u8] {
        &self.data[self.start..self.data.len() - self.end_offset]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes {
            data: Arc::from(Vec::new().into_boxed_slice()),
            start: 0,
            end_offset: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.view()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.len(),
            "advance: {cnt} past end of view of {} bytes",
            self.len()
        );
        self.start += cnt;
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.view()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.view()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.view() == other.view()
    }
}

impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end_offset: 0,
        }
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(u64::MAX - 3);
        b.put_f32_le(1.5);
        b.put_f64_le(-2.25);
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_shares_storage_and_bounds() {
        let mut b = BytesMut::new();
        b.put_slice(&[1, 2, 3, 4, 5]);
        let full = b.freeze();
        let mut cut = full.slice(1..4);
        assert_eq!(cut.remaining(), 3);
        assert_eq!(cut.get_u8(), 2);
        assert_eq!(cut.as_ref(), &[3, 4]);
        // Original view is unaffected.
        assert_eq!(full.len(), 5);
    }

    #[test]
    #[should_panic(expected = "copy_to_slice")]
    fn truncated_read_panics() {
        let mut r = Bytes::copy_from_slice(&[1, 2]);
        let _ = r.get_u32_le();
    }
}
