//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build container has no network access to crates.io, so this crate
//! re-implements exactly the surface the workspace consumes: a seedable
//! `StdRng` (xoshiro256++ seeded via splitmix64), the `Rng` extension
//! trait (`gen_range`, `gen_bool`, `gen`), `SeedableRng::seed_from_u64`,
//! and `seq::SliceRandom` (`choose`, `shuffle`).
//!
//! Determinism is the point: every generator in the workspace is seeded
//! explicitly (enforced by `etsb-check`), and this implementation is a
//! pure function of the seed, so the paper's 10-repetition protocol is
//! bit-for-bit reproducible across machines.

/// Trait for RNGs that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// Create a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core random-number generator: raw word output.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[low, high)`; `high` is exclusive.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Sample uniformly from `[low, high]`; `high` is inclusive.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range {low}..{high}");
                let span = (high as i128 - low as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range {low}..={high}");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range {low}..{high}");
                // 53 uniform bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = low as f64 + (high as f64 - low as f64) * unit;
                if (v as $t) >= high { low } else { v as $t }
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range {low}..={high}");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                (low as f64 + (high as f64 - low as f64) * unit) as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_closed(rng, lo, hi)
    }
}

/// Values producible by the bare [`Rng::gen`] call.
pub trait Standard: Sized {
    /// Sample one value from the type's canonical distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) / (1u64 << 53) as f64
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} outside [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Sample from the type's canonical distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The workspace's standard generator: xoshiro256++ seeded via splitmix64.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// Sequence-related random operations, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices: uniform choice and Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f32 = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let c: u8 = rng.gen_range(0..26u8);
            assert!(c < 26);
            let inc: i64 = rng.gen_range(1..=28);
            assert!((1..=28).contains(&inc));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(13);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([5u8].choose(&mut rng) == Some(&5));
    }
}
