#!/bin/bash
# Regenerates the experiment artifacts recorded in EXPERIMENTS.md.
# Full paper protocol: add --paper to each line (10 runs, 120 epochs).
set -x
B=./target/release
$B/table3 --runs 2 --dataset rayyan --dataset tax --out results_table3b.csv
$B/table2 --out results_table2.csv
$B/table5 --runs 1 --out results_table5.csv
$B/fig6 --runs 2 --epochs 60 --dataset hospital --out results_fig6.csv
$B/fig7 --runs 2 --epochs 60 --dataset flights --dataset hospital --out results_fig7.csv
$B/ablation_sampling --runs 1 --epochs 60 --dataset beers --out results_ablation_sampling.csv
$B/ablation_inputs --runs 1 --epochs 60 --dataset beers --out results_ablation_inputs.csv
$B/ablation_cells --runs 1 --epochs 40 --dataset beers --out results_ablation_cells.csv
$B/ablation_extensions --runs 1 --dataset flights --out results_ablation_extensions.csv
$B/repair_eval --runs 1 --dataset beers --dataset hospital --dataset tax --out results_repair.csv
echo ALL_EXPERIMENTS_DONE
