#!/usr/bin/env bash
# Full verification gate for the workspace. Run before every push.
#
#   ./run_checks.sh          # everything
#   ./run_checks.sh fast     # skip the test suites (format/lint/check only)
#
# Gates, in order:
#   1. cargo fmt --check               -- formatting drift
#   2. cargo clippy -D warnings        -- compiler + clippy lint floor
#   3. etsb-check                      -- project-specific invariants
#                                         (panic discipline, seeded RNG,
#                                         shape asserts, doc coverage,
#                                         hash/float determinism, _into
#                                         kernel contracts, unsafe
#                                         discipline; ratchets via
#                                         check_baseline.txt), emitting
#                                         a JSON report that is then
#                                         schema-validated
#   4. cargo test (default features)   -- tier-1 suite
#   5. cargo test --features sanitize  -- suite again with numeric
#                                         NaN/Inf sanitizer hooks live
#   6. determinism under ETSB_WORKERS=2 -- sharded backward must stay
#                                         bitwise-identical when the
#                                         worker count is forced
#   7. trace + manifest schema          -- tiny hospital pipeline with
#                                         ETSB_TRACE=jsonl:... and
#                                         --manifest, gated by trace_lint
#   8. etsb serve smoke                 -- pipe JSONL requests through
#                                         `etsb serve --stdin` twice
#                                         (coalesced vs --max-batch 1),
#                                         schema-validate the responses
#                                         and assert byte equality
#   9. bench smoke + schema             -- bench_summary --smoke writes
#                                         BENCH_hotpath.json, then
#                                         --validate schema-checks it
#  10. serve_bench smoke + schema        -- serve_bench --smoke writes
#                                         BENCH_serve.json (3 load
#                                         steps, both kernel policies),
#                                         its RunManifest sidecar and
#                                         BENCH_serve.prom; --validate
#                                         schema-checks the steps,
#                                         trace_lint gates the manifest
#                                         and the Prometheus exposition
#  11. stream_bench smoke + schema       -- stream_bench --smoke streams
#                                         100k synthetic rows per policy
#                                         at two row counts, asserting
#                                         the resident-memory gauges do
#                                         not move; --validate schema-
#                                         checks BENCH_stream.json and
#                                         trace_lint gates the manifest
#  12. forced-portable dispatch          -- fast-math suites again with
#                                         ETSB_KERNELS=portable, so the
#                                         scalar fallback (the only
#                                         backend a non-AVX2 host ever
#                                         runs) keeps the epsilon and
#                                         dispatch contracts too
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

step "etsb-check (static invariants + JSON report schema)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cargo run -q -p etsb-check -- --json "$tmpdir/check_report.json"
cargo run -q -p etsb-check -- --validate-json "$tmpdir/check_report.json"

if [[ "${1:-}" != "fast" ]]; then
    step "cargo test --workspace"
    cargo test -q --workspace

    step "cargo test --workspace --features sanitize"
    cargo test -q --workspace --features sanitize

    step "determinism with 2 forced workers"
    ETSB_WORKERS=2 cargo test -q -p etsb-core --test determinism

    step "trace + manifest schema (tiny hospital pipeline through trace_lint)"
    cargo run -q -p etsb-cli -- generate --dataset hospital --scale 0.03 --seed 7 \
        --dirty "$tmpdir/dirty.csv" --clean "$tmpdir/clean.csv"
    ETSB_TRACE="jsonl:$tmpdir/trace.jsonl" cargo run -q -p etsb-cli -- detect \
        --dirty "$tmpdir/dirty.csv" --clean "$tmpdir/clean.csv" \
        --tuples 5 --epochs 3 --manifest "$tmpdir/manifest.json" \
        --save "$tmpdir/detector.bin"
    cargo run -q -p etsb-obs --bin trace_lint -- \
        --trace "$tmpdir/trace.jsonl" --manifest "$tmpdir/manifest.json"
    cargo run -q -p etsb-obs --bin trace_profile -- \
        --trace "$tmpdir/trace.jsonl" --top 15

    step "etsb serve smoke (response schema + coalescing determinism)"
    cat > "$tmpdir/requests.jsonl" <<'EOF'
{"id":"r1","cells":[{"tuple_id":0,"attribute":"city","value":"boston"},{"tuple_id":0,"attribute":"state","value":"ma"}]}
{"id":"r2","cells":[{"tuple_id":1,"attribute":"city","value":"boston"},{"tuple_id":1,"attribute":"zip","value":"2116x"}]}
{"id":"r3","cells":[{"tuple_id":2,"attribute":"hospital_name","value":"general hospital"},{"tuple_id":2,"attribute":"city","value":""}]}
{"id":"r4","cells":[{"tuple_id":3,"attribute":"not_a_column","value":"x"}]}
{"id":"r5","cells":[]}
{"id":"r6","cells":[{"tuple_id":4,"attribute":"city","value":"boston"}]}
EOF
    cargo run -q -p etsb-cli -- serve --model "$tmpdir/detector.bin" --stdin \
        < "$tmpdir/requests.jsonl" > "$tmpdir/responses_coalesced.jsonl"
    cargo run -q -p etsb-cli -- serve --model "$tmpdir/detector.bin" --stdin \
        --max-batch 1 --cache 0 \
        < "$tmpdir/requests.jsonl" > "$tmpdir/responses_unbatched.jsonl"
    cargo run -q -p etsb-serve --bin serve_check -- \
        --validate "$tmpdir/responses_coalesced.jsonl"
    cargo run -q -p etsb-serve --bin serve_check -- \
        --equal "$tmpdir/responses_coalesced.jsonl" "$tmpdir/responses_unbatched.jsonl"

    step "bench smoke + BENCH_hotpath.json schema"
    cargo run --release -q -p etsb-bench --bin bench_summary -- --smoke
    cargo run --release -q -p etsb-bench --bin bench_summary -- --validate BENCH_hotpath.json

    step "serve_bench smoke + BENCH_serve.json schema + exposition lint"
    (cd "$tmpdir" && cargo run --release -q \
        --manifest-path "$OLDPWD/Cargo.toml" -p etsb-bench --bin serve_bench -- --smoke)
    cargo run --release -q -p etsb-bench --bin serve_bench -- \
        --validate "$tmpdir/BENCH_serve.json"
    cargo run -q -p etsb-obs --bin trace_lint -- \
        --manifest "$tmpdir/BENCH_serve.manifest.json" \
        --expo "$tmpdir/BENCH_serve.prom"

    step "stream_bench smoke + BENCH_stream.json schema + manifest lint"
    (cd "$tmpdir" && cargo run --release -q \
        --manifest-path "$OLDPWD/Cargo.toml" -p etsb-bench --bin stream_bench -- --smoke)
    cargo run --release -q -p etsb-bench --bin stream_bench -- \
        --validate "$tmpdir/BENCH_stream.json"
    cargo run -q -p etsb-obs --bin trace_lint -- \
        --manifest "$tmpdir/BENCH_stream.manifest.json"

    step "forced-portable kernel dispatch (ETSB_KERNELS=portable)"
    ETSB_KERNELS=portable cargo test -q -p etsb-tensor --test kernel_dispatch
    ETSB_KERNELS=portable cargo test -q -p etsb-core --test fast_math_equiv
fi

printf '\nAll checks passed.\n'
