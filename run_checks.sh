#!/usr/bin/env bash
# Full verification gate for the workspace. Run before every push.
#
#   ./run_checks.sh          # everything
#   ./run_checks.sh fast     # skip the test suites (format/lint/check only)
#
# Gates, in order:
#   1. cargo fmt --check               -- formatting drift
#   2. cargo clippy -D warnings        -- compiler + clippy lint floor
#   3. etsb-check                      -- project-specific invariants
#                                         (panic discipline, seeded RNG,
#                                         shape asserts, doc coverage;
#                                         ratchets via check_baseline.txt)
#   4. cargo test (default features)   -- tier-1 suite
#   5. cargo test --features sanitize  -- suite again with numeric
#                                         NaN/Inf sanitizer hooks live
#   6. determinism under ETSB_WORKERS=2 -- sharded backward must stay
#                                         bitwise-identical when the
#                                         worker count is forced
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

step "etsb-check (static invariants)"
cargo run -q -p etsb-check

if [[ "${1:-}" != "fast" ]]; then
    step "cargo test --workspace"
    cargo test -q --workspace

    step "cargo test --workspace --features sanitize"
    cargo test -q --workspace --features sanitize

    step "determinism with 2 forced workers"
    ETSB_WORKERS=2 cargo test -q -p etsb-core --test determinism
fi

printf '\nAll checks passed.\n'
