//! Training sanity: learning curves behave like the paper's Figures 6–7 —
//! train accuracy climbs toward 1, the checkpoint tracks the best train
//! loss, and the enriched model's extra inputs do not hurt.

use etsb_core::config::{ExperimentConfig, ModelKind, SamplerKind, TrainConfig};
use etsb_core::encode::EncodedDataset;
use etsb_core::model::AnyModel;
use etsb_core::pipeline::run_once;
use etsb_core::train::{accuracy, train_model};
use etsb_datasets::{Dataset, GenConfig};
use etsb_table::CellFrame;
use etsb_tensor::init::seeded_rng;

fn cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        rnn_units: 10,
        attr_rnn_units: 4,
        head_dim: 10,
        length_dense_dim: 6,
        embed_dim: Some(12),
        learning_rate: 2e-3,
        eval_every: 5,
        curve_subsample: 150,
        ..Default::default()
    }
}

#[test]
fn train_accuracy_improves_over_epochs() {
    let pair = Dataset::Hospital
        .generate(&GenConfig {
            scale: 0.08,
            seed: 21,
        })
        .expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
    let data = EncodedDataset::from_frame(&frame);
    let sample = etsb_core::sampling::diver_set(&frame, 20, 1);
    let (train, test) = data.split_by_tuples(&sample);
    let tc = cfg(30);
    let mut model = AnyModel::new(ModelKind::Tsb, &data, &tc, &mut seeded_rng(1));
    let history = train_model(&mut model, &data, &train, &test, &tc, 2);

    let early: f32 = history.train_acc[..5].iter().sum::<f32>() / 5.0;
    let late: f32 = history.train_acc[25..].iter().sum::<f32>() / 5.0;
    assert!(
        late >= early,
        "train accuracy regressed: {early:.3} -> {late:.3}"
    );
    // The paper reports near-perfect train accuracy ("almost a perfect
    // result for the train-accuracy"); on this easy dataset with 30
    // epochs we expect at least 0.9.
    assert!(late > 0.9, "late train accuracy {late:.3}");
}

#[test]
fn checkpoint_restores_best_loss_epoch_weights() {
    let pair = Dataset::Rayyan
        .generate(&GenConfig {
            scale: 0.06,
            seed: 22,
        })
        .expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
    let data = EncodedDataset::from_frame(&frame);
    let sample = etsb_core::sampling::diver_set(&frame, 15, 1);
    let (train, test) = data.split_by_tuples(&sample);
    let tc = cfg(15);
    let mut model = AnyModel::new(ModelKind::Etsb, &data, &tc, &mut seeded_rng(2));
    let history = train_model(&mut model, &data, &train, &test, &tc, 3);

    // The recorded best epoch has the minimum train loss.
    let min = history
        .train_loss
        .iter()
        .cloned()
        .fold(f32::INFINITY, f32::min);
    assert_eq!(history.train_loss[history.best_epoch], min);
    // And the restored model performs on the trainset like a converged
    // model, not like the random init (accuracy above the base rate).
    let acc = accuracy(&model, &data, &train).expect("trainset is non-empty");
    let base = 1.0 - train.iter().filter(|&&c| data.labels[c]).count() as f32 / train.len() as f32;
    assert!(
        acc + 0.05 >= base,
        "restored accuracy {acc:.3} below base rate {base:.3}"
    );
}

#[test]
fn etsb_uses_attribute_signal_on_attribute_dependent_errors() {
    // Build a dataset where the same surface value is an error in one
    // column and correct in another: only the attribute path can separate
    // them — the paper's San-Francisco-in-the-age-column example.
    use etsb_table::Table;
    let mut dirty = Table::with_columns(&["age", "city"]);
    let mut clean = Table::with_columns(&["age", "city"]);
    for i in 0..80 {
        if i % 4 == 0 {
            // Error: a city name in the age column.
            dirty.push_row_strs(&["Paris", "Paris"]);
            clean.push_row(vec![format!("{}", 20 + (i % 50)), "Paris".to_string()]);
        } else {
            let age = format!("{}", 20 + (i % 50));
            dirty.push_row(vec![age.clone(), "Paris".to_string()]);
            clean.push_row(vec![age, "Paris".to_string()]);
        }
    }
    let frame = CellFrame::merge(&dirty, &clean).unwrap();
    let exp = ExperimentConfig {
        model: ModelKind::Etsb,
        sampler: SamplerKind::DiverSet,
        n_label_tuples: 16,
        // The DiverSet sample holds exactly one dirty tuple (all dirty rows
        // share a value profile), so the separating signal is a single
        // positive cell: the run must train to convergence or the outcome
        // is init luck. 80 epochs reaches ~1e-3 train loss on every seed.
        train: cfg(80),
        seed: 5,
    };
    let result = etsb_core::pipeline::run_once_on_frame(&frame, &exp, 0);
    assert!(
        result.metrics.recall > 0.5,
        "ETSB should catch cross-attribute value misuse: recall {:.2}",
        result.metrics.recall
    );
}

/// Regression guard for the Table-5 timing bug: `train_duration` (and
/// therefore `RunResult::train_time`) must clock the training work only.
/// With a tiny trainset, a large testset and an evaluation every epoch,
/// curve evaluation dominates the wall-clock — so a correct training
/// clock reads well under half of the whole call.
#[test]
fn train_duration_excludes_curve_evaluations() {
    use std::time::Instant;

    let pair = Dataset::Beers
        .generate(&GenConfig {
            scale: 0.1,
            seed: 24,
        })
        .expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
    let data = EncodedDataset::from_frame(&frame);
    // 4 labelled tuples → ~44 train cells against ~2600 test cells.
    let sample = etsb_core::sampling::diver_set(&frame, 4, 1);
    let (train, test) = data.split_by_tuples(&sample);
    let tc = TrainConfig {
        eval_every: 1,
        curve_subsample: 0, // evaluate the full testset every epoch
        ..cfg(6)
    };
    let mut model = AnyModel::new(ModelKind::Tsb, &data, &tc, &mut seeded_rng(4));

    let wall_start = Instant::now();
    let history = train_model(&mut model, &data, &train, &test, &tc, 5);
    let wall = wall_start.elapsed();

    assert!(
        history.train_duration <= wall,
        "training clock exceeds the call's wall-clock"
    );
    assert!(
        history.train_duration > std::time::Duration::ZERO,
        "training clock recorded nothing"
    );
    assert!(
        history.train_duration < wall / 2,
        "train_duration {:?} should exclude the dominant eval cost (wall {:?})",
        history.train_duration,
        wall
    );
}

#[test]
fn learning_curves_are_recorded_for_figures() {
    // The fig6/fig7 benches consume History; assert its invariants here.
    let pair = Dataset::Beers
        .generate(&GenConfig {
            scale: 0.03,
            seed: 23,
        })
        .expect("dataset generation");
    let exp = ExperimentConfig {
        model: ModelKind::Tsb,
        sampler: SamplerKind::DiverSet,
        n_label_tuples: 10,
        train: cfg(12),
        seed: 7,
    };
    let result = run_once(&pair.dirty, &pair.clean, &exp, 0).unwrap();
    let h = &result.history;
    assert_eq!(h.train_loss.len(), 12);
    assert_eq!(h.train_acc.len(), 12);
    assert_eq!(h.eval_epochs.len(), h.test_acc.len());
    assert!(h.eval_epochs.contains(&0));
    assert!(h.eval_epochs.contains(&11), "last epoch always evaluated");
    assert!(h.test_acc.iter().all(|a| (0.0..=1.0).contains(a)));
    // The trainer back-fills the best epoch's accuracy after restoring
    // the checkpoint, so this is unconditionally available.
    assert!(h.test_acc_at_best().is_some());
}
