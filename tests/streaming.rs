//! Streaming-vs-in-memory bitwise equality suite.
//!
//! The streaming pipeline's contract (DESIGN.md §16) is that chunk
//! boundaries are *invisible in the bits*: for every chunk size, worker
//! count and kernel policy, the probabilities, the threshold
//! predictions, the accumulated metrics and the emitted flagged-cell
//! bytes are identical to the whole-table in-memory path. This suite
//! pins that over the hospital benchmark across the full matrix
//! {1, 7, 64, whole-table} chunks × {1, 2, 4} workers × both
//! [`KernelPolicy`] arms.

use etsb_core::config::{ModelKind, TrainConfig};
use etsb_core::model::AnyModel;
use etsb_core::{
    stream_predict, EncodedDataset, KernelPolicy, Metrics, PredictCache, StreamMetrics,
};
use etsb_datasets::{Dataset, DatasetPair, GenConfig};
use etsb_nn::parallel::set_worker_override;
use etsb_table::scan::{scan_stats, FrameScan, TableSource};
use etsb_table::CellFrame;
use etsb_tensor::init::seeded_rng;

/// Small enough to keep the full matrix fast; the architecture (both
/// RNN stacks, attribute embedding, length path) is fully exercised.
fn small_cfg() -> TrainConfig {
    TrainConfig {
        rnn_units: 4,
        attr_rnn_units: 2,
        head_dim: 4,
        length_dense_dim: 2,
        embed_dim: Some(3),
        ..TrainConfig::default()
    }
}

fn hospital() -> DatasetPair {
    Dataset::Hospital
        .generate(&GenConfig {
            scale: 0.05,
            seed: 9,
        })
        .expect("hospital generation")
}

/// The CLI's flagged-cell CSV, rendered from an in-memory mask.
fn emit_reference(frame: &CellFrame, preds: &[bool]) -> String {
    let mut text = String::from("tuple_id,attribute,value,flagged\n");
    for (i, cell) in frame.cells().iter().enumerate() {
        if preds[i] {
            text.push_str(&format!(
                "{},{},{:?},1\n",
                cell.tuple_id,
                frame.attrs()[cell.attr],
                cell.value_x
            ));
        }
    }
    text
}

#[test]
fn streaming_matches_in_memory_for_every_chunk_worker_and_policy() {
    let pair = hospital();
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).expect("merge");
    let data = EncodedDataset::from_frame(&frame);
    let model = AnyModel::new(ModelKind::Etsb, &data, &small_cfg(), &mut seeded_rng(5));
    let all: Vec<usize> = (0..data.n_cells()).collect();
    let n_rows = frame.n_tuples();
    let attrs = frame.attrs().to_vec();

    for workers in [1usize, 2, 4] {
        set_worker_override(workers);
        for policy in [KernelPolicy::Exact, KernelPolicy::FastMath] {
            let reference = model.predict_probs_with(&data, &all, policy);
            let ref_bits: Vec<u32> = reference.iter().map(|p| p.to_bits()).collect();
            let ref_preds: Vec<bool> = reference.iter().map(|&p| p >= 0.5).collect();
            let ref_metrics = Metrics::from_predictions(&ref_preds, &data.labels);
            let ref_bytes = emit_reference(&frame, &ref_preds);

            for chunk_rows in [1usize, 7, 64, n_rows] {
                let context = format!("workers {workers}, {policy:?}, chunk {chunk_rows}");
                let mut source = TableSource::pair(&pair.dirty, &pair.clean).expect("table source");
                let (stats, _) = scan_stats(&mut source).expect("scan stats");
                let mut scan = FrameScan::new(source, stats.max_len, chunk_rows);
                let mut cache = PredictCache::new(256);
                let mut bits: Vec<u32> = Vec::new();
                let mut metrics = StreamMetrics::new();
                let mut bytes = String::from("tuple_id,attribute,value,flagged\n");
                let outcome = stream_predict(
                    &model,
                    &data.char_index,
                    &data.attr_index,
                    &mut scan,
                    &mut cache,
                    policy,
                    |chunk| {
                        for (i, cell) in chunk.frame.cells().iter().enumerate() {
                            bits.push(chunk.probs[i].to_bits());
                            metrics.observe(chunk.preds[i], cell.label);
                            if chunk.preds[i] {
                                bytes.push_str(&format!(
                                    "{},{},{:?},1\n",
                                    cell.tuple_id, attrs[cell.attr], cell.value_x
                                ));
                            }
                        }
                        Ok(())
                    },
                )
                .expect("stream");

                assert_eq!(outcome.n_rows, n_rows, "{context}: row count");
                assert_eq!(bits, ref_bits, "{context}: probabilities drifted");
                assert_eq!(bytes, ref_bytes, "{context}: emitted bytes drifted");
                let streamed = metrics.finish().expect("non-empty metrics");
                assert_eq!(
                    (streamed.tp, streamed.fp, streamed.fn_, streamed.tn),
                    (
                        ref_metrics.tp,
                        ref_metrics.fp,
                        ref_metrics.fn_,
                        ref_metrics.tn
                    ),
                    "{context}: confusion counts drifted"
                );
                for (name, a, b) in [
                    ("precision", streamed.precision, ref_metrics.precision),
                    ("recall", streamed.recall, ref_metrics.recall),
                    ("f1", streamed.f1, ref_metrics.f1),
                    ("accuracy", streamed.accuracy, ref_metrics.accuracy),
                ] {
                    assert_eq!(a.to_bits(), b.to_bits(), "{context}: {name} drifted");
                }
            }
        }
    }
    set_worker_override(0);
}

#[test]
fn shared_cache_and_fresh_cache_streams_agree() {
    // A cache reused across the whole stream (serving posture) and a
    // disabled cache must produce the same bits — memoization is an
    // optimization, never an input.
    let pair = hospital();
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).expect("merge");
    let data = EncodedDataset::from_frame(&frame);
    let model = AnyModel::new(ModelKind::Etsb, &data, &small_cfg(), &mut seeded_rng(5));

    let run = |capacity: usize| -> Vec<u32> {
        let mut source = TableSource::pair(&pair.dirty, &pair.clean).expect("table source");
        let (stats, _) = scan_stats(&mut source).expect("scan stats");
        let mut scan = FrameScan::new(source, stats.max_len, 16);
        let mut cache = PredictCache::new(capacity);
        let mut bits = Vec::new();
        stream_predict(
            &model,
            &data.char_index,
            &data.attr_index,
            &mut scan,
            &mut cache,
            KernelPolicy::Exact,
            |chunk| {
                bits.extend(chunk.probs.iter().map(|p| p.to_bits()));
                Ok(())
            },
        )
        .expect("stream");
        bits
    };

    assert_eq!(run(0), run(4096), "cache capacity changed the bits");
}
