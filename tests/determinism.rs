//! Determinism guarantees: every stochastic stage of the system is
//! seeded, so identical configurations must produce bit-identical runs —
//! the property the paper's 10-repetition protocol relies on.

use etsb_core::config::{ExperimentConfig, ModelKind, SamplerKind, TrainConfig};
use etsb_core::pipeline::run_once;
use etsb_core::sampling;
use etsb_datasets::{Dataset, GenConfig};
use etsb_table::CellFrame;

fn tiny_cfg() -> ExperimentConfig {
    ExperimentConfig {
        model: ModelKind::Etsb,
        sampler: SamplerKind::DiverSet,
        n_label_tuples: 10,
        train: TrainConfig {
            epochs: 6,
            rnn_units: 6,
            attr_rnn_units: 3,
            head_dim: 6,
            length_dense_dim: 4,
            embed_dim: Some(8),
            eval_every: 3,
            curve_subsample: 50,
            ..Default::default()
        },
        seed: 99,
    }
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let pair = Dataset::Rayyan
        .generate(&GenConfig {
            scale: 0.05,
            seed: 11,
        })
        .expect("dataset generation");
    let a = run_once(&pair.dirty, &pair.clean, &tiny_cfg(), 0).unwrap();
    let b = run_once(&pair.dirty, &pair.clean, &tiny_cfg(), 0).unwrap();
    assert_eq!(a.sample, b.sample);
    assert_eq!(a.history.train_loss, b.history.train_loss);
    assert_eq!(a.metrics.tp, b.metrics.tp);
    assert_eq!(a.metrics.fp, b.metrics.fp);
}

#[test]
fn different_reps_differ() {
    let pair = Dataset::Rayyan
        .generate(&GenConfig {
            scale: 0.05,
            seed: 11,
        })
        .expect("dataset generation");
    let a = run_once(&pair.dirty, &pair.clean, &tiny_cfg(), 0).unwrap();
    let b = run_once(&pair.dirty, &pair.clean, &tiny_cfg(), 1).unwrap();
    // Different repetition → different sample (with overwhelming
    // probability on a 50-tuple dataset) and different training path.
    assert_ne!(a.history.train_loss, b.history.train_loss);
}

#[test]
fn samplers_are_deterministic_across_processes_conceptually() {
    // The samplers take explicit seeds, so the same inputs must give the
    // same outputs — repeatedly, and for every algorithm.
    let pair = Dataset::Beers
        .generate(&GenConfig {
            scale: 0.03,
            seed: 12,
        })
        .expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
    for kind in [
        SamplerKind::Random,
        SamplerKind::Raha,
        SamplerKind::DiverSet,
    ] {
        let a = sampling::select(kind, &frame, 15, 77);
        let b = sampling::select(kind, &frame, 15, 77);
        assert_eq!(a, b, "{kind:?} not deterministic");
    }
}

/// The tentpole guarantee of the batched-execution refactor: each fold
/// shard packs into one timestep-major batch, but shard boundaries are a
/// pure function of the batch size and shard buffers merge in a fixed
/// order, so the worker count cannot change a single bit of the result.
/// Run the full training loop with one, two and four workers and demand
/// identical loss curves, final weights and predictions.
#[test]
fn training_is_bitwise_identical_across_worker_counts() {
    use etsb_core::encode::EncodedDataset;
    use etsb_core::model::AnyModel;
    use etsb_core::train::train_model;
    use etsb_nn::parallel::set_worker_override;
    use etsb_tensor::init::seeded_rng;

    let pair = Dataset::Beers
        .generate(&GenConfig {
            scale: 0.03,
            seed: 14,
        })
        .expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
    let data = EncodedDataset::from_frame(&frame);
    let sample = sampling::diver_set(&frame, 10, 3);
    let (train, test) = data.split_by_tuples(&sample);
    let cfg = tiny_cfg().train;
    let cells: Vec<usize> = (0..data.n_cells()).collect();

    let run = |workers: usize| {
        set_worker_override(workers);
        let mut model = AnyModel::new(ModelKind::Etsb, &data, &cfg, &mut seeded_rng(31));
        let history = train_model(&mut model, &data, &train, &test, &cfg, 17);
        let probs = model.predict_probs(&data, &cells);
        set_worker_override(0);
        let weights: Vec<Vec<f32>> = model
            .params()
            .iter()
            .map(|p| p.value.as_slice().to_vec())
            .collect();
        (history, weights, probs)
    };

    let (h1, w1, p1) = run(1);
    for workers in [2, 4] {
        let (h, w, p) = run(workers);
        assert_eq!(
            h1.train_loss, h.train_loss,
            "loss curve depends on worker count ({workers})"
        );
        assert_eq!(h1.test_acc, h.test_acc);
        assert_eq!(h1.best_epoch, h.best_epoch);
        for (i, (a, b)) in w1.iter().zip(&w).enumerate() {
            assert!(
                a == b,
                "weights of param {i} differ between 1 and {workers} workers"
            );
        }
        assert_eq!(p1, p, "predictions differ between 1 and {workers} workers");
    }
}

/// Batched execution must be worker-invariant for *every* cell type —
/// vanilla, LSTM and GRU each take a distinct batched kernel path, and
/// each must produce the same losses, weights and predictions whether the
/// shards run serially or on four threads. (The batched-vs-per-sample leg
/// of the equivalence suite lives next to the models:
/// `model::tsb` / `model::etsb` `batched_train_matches_per_sample_reference_bitwise`
/// and the nn-level `batched_paths_are_bitwise_identical_to_per_sample_paths`.)
#[test]
fn batched_training_is_worker_invariant_for_every_cell_type() {
    use etsb_core::config::CellKind;
    use etsb_core::encode::EncodedDataset;
    use etsb_core::model::AnyModel;
    use etsb_core::train::train_model;
    use etsb_nn::parallel::set_worker_override;
    use etsb_tensor::init::seeded_rng;

    let pair = Dataset::Flights
        .generate(&GenConfig {
            scale: 0.04,
            seed: 22,
        })
        .expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
    let data = EncodedDataset::from_frame(&frame);
    let sample = sampling::diver_set(&frame, 8, 5);
    let (train, test) = data.split_by_tuples(&sample);
    let mut cfg = tiny_cfg().train;
    cfg.epochs = 2;
    let cells: Vec<usize> = (0..data.n_cells().min(120)).collect();

    for cell in [CellKind::Vanilla, CellKind::Lstm, CellKind::Gru] {
        cfg.cell = cell;
        let run = |workers: usize| {
            set_worker_override(workers);
            let mut model = AnyModel::new(ModelKind::Tsb, &data, &cfg, &mut seeded_rng(53));
            let history = train_model(&mut model, &data, &train, &test, &cfg, 29);
            let probs = model.predict_probs(&data, &cells);
            set_worker_override(0);
            let weights: Vec<Vec<f32>> = model
                .params()
                .iter()
                .map(|p| p.value.as_slice().to_vec())
                .collect();
            (history.train_loss, weights, probs)
        };
        let (l1, w1, p1) = run(1);
        for workers in [2, 4] {
            let (l, w, p) = run(workers);
            assert_eq!(l1, l, "{cell:?}: loss depends on worker count {workers}");
            assert_eq!(w1, w, "{cell:?}: weights depend on worker count {workers}");
            assert_eq!(
                p1, p,
                "{cell:?}: predictions depend on worker count {workers}"
            );
        }
    }
}

/// Exercises the sharded backward path under forced multi-threading; with
/// `--features sanitize` the per-layer NaN/Inf hooks run inside the
/// worker threads, which is exactly what `run_checks.sh` relies on.
#[test]
fn parallel_backward_stays_finite() {
    use etsb_core::encode::EncodedDataset;
    use etsb_core::model::AnyModel;
    use etsb_nn::parallel::set_worker_override;
    use etsb_tensor::init::seeded_rng;

    let pair = Dataset::Flights
        .generate(&GenConfig {
            scale: 0.05,
            seed: 15,
        })
        .expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
    let data = EncodedDataset::from_frame(&frame);
    let cfg = tiny_cfg().train;
    let mut model = AnyModel::new(ModelKind::Tsb, &data, &cfg, &mut seeded_rng(5));
    let batch: Vec<usize> = (0..data.n_cells().min(96)).collect();
    let mut grads = model.grad_buffer();

    set_worker_override(3);
    let loss = model.train_batch(&data, &batch, &mut grads);
    set_worker_override(0);

    assert!(loss.is_finite(), "batch loss not finite: {loss}");
    for i in 0..grads.len() {
        assert!(
            grads.slot(i).as_slice().iter().all(|v| v.is_finite()),
            "gradient slot {i} contains non-finite values"
        );
    }
}

/// The observability layer's core promise: tracing must never perturb
/// results. Run the same training twice — once with tracing off, once
/// with a live JSONL sink and two forced workers — and demand bitwise
/// identity, then check the trace itself is well-formed JSONL.
#[test]
fn training_is_bitwise_identical_with_tracing_on() {
    use etsb_core::encode::EncodedDataset;
    use etsb_core::model::AnyModel;
    use etsb_core::train::train_model;
    use etsb_nn::parallel::set_worker_override;
    use etsb_tensor::init::seeded_rng;

    let pair = Dataset::Rayyan
        .generate(&GenConfig {
            scale: 0.05,
            seed: 16,
        })
        .expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
    let data = EncodedDataset::from_frame(&frame);
    let sample = sampling::diver_set(&frame, 10, 4);
    let (train, test) = data.split_by_tuples(&sample);
    let cfg = tiny_cfg().train;

    let run = || {
        let mut model = AnyModel::new(ModelKind::Etsb, &data, &cfg, &mut seeded_rng(41));
        let history = train_model(&mut model, &data, &train, &test, &cfg, 23);
        let weights: Vec<Vec<f32>> = model
            .params()
            .iter()
            .map(|p| p.value.as_slice().to_vec())
            .collect();
        (history, weights)
    };

    let (h_off, w_off) = run();

    let path = std::env::temp_dir().join("etsb_determinism_trace.jsonl");
    let path = path.to_str().expect("utf-8 temp path");
    let sink = etsb_obs::JsonlSink::create(path).expect("temp trace file");
    etsb_obs::set_sink(Some(Box::new(sink)));
    set_worker_override(2);
    let (h_on, w_on) = run();
    set_worker_override(0);
    etsb_obs::set_sink(None);

    assert_eq!(
        h_off.train_loss, h_on.train_loss,
        "tracing changed the loss curve"
    );
    assert_eq!(h_off.test_acc, h_on.test_acc);
    assert_eq!(h_off.best_epoch, h_on.best_epoch);
    for (i, (a, b)) in w_off.iter().zip(&w_on).enumerate() {
        assert!(a == b, "weights of param {i} differ with tracing on");
    }

    let text = std::fs::read_to_string(path).expect("trace file readable");
    std::fs::remove_file(path).ok();
    assert!(!text.is_empty(), "tracing produced no events");
    for line in text.lines() {
        let parsed = etsb_obs::json::parse(line).expect("valid JSONL trace line");
        for key in ["ts_rel_us", "span", "kind", "fields"] {
            assert!(parsed.get(key).is_some(), "missing {key} in {line}");
        }
    }
}

/// The memoized prediction path (one forward pass per *unique* cell,
/// broadcast to duplicates) must be invisible in the output: bitwise
/// identical to the naive path, at any worker count. Hospital repeats
/// values heavily, so this exercises real duplicate groups, including
/// corrupted cells.
#[test]
fn memoized_predict_is_bitwise_identical_to_direct() {
    use etsb_core::encode::EncodedDataset;
    use etsb_core::model::{memo_key, AnyModel};
    use etsb_nn::parallel::set_worker_override;
    use etsb_tensor::init::seeded_rng;
    use std::collections::HashSet;

    let pair = Dataset::Hospital
        .generate(&GenConfig {
            scale: 0.05,
            seed: 18,
        })
        .expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
    let data = EncodedDataset::from_frame(&frame);
    let cfg = tiny_cfg().train;
    let cells: Vec<usize> = (0..data.n_cells()).collect();

    // The sample must actually contain duplicates (and corrupted cells)
    // for this test to mean anything.
    let unique: HashSet<_> = cells.iter().map(|&c| memo_key(&data, c)).collect();
    assert!(
        unique.len() < cells.len(),
        "hospital sample has no duplicate cells ({} unique of {})",
        unique.len(),
        cells.len()
    );
    assert!(data.labels.iter().any(|&l| l), "no corrupted cells in play");

    for kind in [ModelKind::Tsb, ModelKind::Etsb] {
        let model = AnyModel::new(kind, &data, &cfg, &mut seeded_rng(37));
        set_worker_override(1);
        let direct_1 = model.predict_probs_direct(&data, &cells);
        let memo_1 = model.predict_probs(&data, &cells);
        set_worker_override(4);
        let direct_4 = model.predict_probs_direct(&data, &cells);
        let memo_4 = model.predict_probs(&data, &cells);
        set_worker_override(0);
        assert_eq!(memo_1, direct_1, "{kind:?}: memoization changed bits");
        assert_eq!(direct_1, direct_4, "{kind:?}: workers changed direct bits");
        assert_eq!(memo_1, memo_4, "{kind:?}: workers changed memoized bits");
    }
}

/// The memo key must compare the `length_norm` feature by bit pattern:
/// cells whose floats merely compare equal (`-0.0 == 0.0`) are *not*
/// merged, because the dense layer could in principle see the sign.
#[test]
fn memo_key_compares_length_norm_bits() {
    use etsb_core::encode::EncodedDataset;
    use etsb_core::model::memo_key;

    let pair = Dataset::Hospital
        .generate(&GenConfig {
            scale: 0.03,
            seed: 19,
        })
        .expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
    let mut data = EncodedDataset::from_frame(&frame);
    // Make cells 0 and 1 identical in every model input.
    data.sequences[1] = data.sequences[0].clone();
    let attr = data.attr_ids[0];
    data.attr_ids[1] = attr;
    data.length_norms[0] = 0.0;
    data.length_norms[1] = 0.0;
    assert_eq!(memo_key(&data, 0), memo_key(&data, 1));
    // Same comparison value, different bits: keys must differ.
    data.length_norms[1] = -0.0;
    assert_eq!(data.length_norms[0], data.length_norms[1]);
    assert_ne!(memo_key(&data, 0), memo_key(&data, 1));
    // And a genuinely different attribute also splits the key.
    data.length_norms[1] = 0.0;
    data.attr_ids[1] = attr + 1;
    assert_ne!(memo_key(&data, 0), memo_key(&data, 1));
}

#[test]
fn generator_determinism_extends_to_csv_round_trip() {
    // Serialize → parse → regenerate: everything must line up.
    let pair = Dataset::Hospital
        .generate(&GenConfig {
            scale: 0.05,
            seed: 13,
        })
        .expect("dataset generation");
    let text = etsb_table::csv::to_string(&pair.dirty);
    let parsed = etsb_table::csv::parse(&text).unwrap();
    assert_eq!(parsed, pair.dirty);
}

/// Histograms merge per-shard accumulators in shard-index order, and
/// every accumulator is an integer, so the merged registry state — and
/// its rendered exposition bytes — must be identical whether the shards
/// ran on one thread or four. This drives the same
/// `parallel_map_shards` boundaries the model hot path uses, with
/// synthetic per-item "durations" that are a pure function of the item
/// index (real timings are the one thing that legitimately varies).
#[test]
fn histogram_shard_merge_is_worker_invariant() {
    use etsb_nn::parallel::{parallel_map_shards, set_worker_override};
    use etsb_obs::registry::{LocalHistogram, Registry, COUNT_BOUNDS};

    let n = 500usize;
    let run = |workers: usize| -> String {
        set_worker_override(workers);
        let locals: Vec<LocalHistogram> = parallel_map_shards(n, |_, range| {
            let mut local = LocalHistogram::with_bounds(&COUNT_BOUNDS);
            for i in range {
                local.record((i as u64 * 37 + 11) % 100_000);
            }
            local
        });
        set_worker_override(0);
        let registry = Registry::new();
        let hist = registry.histogram_with_bounds("fold_item_units", &COUNT_BOUNDS);
        for local in &locals {
            hist.merge_local(local);
        }
        etsb_obs::expo::render(&registry.snapshot())
    };

    let serial = run(1);
    for workers in [2usize, 4] {
        assert_eq!(
            serial,
            run(workers),
            "merged exposition bytes depend on worker count ({workers})"
        );
    }
    assert!(serial.contains("fold_item_units_count 500"), "{serial}");
}

/// Two registries fed the same event stream render byte-identical
/// Prometheus expositions: name-sorted snapshots, integer accumulators
/// and a fixed text format leave no room for drift.
#[test]
fn registry_snapshots_are_byte_identical_across_runs() {
    use etsb_obs::registry::Registry;

    let run = || -> String {
        let registry = Registry::new();
        let c = registry.counter("events_total");
        let g = registry.gauge("level");
        let h = registry.histogram("work_ns");
        for i in 0..200u64 {
            c.inc();
            g.set(i as f64 / 3.0);
            h.record(i * 991);
        }
        etsb_obs::expo::render(&registry.snapshot())
    };
    assert_eq!(run(), run());
}

/// Enabling the metrics registry must be purely observational: the
/// instrumented hot paths (sharded gradient folds, epoch timing) record
/// wall times around the float work, never inside it, so training with
/// `ETSB_METRICS=on` produces bit-identical losses, weights and
/// predictions to training with it off.
#[test]
fn metrics_registry_never_changes_model_outputs() {
    use etsb_core::encode::EncodedDataset;
    use etsb_core::model::AnyModel;
    use etsb_core::train::train_model;
    use etsb_obs::registry::{global, set_metrics_enabled};
    use etsb_tensor::init::seeded_rng;

    let pair = Dataset::Beers
        .generate(&GenConfig {
            scale: 0.03,
            seed: 35,
        })
        .expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
    let data = EncodedDataset::from_frame(&frame);
    let sample = sampling::diver_set(&frame, 8, 9);
    let (train, test) = data.split_by_tuples(&sample);
    let mut cfg = tiny_cfg().train;
    cfg.epochs = 3;
    let cells: Vec<usize> = (0..data.n_cells().min(100)).collect();

    let run = |metrics: bool| {
        set_metrics_enabled(metrics);
        let mut model = AnyModel::new(ModelKind::Etsb, &data, &cfg, &mut seeded_rng(41));
        let history = train_model(&mut model, &data, &train, &test, &cfg, 43);
        let probs = model.predict_probs(&data, &cells);
        set_metrics_enabled(false);
        let weights: Vec<Vec<f32>> = model
            .params()
            .iter()
            .map(|p| p.value.as_slice().to_vec())
            .collect();
        (history.train_loss, weights, probs)
    };

    let off = run(false);
    let on = run(true);
    assert_eq!(off.0, on.0, "loss curve changed with metrics enabled");
    assert_eq!(off.1, on.1, "weights changed with metrics enabled");
    assert_eq!(off.2, on.2, "predictions changed with metrics enabled");

    // And the instrumentation actually observed the run: three epochs
    // were counted and per-item fold timings were merged.
    let snapshot = global().snapshot();
    assert!(
        snapshot.counter("train_epochs_total").unwrap_or(0) >= 3,
        "epoch counter did not advance"
    );
    let shards = snapshot
        .histogram("parallel_shard_ns")
        .expect("shard histogram registered");
    assert!(shards.count > 0, "no shards timed");
}
