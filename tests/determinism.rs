//! Determinism guarantees: every stochastic stage of the system is
//! seeded, so identical configurations must produce bit-identical runs —
//! the property the paper's 10-repetition protocol relies on.

use etsb_core::config::{ExperimentConfig, ModelKind, SamplerKind, TrainConfig};
use etsb_core::pipeline::run_once;
use etsb_core::sampling;
use etsb_datasets::{Dataset, GenConfig};
use etsb_table::CellFrame;

fn tiny_cfg() -> ExperimentConfig {
    ExperimentConfig {
        model: ModelKind::Etsb,
        sampler: SamplerKind::DiverSet,
        n_label_tuples: 10,
        train: TrainConfig {
            epochs: 6,
            rnn_units: 6,
            attr_rnn_units: 3,
            head_dim: 6,
            length_dense_dim: 4,
            embed_dim: Some(8),
            eval_every: 3,
            curve_subsample: 50,
            ..Default::default()
        },
        seed: 99,
    }
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let pair = Dataset::Rayyan
        .generate(&GenConfig {
            scale: 0.05,
            seed: 11,
        })
        .expect("dataset generation");
    let a = run_once(&pair.dirty, &pair.clean, &tiny_cfg(), 0).unwrap();
    let b = run_once(&pair.dirty, &pair.clean, &tiny_cfg(), 0).unwrap();
    assert_eq!(a.sample, b.sample);
    assert_eq!(a.history.train_loss, b.history.train_loss);
    assert_eq!(a.metrics.tp, b.metrics.tp);
    assert_eq!(a.metrics.fp, b.metrics.fp);
}

#[test]
fn different_reps_differ() {
    let pair = Dataset::Rayyan
        .generate(&GenConfig {
            scale: 0.05,
            seed: 11,
        })
        .expect("dataset generation");
    let a = run_once(&pair.dirty, &pair.clean, &tiny_cfg(), 0).unwrap();
    let b = run_once(&pair.dirty, &pair.clean, &tiny_cfg(), 1).unwrap();
    // Different repetition → different sample (with overwhelming
    // probability on a 50-tuple dataset) and different training path.
    assert_ne!(a.history.train_loss, b.history.train_loss);
}

#[test]
fn samplers_are_deterministic_across_processes_conceptually() {
    // The samplers take explicit seeds, so the same inputs must give the
    // same outputs — repeatedly, and for every algorithm.
    let pair = Dataset::Beers
        .generate(&GenConfig {
            scale: 0.03,
            seed: 12,
        })
        .expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
    for kind in [
        SamplerKind::Random,
        SamplerKind::Raha,
        SamplerKind::DiverSet,
    ] {
        let a = sampling::select(kind, &frame, 15, 77);
        let b = sampling::select(kind, &frame, 15, 77);
        assert_eq!(a, b, "{kind:?} not deterministic");
    }
}

#[test]
fn generator_determinism_extends_to_csv_round_trip() {
    // Serialize → parse → regenerate: everything must line up.
    let pair = Dataset::Hospital
        .generate(&GenConfig {
            scale: 0.05,
            seed: 13,
        })
        .expect("dataset generation");
    let text = etsb_table::csv::to_string(&pair.dirty);
    let parsed = etsb_table::csv::parse(&text).unwrap();
    assert_eq!(parsed, pair.dirty);
}
