//! Allocation bounds for the streaming scan path.
//!
//! The O(chunk) memory story has two layers. The table layer
//! ([`FrameScan`] + [`ChunkedFrame`] + the row sources) reuses every
//! buffer, so a warmed scan performs **zero** heap allocations — pinned
//! exactly here with a counting allocator. The prediction layer above it
//! allocates per chunk (probe keys, the per-chunk probability vector),
//! so its budget is *linear in chunks processed* and independent of the
//! table's total size — pinned by comparing a double-length stream
//! against a single-length one.
//
// A test-only global allocator shim is a sanctioned unsafe site; the
// deny-by-default lint stays on everywhere else.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use etsb_core::config::{ModelKind, TrainConfig};
use etsb_core::model::AnyModel;
use etsb_core::{stream_predict, EncodedDataset, KernelPolicy, PredictCache};
use etsb_table::scan::{scan_stats, ChunkedFrame, FrameScan, RowSource};
use etsb_table::{AttrIndex, TableError};
use etsb_tensor::init::seeded_rng;
use std::fmt::Write as _;

/// Counts every allocation (alloc, alloc_zeroed, realloc) while
/// delegating the actual work to the system allocator.
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: every method delegates verbatim to the System allocator after
// bumping an atomic counter; the GlobalAlloc contract (layout validity,
// pointer provenance) is upheld by System itself.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds the GlobalAlloc contract; System does the work.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        // SAFETY: `layout` is the caller's, passed through unchanged.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds the GlobalAlloc contract; System does the work.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        // SAFETY: `layout` is the caller's, passed through unchanged.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: caller upholds the GlobalAlloc contract; System does the work.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        // SAFETY: `ptr`/`layout` came from this allocator (which is System).
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: caller upholds the GlobalAlloc contract; System does the work.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` came from this allocator (which is System).
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::SeqCst)
}

const N_COLS: usize = 3;

/// Deterministic fixed-width synthetic rows from a bounded pool — the
/// same shape of source `stream_bench` uses, small enough for a test.
#[derive(Debug)]
struct SynthSource {
    columns: Vec<String>,
    n_rows: usize,
    next: usize,
}

impl SynthSource {
    fn new(n_rows: usize) -> SynthSource {
        SynthSource {
            columns: (0..N_COLS).map(|c| format!("col{c}")).collect(),
            n_rows,
            next: 0,
        }
    }
}

impl RowSource for SynthSource {
    fn columns(&self) -> &[String] {
        &self.columns
    }

    fn next_row(
        &mut self,
        dirty: &mut Vec<String>,
        clean: &mut Vec<String>,
    ) -> Result<bool, TableError> {
        if self.next == self.n_rows {
            return Ok(false);
        }
        let r = self.next;
        self.next += 1;
        dirty.resize_with(N_COLS, String::new);
        clean.resize_with(N_COLS, String::new);
        for c in 0..N_COLS {
            let pool = (r * 7 + c * 3) % 16;
            let truth = &mut clean[c];
            truth.clear();
            let _ = write!(truth, "v{pool:02}");
            let observed = &mut dirty[c];
            observed.clear();
            if (r + c).is_multiple_of(5) {
                let _ = write!(observed, "e{pool:02}");
            } else {
                observed.push_str(truth);
            }
        }
        Ok(true)
    }

    fn reset(&mut self) -> Result<(), TableError> {
        self.next = 0;
        Ok(())
    }
}

#[test]
fn warmed_chunk_scan_is_allocation_free() {
    let mut source = SynthSource::new(64);
    let (stats, _) = scan_stats(&mut source).expect("scan stats");
    let mut scan = FrameScan::new(source, stats.max_len, 8);
    let mut chunk = ChunkedFrame::new();

    // Warm-up: two full passes so every cell string and row buffer
    // reaches its final capacity.
    for _ in 0..2 {
        while scan.next_chunk(&mut chunk).expect("chunk") {}
        scan.reset().expect("reset");
    }

    let before = allocations();
    while scan.next_chunk(&mut chunk).expect("chunk") {}
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "warmed chunk scan heap-allocated {} time(s)",
        after - before
    );
}

#[test]
fn stream_allocations_scale_with_chunks_not_table_size() {
    let small_cfg = TrainConfig {
        rnn_units: 4,
        attr_rnn_units: 2,
        head_dim: 4,
        length_dense_dim: 2,
        embed_dim: Some(3),
        ..TrainConfig::default()
    };
    let mut calibration = SynthSource::new(64);
    let (stats, char_index) = scan_stats(&mut calibration).expect("calibration");
    let attr_index = AttrIndex::from_names(calibration.columns().to_vec());
    let dims = EncodedDataset::empty_with_dicts(char_index.clone(), attr_index.clone());
    let model = AnyModel::new(ModelKind::Etsb, &dims, &small_cfg, &mut seeded_rng(3));

    let max_len = stats.max_len;
    let run = |rows: usize| -> usize {
        let mut scan = FrameScan::new(SynthSource::new(rows), max_len.clone(), 8);
        // Caching off so the work per chunk is identical across runs.
        let mut cache = PredictCache::new(0);
        let before = allocations();
        stream_predict(
            &model,
            &char_index,
            &attr_index,
            &mut scan,
            &mut cache,
            KernelPolicy::Exact,
            |_| Ok(()),
        )
        .expect("stream");
        allocations() - before
    };

    // Warm the buffer pools shared below (worker workspaces etc.).
    let _ = run(64);
    let base = run(64);
    let double = run(128);
    assert!(base > 0, "counting allocator wired up");
    // Doubling the table doubles the chunks; the allocation count may
    // scale with chunks but must not scale any faster (an O(table)
    // buffer per chunk would show up quadratically here).
    assert!(
        double <= 2 * base + 64,
        "allocations grew faster than the chunk count: {base} for 64 rows, {double} for 128"
    );
}
