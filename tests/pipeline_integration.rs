//! Integration: generated benchmark datasets → data preparation →
//! sampling → training → evaluation, across the full crate stack.

use etsb_core::config::{ExperimentConfig, ModelKind, SamplerKind, TrainConfig};
use etsb_core::pipeline::{run_once, run_repeated};
use etsb_datasets::{Dataset, GenConfig};
use etsb_table::{stats::DatasetStats, CellFrame};

/// A fast configuration for integration testing: small RNN, few epochs.
fn fast_cfg(model: ModelKind) -> ExperimentConfig {
    ExperimentConfig {
        model,
        sampler: SamplerKind::DiverSet,
        n_label_tuples: 20,
        train: TrainConfig {
            epochs: 20,
            rnn_units: 12,
            attr_rnn_units: 4,
            head_dim: 12,
            length_dense_dim: 8,
            embed_dim: Some(16),
            learning_rate: 2e-3,
            eval_every: 10,
            curve_subsample: 200,
            ..Default::default()
        },
        seed: 17,
    }
}

#[test]
fn hospital_end_to_end_reaches_high_f1() {
    // Hospital is the paper's easiest dataset (x-marked typos, F1 0.97);
    // even a miniature model should detect most of them.
    let pair = Dataset::Hospital
        .generate(&GenConfig {
            scale: 0.15,
            seed: 3,
        })
        .expect("dataset generation");
    let result = run_once(&pair.dirty, &pair.clean, &fast_cfg(ModelKind::Tsb), 0).unwrap();
    assert!(
        result.metrics.f1 > 0.55,
        "Hospital F1 {:.2} (p={:.2}, r={:.2})",
        result.metrics.f1,
        result.metrics.precision,
        result.metrics.recall
    );
}

#[test]
fn beers_end_to_end_with_etsb() {
    let pair = Dataset::Beers
        .generate(&GenConfig {
            scale: 0.08,
            seed: 4,
        })
        .expect("dataset generation");
    let result = run_once(&pair.dirty, &pair.clean, &fast_cfg(ModelKind::Etsb), 0).unwrap();
    assert!(
        result.metrics.f1 > 0.5,
        "Beers F1 {:.2} (p={:.2}, r={:.2})",
        result.metrics.f1,
        result.metrics.precision,
        result.metrics.recall
    );
}

#[test]
fn every_dataset_runs_through_the_pipeline() {
    // Smoke: all six generators produce data the full pipeline accepts.
    let mut cfg = fast_cfg(ModelKind::Tsb);
    cfg.train.epochs = 4;
    cfg.train.eval_every = 4;
    for ds in Dataset::ALL {
        let scale = 40.0 / ds.paper_rows() as f64; // ~40 rows each
        let pair = ds
            .generate(&GenConfig { scale, seed: 5 })
            .expect("dataset generation");
        let result = run_once(&pair.dirty, &pair.clean, &cfg, 0)
            .unwrap_or_else(|e| panic!("{ds}: pipeline failed: {e}"));
        assert!(result.metrics.f1.is_finite(), "{ds}: non-finite F1");
        assert_eq!(result.sample.len(), 20.min(pair.dirty.n_rows()));
    }
}

#[test]
fn repeated_runs_have_plausible_spread() {
    let pair = Dataset::Hospital
        .generate(&GenConfig {
            scale: 0.08,
            seed: 6,
        })
        .expect("dataset generation");
    let mut cfg = fast_cfg(ModelKind::Tsb);
    cfg.train.epochs = 8;
    let rep = run_repeated(&pair.dirty, &pair.clean, &cfg, 3).unwrap();
    assert_eq!(rep.runs.len(), 3);
    // Standard deviation exists and is bounded.
    assert!(
        rep.f1.std >= 0.0 && rep.f1.std < 0.5,
        "std {:.3}",
        rep.f1.std
    );
    // Each run used a different sample (seeds differ).
    assert_ne!(rep.runs[0].sample, rep.runs[1].sample);
}

#[test]
fn trainset_size_matches_paper_formula() {
    // §5.2: "for the dataset Beers we got a trainset of size 220, i.e.
    // 20 tuples x 11 attributes, and a testset of 26,290".
    let pair = Dataset::Beers
        .generate(&GenConfig {
            scale: 0.05,
            seed: 7,
        })
        .expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
    let data = etsb_core::EncodedDataset::from_frame(&frame);
    let sample = etsb_core::sampling::diver_set(&frame, 20, 1);
    let (train, test) = data.split_by_tuples(&sample);
    assert_eq!(train.len(), 20 * 11);
    assert_eq!(test.len(), (frame.n_tuples() - 20) * 11);
}

#[test]
fn dataset_stats_align_with_table2_metadata() {
    for ds in [Dataset::Beers, Dataset::Hospital, Dataset::Rayyan] {
        let pair = ds
            .generate(&GenConfig {
                scale: 0.1,
                seed: 8,
            })
            .expect("dataset generation");
        let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
        let stats = DatasetStats::of(&frame);
        assert_eq!(stats.n_cols, ds.paper_cols(), "{ds}");
        let target = ds.paper_error_rate();
        assert!(
            (stats.error_rate - target).abs() / target < 0.2,
            "{ds}: error rate {:.3} vs paper {target}",
            stats.error_rate
        );
    }
}
