//! Integration of the Raha baseline with the generated benchmark
//! datasets: the strategy ensemble must produce usable signals and the
//! end-to-end detector must behave the way the paper's comparison
//! describes (strong on surface errors, weak where samples are
//! homogeneous).

use etsb_core::eval::Metrics;
use etsb_datasets::{Dataset, GenConfig};
use etsb_raha::{strategies, RahaConfig, RahaDetector};
use etsb_table::CellFrame;

fn run_raha(ds: Dataset, scale: f64, seed: u64) -> Metrics {
    let pair = ds
        .generate(&GenConfig { scale, seed })
        .expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
    let detector = RahaDetector::new(RahaConfig::default());
    let model = detector.fit(&frame);
    let sample = model.sample_tuples(20, seed);
    let preds = model.detect(&frame, &sample);
    let labels: Vec<bool> = frame.cells().iter().map(|c| c.label).collect();
    Metrics::from_predictions(&preds, &labels)
}

#[test]
fn raha_detects_beers_formatting_errors() {
    let m = run_raha(Dataset::Beers, 0.1, 1);
    assert!(
        m.f1 > 0.4,
        "Beers F1 {:.2} (p={:.2}, r={:.2})",
        m.f1,
        m.precision,
        m.recall
    );
}

#[test]
fn raha_finds_signal_on_every_dataset() {
    for ds in [
        Dataset::Beers,
        Dataset::Hospital,
        Dataset::Movies,
        Dataset::Rayyan,
    ] {
        let scale = (120.0 / ds.paper_rows() as f64).min(0.2);
        let m = run_raha(ds, scale, 2);
        // We only require sane, finite metrics here; per-dataset quality is
        // asserted by the focused tests and the Table 3 bench.
        assert!(
            m.f1.is_finite() && m.precision.is_finite(),
            "{ds}: broken metrics"
        );
    }
}

#[test]
fn strategies_fire_more_on_dirty_cells_of_regular_columns() {
    // Within a column of regular surface structure (Beers' "ounces",
    // where errors add an " oz" suffix) the battery's votes must
    // correlate with ground truth. Globally that need not hold — the
    // frequency strategies legitimately fire on every value of
    // unique-value columns like ids — which is exactly why Raha trains a
    // classifier per column instead of thresholding votes.
    let pair = Dataset::Beers
        .generate(&GenConfig {
            scale: 0.08,
            seed: 3,
        })
        .expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
    let battery = strategies::default_battery();
    let features = etsb_raha::build_features(&frame, &battery);
    let ounces = frame
        .attrs()
        .iter()
        .position(|a| a == "ounces")
        .expect("beers has ounces");
    let (mut dirty_votes, mut dirty_n, mut clean_votes, mut clean_n) = (0.0, 0, 0.0, 0);
    for (i, cell) in frame.cells().iter().enumerate() {
        if cell.attr != ounces {
            continue;
        }
        let v = features.votes(i) as f64;
        if cell.label {
            dirty_votes += v;
            dirty_n += 1;
        } else {
            clean_votes += v;
            clean_n += 1;
        }
    }
    let dirty_mean = dirty_votes / dirty_n.max(1) as f64;
    let clean_mean = clean_votes / clean_n.max(1) as f64;
    assert!(
        dirty_n > 0 && clean_n > 0,
        "need both classes in the ounces column"
    );
    assert!(
        dirty_mean > clean_mean * 1.5,
        "ounces votes: dirty {dirty_mean:.2} vs clean {clean_mean:.2}"
    );
}

#[test]
fn raha_set_differs_from_random_but_is_valid() {
    let pair = Dataset::Movies
        .generate(&GenConfig {
            scale: 0.02,
            seed: 4,
        })
        .expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
    let detector = RahaDetector::default();
    let model = detector.fit(&frame);
    let sample = model.sample_tuples(20, 5);
    assert_eq!(sample.len(), 20);
    let mut sorted = sample.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), 20);
    assert!(sorted.iter().all(|&t| t < frame.n_tuples()));
}
