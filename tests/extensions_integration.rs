//! Integration of the §5.7 extensions and detector persistence with the
//! generated benchmarks: the pieces a deployed pipeline chains together.

use etsb_core::config::{ExperimentConfig, ModelKind, SamplerKind, TrainConfig};
use etsb_core::extensions::{duplicate_aware_auto, fd_augmented, identify_record_key};
use etsb_core::model::AnyModel;
use etsb_core::persist::{load_detector, save_detector};
use etsb_core::train::train_model;
use etsb_core::{sampling, EncodedDataset, Metrics};
use etsb_datasets::{Dataset, GenConfig};
use etsb_table::CellFrame;
use etsb_tensor::init::seeded_rng;

fn small_cfg() -> ExperimentConfig {
    ExperimentConfig {
        model: ModelKind::Tsb,
        sampler: SamplerKind::DiverSet,
        n_label_tuples: 20,
        train: TrainConfig {
            epochs: 20,
            rnn_units: 12,
            head_dim: 12,
            embed_dim: Some(16),
            learning_rate: 2e-3,
            eval_every: 20,
            curve_subsample: 100,
            ..Default::default()
        },
        seed: 13,
    }
}

fn full_table_mask(frame: &CellFrame, data: &EncodedDataset, cfg: &ExperimentConfig) -> Vec<bool> {
    let sample = sampling::diver_set(frame, cfg.n_label_tuples, cfg.seed);
    let (train_cells, test_cells) = data.split_by_tuples(&sample);
    let mut model = AnyModel::new(cfg.model, data, &cfg.train, &mut seeded_rng(cfg.seed));
    let _ = train_model(
        &mut model,
        data,
        &train_cells,
        &test_cells,
        &cfg.train,
        cfg.seed,
    );
    let mut mask = vec![false; data.n_cells()];
    for (&cell, p) in test_cells.iter().zip(model.predict(data, &test_cells)) {
        mask[cell] = p;
    }
    for &cell in &train_cells {
        mask[cell] = data.labels[cell];
    }
    mask
}

#[test]
fn duplicate_arbitration_lifts_flights_recall_over_the_model_alone() {
    // The §5.7 headline: the model alone misses source-conflict times;
    // adding duplicate-record arbitration must raise recall.
    let pair = Dataset::Flights
        .generate(&GenConfig {
            scale: 0.1,
            seed: 21,
        })
        .expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
    let data = EncodedDataset::from_frame(&frame);
    let labels: Vec<bool> = frame.cells().iter().map(|c| c.label).collect();
    let cfg = small_cfg();

    let base = full_table_mask(&frame, &data, &cfg);
    let extended = duplicate_aware_auto(&frame, &base);

    let m_base = Metrics::from_predictions(&base, &labels);
    let m_ext = Metrics::from_predictions(&extended, &labels);
    assert!(
        m_ext.recall > m_base.recall + 0.05,
        "duplicate arbitration should lift recall: {:.2} -> {:.2}",
        m_base.recall,
        m_ext.recall
    );
    assert!(
        m_ext.f1 >= m_base.f1,
        "and not hurt F1: {:.2} -> {:.2}",
        m_base.f1,
        m_ext.f1
    );
}

#[test]
fn fd_augmentation_never_lowers_recall() {
    let pair = Dataset::Beers
        .generate(&GenConfig {
            scale: 0.05,
            seed: 22,
        })
        .expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
    let labels: Vec<bool> = frame.cells().iter().map(|c| c.label).collect();
    let none = vec![false; frame.cells().len()];
    let augmented = fd_augmented(&frame, &none, 0.95);
    let m = Metrics::from_predictions(&augmented, &labels);
    // OR-combination is monotone in recall by construction; the
    // interesting check is that the FD signal alone is high-precision.
    let flagged = augmented.iter().filter(|&&f| f).count();
    if flagged > 0 {
        assert!(
            m.precision > 0.5,
            "FD violations should be precise: {:.2}",
            m.precision
        );
    }
}

#[test]
fn key_detection_is_stable_across_seeds() {
    for seed in [1, 2, 3] {
        let pair = Dataset::Flights
            .generate(&GenConfig { scale: 0.08, seed })
            .expect("dataset generation");
        let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
        let key = identify_record_key(&frame).expect("flights key");
        assert_eq!(frame.attrs()[key], "flight", "seed {seed}");
    }
}

#[test]
fn trained_detector_round_trips_through_persistence_on_real_data() {
    let pair = Dataset::Hospital
        .generate(&GenConfig {
            scale: 0.06,
            seed: 23,
        })
        .expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
    let data = EncodedDataset::from_frame(&frame);
    let cfg = small_cfg();
    let sample = sampling::diver_set(&frame, cfg.n_label_tuples, cfg.seed);
    let (train_cells, test_cells) = data.split_by_tuples(&sample);
    let mut model = AnyModel::new(cfg.model, &data, &cfg.train, &mut seeded_rng(cfg.seed));
    let _ = train_model(
        &mut model,
        &data,
        &train_cells,
        &test_cells,
        &cfg.train,
        cfg.seed,
    );

    let saved = save_detector(&model, cfg.model, &cfg.train, &data);
    let loaded = load_detector(&saved).unwrap();

    // Applying to the very same dirty table reproduces the predictions.
    let direct = model.predict(&data, &test_cells);
    let via_apply = loaded.apply(&pair.dirty).unwrap();
    for (&cell, &expected) in test_cells.iter().zip(&direct) {
        assert_eq!(
            via_apply[cell], expected,
            "cell {cell} diverged after reload"
        );
    }
}
