//! Bring-your-own-data: run the detector on a dirty/clean CSV pair.
//!
//! ```text
//! cargo run --release -p etsb-core --example custom_dataset [dirty.csv clean.csv]
//! ```
//!
//! With no arguments the example writes a small demonstration pair
//! (salaries with formatting and missing-value errors, mirroring the
//! paper's Table 1) to a temp directory first, so it is runnable out of
//! the box. This example drives the lower-level API directly — encode,
//! sample, train, predict — instead of the one-call pipeline.

use etsb_core::config::{ModelKind, TrainConfig};
use etsb_core::encode::EncodedDataset;
use etsb_core::eval::Metrics;
use etsb_core::model::AnyModel;
use etsb_core::sampling;
use etsb_core::train::train_model;
use etsb_table::{csv, CellFrame, Table};
use etsb_tensor::init::seeded_rng;

fn demo_pair() -> (Table, Table) {
    let mut clean = Table::with_columns(&["age", "salary", "zip", "city"]);
    let mut dirty = Table::with_columns(&["age", "salary", "zip", "city"]);
    let cities = [
        ("8000", "Zurich"),
        ("00100", "Rome"),
        ("75000", "Paris"),
        ("10115", "Berlin"),
    ];
    for i in 0..120 {
        let age = format!("{}", 21 + (i % 45));
        let salary = format!("{}", 52_000 + (i % 50) * 1000);
        let (zip, city) = cities[i % cities.len()];
        clean.push_row(vec![age.clone(), salary.clone(), zip.into(), city.into()]);
        // Inject Table-1 style errors into every 6th tuple.
        match i % 18 {
            0 => dirty.push_row(vec![
                age,
                format!("{},000", &salary[..2]),
                zip.into(),
                city.into(),
            ]),
            6 => dirty.push_row(vec![age, salary, zip.into(), "NaN".into()]),
            12 => dirty.push_row(vec![age, salary, "BER".into(), city.into()]),
            _ => dirty.push_row(vec![age, salary, zip.into(), city.into()]),
        }
    }
    (dirty, clean)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (dirty, clean) = if args.len() >= 3 {
        let dirty = csv::read_file(&args[1]).expect("readable dirty CSV");
        let clean = csv::read_file(&args[2]).expect("readable clean CSV");
        (dirty, clean)
    } else {
        let dir = std::env::temp_dir();
        let (dirty, clean) = demo_pair();
        let dpath = dir.join("etsb_demo_dirty.csv");
        let cpath = dir.join("etsb_demo_clean.csv");
        csv::write_file(&dirty, &dpath).expect("writable temp dir");
        csv::write_file(&clean, &cpath).expect("writable temp dir");
        println!(
            "no CSVs given; wrote a demo pair to {} / {}",
            dpath.display(),
            cpath.display()
        );
        (dirty, clean)
    };

    // Data preparation (§4.1): merge, label, build dictionaries.
    let frame = CellFrame::merge(&dirty, &clean).expect("tables must share a shape");
    println!(
        "{} tuples x {} attrs, error rate {:.3}, {} distinct chars",
        frame.n_tuples(),
        frame.n_attrs(),
        frame.error_rate(),
        frame.distinct_chars()
    );
    let data = EncodedDataset::from_frame(&frame);

    // Trainset selection (§4.2): DiverSet picks 20 tuples to label.
    let sample = sampling::diver_set(&frame, 20, 1);
    let (train_cells, test_cells) = data.split_by_tuples(&sample);
    println!("DiverSet selected tuples {sample:?}");

    // Train ETSB-RNN (§4.3.2) with a shortened schedule.
    let cfg = TrainConfig {
        epochs: 60,
        eval_every: 15,
        ..Default::default()
    };
    let mut model = AnyModel::new(ModelKind::Etsb, &data, &cfg, &mut seeded_rng(1));
    let history = train_model(&mut model, &data, &train_cells, &test_cells, &cfg, 1);
    println!(
        "trained {} epochs, best epoch {} (loss {:.4})",
        cfg.epochs, history.best_epoch, history.train_loss[history.best_epoch]
    );

    // Evaluate on the held-out cells.
    let preds = model.predict(&data, &test_cells);
    let labels = data.labels_of(&test_cells);
    let m = Metrics::from_predictions(&preds, &labels);
    println!(
        "precision {:.3}  recall {:.3}  F1 {:.3}",
        m.precision, m.recall, m.f1
    );

    // Show what the model flags.
    println!("\nfirst detections on held-out cells:");
    let mut shown = 0;
    for (&cell_idx, &flagged) in test_cells.iter().zip(&preds) {
        if flagged && shown < 8 {
            let cell = &frame.cells()[cell_idx];
            let verdict = if cell.label {
                "true error"
            } else {
                "false alarm"
            };
            println!(
                "  tuple {:>3} {:<8} value {:?} ({verdict}, truth {:?})",
                cell.tuple_id,
                frame.attrs()[cell.attr],
                cell.value_x,
                cell.value_y
            );
            shown += 1;
        }
    }
}
