//! Detect, then *repair*: the full cleaning loop the paper's conclusion
//! sketches (detection by ETSB-RNN, correction in the spirit of
//! Baran/HoloClean, here via `etsb-repair`).
//!
//! ```text
//! cargo run --release -p etsb-core --example detect_and_repair [dataset]
//! ```

use etsb_core::config::{ExperimentConfig, ModelKind, SamplerKind, TrainConfig};
use etsb_core::model::AnyModel;
use etsb_core::train::train_model;
use etsb_core::{sampling, EncodedDataset};
use etsb_datasets::{Dataset, GenConfig};
use etsb_repair::{evaluate, Repairer};
use etsb_table::CellFrame;
use etsb_tensor::init::seeded_rng;

fn main() {
    let dataset = std::env::args()
        .nth(1)
        .map(|s| Dataset::parse(&s).expect("dataset name"))
        .unwrap_or(Dataset::Hospital);
    let pair = dataset
        .generate(&GenConfig {
            scale: 0.15,
            seed: 11,
        })
        .expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).expect("generated pair");
    let data = EncodedDataset::from_frame(&frame);
    println!(
        "{dataset}: {} tuples x {} attrs, {} erroneous cells",
        frame.n_tuples(),
        frame.n_attrs(),
        frame.cells().iter().filter(|c| c.label).count()
    );

    // --- Detect -------------------------------------------------------
    let cfg = ExperimentConfig {
        model: ModelKind::Etsb,
        sampler: SamplerKind::DiverSet,
        n_label_tuples: 20,
        train: TrainConfig {
            epochs: 50,
            eval_every: 25,
            ..Default::default()
        },
        seed: 3,
    };
    let sample = sampling::diver_set(&frame, cfg.n_label_tuples, cfg.seed);
    let (train_cells, test_cells) = data.split_by_tuples(&sample);
    let mut model = AnyModel::new(cfg.model, &data, &cfg.train, &mut seeded_rng(cfg.seed));
    println!("training ETSB-RNN ({} epochs)...", cfg.train.epochs);
    let _ = train_model(
        &mut model,
        &data,
        &train_cells,
        &test_cells,
        &cfg.train,
        cfg.seed,
    );

    let mut mask = vec![false; data.n_cells()];
    for (&cell, p) in test_cells.iter().zip(model.predict(&data, &test_cells)) {
        mask[cell] = p;
    }
    for &cell in &train_cells {
        mask[cell] = data.labels[cell]; // the user labelled these herself
    }
    println!(
        "detector flagged {} cells",
        mask.iter().filter(|&&m| m).count()
    );

    // --- Repair -------------------------------------------------------
    let repairer = Repairer::fit(&frame, &mask);
    println!(
        "discovered {} approximate functional dependencies",
        repairer.n_dependencies()
    );
    let proposals = repairer.propose_all(&frame, &mask);
    let eval = evaluate(&frame, &mask, &proposals);
    println!(
        "proposed {} repairs, {} correct (precision {:.2})",
        eval.proposed, eval.correct, eval.repair_precision
    );
    println!(
        "erroneous cells: {} before -> {} after repair",
        eval.errors_before, eval.errors_after
    );

    println!("\nsample repairs:");
    for p in proposals.iter().take(8) {
        let truth = &frame.cells()[frame.cell_index(p.tuple_id, p.attr)].value_y;
        let verdict = if &p.new == truth { "✓" } else { "✗" };
        println!(
            "  [{:?}] {}: {:?} -> {:?} {verdict} (truth {:?})",
            p.strategy,
            frame.attrs()[p.attr],
            p.old,
            p.new,
            truth
        );
    }
}
