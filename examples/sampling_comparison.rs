//! Compare the three trainset-selection algorithms of §4.2 on one
//! dataset: RandomSet (Alg. 1), RahaSet (Alg. 2) and DiverSet (Alg. 3).
//!
//! ```text
//! cargo run --release -p etsb-core --example sampling_comparison [dataset] [runs]
//! ```
//!
//! Prints, per sampler, how diverse the selected trainset is (distinct
//! attribute values covered, errors included) and the downstream F1 of a
//! short TSB-RNN training run — the experiment behind the paper's choice
//! of DiverSet.

use etsb_core::config::{ExperimentConfig, ModelKind, SamplerKind, TrainConfig};
use etsb_core::pipeline::run_with_sample;
use etsb_core::sampling;
use etsb_core::EncodedDataset;
use etsb_datasets::{Dataset, GenConfig};
use etsb_table::CellFrame;
use std::collections::HashSet;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dataset = args
        .get(1)
        .map(|s| Dataset::parse(s).expect("dataset name"))
        .unwrap_or(Dataset::Beers);
    let runs: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);

    let pair = dataset
        .generate(&GenConfig {
            scale: 0.1,
            seed: 5,
        })
        .expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).expect("generated pair");
    let data = EncodedDataset::from_frame(&frame);
    println!(
        "{dataset}: {} tuples x {} attrs, error rate {:.3}\n",
        frame.n_tuples(),
        frame.n_attrs(),
        frame.error_rate()
    );
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8}",
        "sampler", "values", "errors", "F1", "±"
    );

    for kind in [
        SamplerKind::Random,
        SamplerKind::Raha,
        SamplerKind::DiverSet,
    ] {
        let mut f1s = Vec::new();
        let mut values = Vec::new();
        let mut errors = Vec::new();
        for rep in 0..runs {
            let sample = sampling::select(kind, &frame, 20, 100 + rep);

            // Trainset diversity: distinct (attribute, value) pairs.
            let distinct: HashSet<String> = sample
                .iter()
                .flat_map(|&t| frame.tuple(t).iter().map(|c| c.concat(frame.attrs())))
                .collect();
            values.push(distinct.len() as f64);
            let err_cells: usize = sample
                .iter()
                .map(|&t| frame.tuple(t).iter().filter(|c| c.label).count())
                .sum();
            errors.push(err_cells as f64);

            // Downstream model quality with this trainset.
            let cfg = ExperimentConfig {
                model: ModelKind::Tsb,
                sampler: kind,
                n_label_tuples: 20,
                train: TrainConfig {
                    epochs: 25,
                    rnn_units: 16,
                    head_dim: 16,
                    embed_dim: Some(24),
                    eval_every: 25,
                    curve_subsample: 100,
                    ..Default::default()
                },
                seed: 100 + rep,
            };
            let result = run_with_sample(&frame, &data, &sample, &cfg, 100 + rep);
            f1s.push(result.metrics.f1);
        }
        let f1 = etsb_core::eval::Summary::of(&f1s).expect("runs");
        let v = etsb_core::eval::Summary::of(&values).expect("runs");
        let e = etsb_core::eval::Summary::of(&errors).expect("runs");
        println!(
            "{:<10} {:>8.1} {:>8.1} {:>8.3} {:>8.3}",
            kind.name(),
            v.mean,
            e.mean,
            f1.mean,
            f1.std
        );
    }
    println!("\n(values = distinct attribute values covered by the 20 labelled tuples)");
}
