//! Quickstart: detect errors in the Beers benchmark with ETSB-RNN.
//!
//! ```text
//! cargo run --release -p etsb-core --example quickstart
//! ```
//!
//! Generates a scaled-down Beers dataset, asks the DiverSet sampler for
//! 20 tuples to "label" (labels come from the bundled ground truth, which
//! stands in for the human in the paper's loop), trains the enriched
//! two-stacked bidirectional RNN, and reports precision / recall / F1 on
//! the held-out cells.

use etsb_core::config::{ExperimentConfig, ModelKind, SamplerKind, TrainConfig};
use etsb_core::pipeline::run_once;
use etsb_datasets::{Dataset, GenConfig};

fn main() {
    // 1. Get a dirty/clean table pair. Swap this for your own CSVs —
    //    see the `custom_dataset` example.
    let pair = Dataset::Beers
        .generate(&GenConfig {
            scale: 0.15,
            seed: 7,
        })
        .expect("dataset generation");
    println!(
        "dataset: {} ({} rows x {} cols)",
        pair.dataset,
        pair.dirty.n_rows(),
        pair.dirty.n_cols()
    );

    // 2. Configure the experiment: ETSB-RNN + DiverSet, 20 labelled
    //    tuples, a shortened schedule so the example finishes quickly
    //    (the paper's full schedule is TrainConfig::default()).
    let cfg = ExperimentConfig {
        model: ModelKind::Etsb,
        sampler: SamplerKind::DiverSet,
        n_label_tuples: 20,
        train: TrainConfig {
            epochs: 40,
            eval_every: 10,
            ..Default::default()
        },
        seed: 42,
    };

    // 3. Run: data preparation, sampling, training, evaluation.
    let result = run_once(&pair.dirty, &pair.clean, &cfg, 0).expect("tables share a shape");

    println!("labelled tuples: {:?}", result.sample);
    println!(
        "best epoch {} of {} (train loss {:.4})",
        result.history.best_epoch,
        cfg.train.epochs,
        result.history.train_loss[result.history.best_epoch]
    );
    println!(
        "precision {:.3}  recall {:.3}  F1 {:.3}  (trained in {:.1?})",
        result.metrics.precision, result.metrics.recall, result.metrics.f1, result.train_time
    );
}
