//! Export Figure-6/7 style learning curves as CSV.
//!
//! ```text
//! cargo run --release -p etsb-core --example learning_curves [dataset] [out.csv]
//! ```
//!
//! Trains TSB-RNN and ETSB-RNN on one dataset and writes per-epoch
//! train/test accuracy series (plus the selected best epoch) to a CSV you
//! can plot with any tool — the same series the paper's Figures 6 and 7
//! visualize.

use etsb_core::config::{ExperimentConfig, ModelKind, SamplerKind, TrainConfig};
use etsb_core::pipeline::run_once;
use etsb_datasets::{Dataset, GenConfig};
use std::fmt::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dataset = args
        .get(1)
        .map(|s| Dataset::parse(s).expect("dataset name"))
        .unwrap_or(Dataset::Hospital);
    let out_path = args
        .get(2)
        .cloned()
        .unwrap_or_else(|| format!("learning_curves_{}.csv", dataset.name().to_lowercase()));

    let pair = dataset
        .generate(&GenConfig {
            scale: 0.1,
            seed: 9,
        })
        .expect("dataset generation");
    let mut csv = String::from("model,epoch,train_loss,train_acc,test_acc,is_best\n");

    for model in [ModelKind::Tsb, ModelKind::Etsb] {
        let cfg = ExperimentConfig {
            model,
            sampler: SamplerKind::DiverSet,
            n_label_tuples: 20,
            train: TrainConfig {
                epochs: 60,
                eval_every: 1,
                ..Default::default()
            },
            seed: 3,
        };
        println!("training {} on {dataset}...", model.name());
        let result = run_once(&pair.dirty, &pair.clean, &cfg, 0).expect("generated pair");
        let h = &result.history;
        for epoch in 0..h.train_loss.len() {
            let test_acc = h
                .eval_epochs
                .iter()
                .position(|&e| e == epoch)
                .map(|i| h.test_acc[i].to_string())
                .unwrap_or_default();
            writeln!(
                csv,
                "{},{},{},{},{},{}",
                model.name(),
                epoch,
                h.train_loss[epoch],
                h.train_acc[epoch],
                test_acc,
                (epoch == h.best_epoch) as u8
            )
            .expect("string write");
        }
        println!(
            "  F1 {:.3} at best epoch {} (test acc there: {:?})",
            result.metrics.f1,
            h.best_epoch,
            h.test_acc_at_best()
        );
    }

    std::fs::write(&out_path, csv).expect("writable output path");
    println!("wrote {out_path}");
}
