//! Property-based tests for the tensor substrate.

use etsb_tensor::{init, Matrix};
use proptest::prelude::*;

/// Strategy: a matrix with the given shape and bounded values.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_identity_left_and_right(m in matrix(4, 6)) {
        prop_assert!(Matrix::identity(4).matmul(&m).approx_eq(&m, 1e-5));
        prop_assert!(m.matmul(&Matrix::identity(6)).approx_eq(&m, 1e-5));
    }

    #[test]
    fn matmul_distributes_over_addition(a in matrix(3, 4), b in matrix(4, 5), c in matrix(4, 5)) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-2), "max diff too large");
    }

    #[test]
    fn matmul_associates(a in matrix(3, 3), b in matrix(3, 3), c in matrix(3, 3)) {
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        // f32 accumulation order differs; tolerance scales with magnitude.
        let tol = 1e-2 * (1.0 + lhs.max_abs());
        prop_assert!(lhs.approx_eq(&rhs, tol));
    }

    #[test]
    fn transpose_swaps_matmul_order(a in matrix(3, 4), b in matrix(4, 2)) {
        // (A B)^T = B^T A^T
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn transpose_free_variants_agree(a in matrix(4, 5), b in matrix(3, 5), c in matrix(4, 6)) {
        prop_assert!(a.matmul_transposed(&b).approx_eq(&a.matmul(&b.transpose()), 1e-3));
        prop_assert!(a.transposed_matmul(&c).approx_eq(&a.transpose().matmul(&c), 1e-3));
    }

    #[test]
    fn vecmat_matches_matmul(m in matrix(4, 6), v in proptest::collection::vec(-5.0f32..5.0, 4)) {
        let row = Matrix::row_vector(&v);
        let full = row.matmul(&m);
        let fast = m.vecmat(&v);
        prop_assert!(etsb_tensor::max_abs_diff(full.row(0), &fast) < 1e-3);
    }

    #[test]
    fn softmax_is_a_distribution(v in proptest::collection::vec(-30.0f32..30.0, 1..20)) {
        let mut x = v;
        etsb_tensor::softmax_inplace(&mut x);
        prop_assert!((x.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(x.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn softmax_preserves_order(a in -20.0f32..20.0, b in -20.0f32..20.0) {
        let mut x = vec![a, b];
        etsb_tensor::softmax_inplace(&mut x);
        if a > b {
            prop_assert!(x[0] >= x[1]);
        } else if b > a {
            prop_assert!(x[1] >= x[0]);
        }
    }

    #[test]
    fn serialization_round_trips(m in matrix(3, 7)) {
        let mut buf = bytes_mut();
        etsb_tensor::encode_matrix(&m, &mut buf);
        let back = etsb_tensor::decode_matrix(&mut buf.freeze()).unwrap();
        prop_assert_eq!(m, back);
    }

    #[test]
    fn frobenius_triangle_inequality(a in matrix(4, 4), b in matrix(4, 4)) {
        prop_assert!(a.add(&b).frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-3);
    }

    #[test]
    fn glorot_bounds_hold(seed in 0u64..1000) {
        let m = init::glorot_uniform(6, 10, &mut init::seeded_rng(seed));
        let limit = (6.0f32 / 16.0).sqrt() + 1e-6;
        prop_assert!(m.as_slice().iter().all(|x| x.abs() <= limit));
    }

    #[test]
    fn argmax_returns_a_maximum(v in proptest::collection::vec(-100.0f32..100.0, 1..30)) {
        let idx = etsb_tensor::argmax(&v);
        prop_assert!(v.iter().all(|&x| x <= v[idx]));
    }
}

fn bytes_mut() -> bytes::BytesMut {
    bytes::BytesMut::new()
}
