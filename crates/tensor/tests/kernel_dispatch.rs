//! Forced-fallback dispatch: `ETSB_KERNELS=portable` must pin the
//! portable FastMath backend even on an AVX2+FMA host, and the results
//! routed through the policy dispatch must be bitwise identical to the
//! explicit portable kernels — and, where the host supports it, to the
//! AVX2 kernels too. This is how CI on a non-AVX2 machine still
//! exercises the dispatch layer both ways.
//!
//! The whole file is one test: [`etsb_tensor::simd::active_backend`]
//! resolves the override once per process through a `OnceLock`, so the
//! environment must be set before any other test could touch it.

use etsb_tensor::init::seeded_rng;
use etsb_tensor::simd::{
    active_backend, dot_fast_with, matmul_window_fast_with, tanh_fast, tanh_fast_with, Backend,
};
use etsb_tensor::{KernelPolicy, Matrix};
use rand::Rng;

#[test]
fn etsb_kernels_portable_forces_the_fallback_dispatch() {
    // Must happen before the first `active_backend` call in this
    // process; the OnceLock then pins the portable backend for good.
    std::env::set_var("ETSB_KERNELS", "portable");
    assert_eq!(
        active_backend(),
        Backend::Portable,
        "ETSB_KERNELS=portable did not mask the detected backend"
    );

    let mut rng = seeded_rng(7);
    let a = Matrix::from_fn(9, 86, |_, _| rng.gen_range(-1.0..1.0));
    let b = Matrix::from_fn(86, 64, |_, _| rng.gen_range(-1.0..1.0));

    // The policy dispatch now routes FastMath to the portable kernels.
    let mut via_policy = Matrix::default();
    a.matmul_window_policy_into(0, 9, &b, &mut via_policy, KernelPolicy::FastMath);
    let mut portable = Matrix::default();
    matmul_window_fast_with(Backend::Portable, &a, 0, 9, &b, &mut portable);
    assert_eq!(
        via_policy.as_slice(),
        portable.as_slice(),
        "policy dispatch under ETSB_KERNELS=portable diverged from the portable kernel"
    );

    let v: Vec<f32> = (0..86).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut fast = Vec::new();
    a.matvec_policy_into(&v, &mut fast, KernelPolicy::FastMath);
    for (i, &got) in fast.iter().enumerate() {
        let want = dot_fast_with(Backend::Portable, a.row(i), &v);
        assert_eq!(got.to_bits(), want.to_bits(), "matvec row {i} diverged");
    }

    // The elementwise FastMath tanh routes through the same masked
    // backend: the implicit-dispatch entry point must match the
    // explicit portable kernel bit for bit.
    let xs: Vec<f32> = (0..37).map(|_| rng.gen_range(-6.0..6.0)).collect();
    let mut via_dispatch = xs.clone();
    tanh_fast(&mut via_dispatch);
    let mut portable_tanh = xs;
    tanh_fast_with(Backend::Portable, &mut portable_tanh);
    for (i, (a, b)) in via_dispatch.iter().zip(&portable_tanh).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "fast tanh diverged at element {i}"
        );
    }

    // Where the host actually has AVX2+FMA, the masked portable results
    // must still be bitwise identical to what the native kernels would
    // have produced — masking changes nothing but the instruction set.
    #[cfg(target_arch = "x86_64")]
    {
        // etsb: allow(fast-math-confinement) -- the dispatch test names the CPU feature gate.
        let avx2 = std::arch::is_x86_feature_detected!("avx2");
        // etsb: allow(fast-math-confinement) -- the dispatch test names the CPU feature gate.
        let fma = std::arch::is_x86_feature_detected!("fma");
        if avx2 && fma {
            let mut native = Matrix::default();
            matmul_window_fast_with(Backend::Avx2, &a, 0, 9, &b, &mut native);
            assert_eq!(
                via_policy.as_slice(),
                native.as_slice(),
                "masked portable result diverged from the native AVX2 kernels"
            );
            let mut pre: Vec<f32> = (0..37).map(|_| rng.gen_range(-6.0..6.0)).collect();
            let mut pre_avx = pre.clone();
            tanh_fast_with(Backend::Portable, &mut pre);
            tanh_fast_with(Backend::Avx2, &mut pre_avx);
            for (i, (p, n)) in pre.iter().zip(&pre_avx).enumerate() {
                assert_eq!(
                    p.to_bits(),
                    n.to_bits(),
                    "portable vs AVX2 fast tanh diverged at element {i}"
                );
            }
        }
    }
}
