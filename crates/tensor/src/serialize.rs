//! Compact binary (de)serialization of matrices, used by the model
//! checkpointing in `etsb-nn` (the paper saves the weights of the epoch
//! with the lowest training loss and restores them before evaluation).
//!
//! Format: `u64 rows | u64 cols | rows*cols little-endian f32`.

use crate::Matrix;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Error returned when a checkpoint buffer cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than the header or payload requires.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Header describes an implausibly large matrix.
    Oversized {
        /// Row count claimed by the header.
        rows: u64,
        /// Column count claimed by the header.
        cols: u64,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated matrix buffer: need {needed} bytes, have {available}"
                )
            }
            DecodeError::Oversized { rows, cols } => {
                write!(f, "implausible matrix header {rows}x{cols}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Upper bound on decoded elements: prevents a corrupt header from
/// triggering a multi-gigabyte allocation.
const MAX_ELEMENTS: u64 = 1 << 28;

/// Append `m` to `buf` in checkpoint format.
pub fn encode_matrix(m: &Matrix, buf: &mut BytesMut) {
    buf.reserve(16 + m.len() * 4);
    buf.put_u64_le(m.rows() as u64);
    buf.put_u64_le(m.cols() as u64);
    for &v in m.as_slice() {
        buf.put_f32_le(v);
    }
}

/// Decode one matrix from the front of `buf`, advancing it.
pub fn decode_matrix(buf: &mut Bytes) -> Result<Matrix, DecodeError> {
    if buf.remaining() < 16 {
        return Err(DecodeError::Truncated {
            needed: 16,
            available: buf.remaining(),
        });
    }
    let rows = buf.get_u64_le();
    let cols = buf.get_u64_le();
    let elems = rows.checked_mul(cols).filter(|&e| e <= MAX_ELEMENTS);
    let Some(elems) = elems else {
        return Err(DecodeError::Oversized { rows, cols });
    };
    let needed = elems as usize * 4;
    if buf.remaining() < needed {
        return Err(DecodeError::Truncated {
            needed,
            available: buf.remaining(),
        });
    }
    let mut data = Vec::with_capacity(elems as usize);
    for _ in 0..elems {
        data.push(buf.get_f32_le());
    }
    Ok(Matrix::from_vec(rows as usize, cols as usize, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let m = Matrix::from_fn(3, 5, |i, j| i as f32 * 0.5 - j as f32);
        let mut buf = BytesMut::new();
        encode_matrix(&m, &mut buf);
        let mut bytes = buf.freeze();
        let back = decode_matrix(&mut bytes).unwrap();
        assert_eq!(m, back);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn round_trip_multiple() {
        let a = Matrix::identity(4);
        let b = Matrix::zeros(2, 7);
        let mut buf = BytesMut::new();
        encode_matrix(&a, &mut buf);
        encode_matrix(&b, &mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(decode_matrix(&mut bytes).unwrap(), a);
        assert_eq!(decode_matrix(&mut bytes).unwrap(), b);
    }

    #[test]
    fn truncated_header() {
        let mut bytes = Bytes::from_static(&[0u8; 8]);
        assert!(matches!(
            decode_matrix(&mut bytes),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn truncated_payload() {
        let m = Matrix::identity(4);
        let mut buf = BytesMut::new();
        encode_matrix(&m, &mut buf);
        let full = buf.freeze();
        let mut cut = full.slice(0..full.len() - 4);
        assert!(matches!(
            decode_matrix(&mut cut),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn oversized_header_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u64_le(u64::MAX);
        buf.put_u64_le(2);
        let mut bytes = buf.freeze();
        assert!(matches!(
            decode_matrix(&mut bytes),
            Err(DecodeError::Oversized { .. })
        ));
    }

    #[test]
    fn empty_matrix_round_trips() {
        let m = Matrix::zeros(0, 5);
        let mut buf = BytesMut::new();
        encode_matrix(&m, &mut buf);
        let back = decode_matrix(&mut buf.freeze()).unwrap();
        assert_eq!(back.shape(), (0, 5));
    }
}
