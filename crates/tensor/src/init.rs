//! Seeded weight initializers.
//!
//! Every initializer takes an explicit RNG so that model construction is
//! reproducible: the paper's 10-repetition protocol re-seeds run *i* with
//! `base_seed + i` and must produce identical weights across invocations.

use crate::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Construct the deterministic RNG used across the workspace.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Uniform values in `[-limit, limit)`.
pub fn uniform(rows: usize, cols: usize, limit: f32, rng: &mut StdRng) -> Matrix {
    assert!(limit >= 0.0, "uniform: negative limit {limit}");
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..=limit))
}

/// Glorot/Xavier uniform: `limit = sqrt(6 / (fan_in + fan_out))`.
///
/// The default for dense and embedding weights, matching Keras'
/// `glorot_uniform` used by the paper's reference implementation.
pub fn glorot_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    uniform(rows, cols, limit, rng)
}

/// Scaled-identity-plus-noise initializer for recurrent (hidden-to-hidden)
/// weights. Keras uses an orthogonal initializer for `SimpleRNN`; a scaled
/// identity with small uniform noise preserves the key property (spectral
/// radius near 1 so gradients neither explode nor vanish over ~128 steps)
/// without an SVD implementation.
pub fn recurrent_init(n: usize, rng: &mut StdRng) -> Matrix {
    let noise = 0.05 / (n as f32).sqrt();
    Matrix::from_fn(n, n, |i, j| {
        let base = if i == j { 0.9 } else { 0.0 };
        base + rng.gen_range(-noise..=noise)
    })
}

/// Standard normal values scaled by `std`.
pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut StdRng) -> Matrix {
    // Box–Muller transform; avoids a dependency on rand_distr.
    let next_pair = |rng: &mut StdRng| {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        (r * theta.cos(), r * theta.sin())
    };
    let mut spare: Option<f32> = None;
    Matrix::from_fn(rows, cols, |_, _| {
        let z = if let Some(s) = spare.take() {
            s
        } else {
            let (a, b) = next_pair(rng);
            spare = Some(b);
            a
        };
        z * std
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_weights() {
        let a = glorot_uniform(8, 8, &mut seeded_rng(7));
        let b = glorot_uniform(8, 8, &mut seeded_rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_weights() {
        let a = glorot_uniform(8, 8, &mut seeded_rng(7));
        let b = glorot_uniform(8, 8, &mut seeded_rng(8));
        assert_ne!(a, b);
    }

    #[test]
    fn glorot_respects_limit() {
        let m = glorot_uniform(10, 20, &mut seeded_rng(1));
        let limit = (6.0 / 30.0_f32).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= limit + 1e-6));
    }

    #[test]
    fn recurrent_init_near_identity() {
        let m = recurrent_init(16, &mut seeded_rng(3));
        for i in 0..16 {
            assert!((m[(i, i)] - 0.9).abs() < 0.05);
        }
        // Off-diagonals are small noise.
        assert!(m[(0, 1)].abs() < 0.05);
    }

    #[test]
    fn normal_has_roughly_requested_std() {
        let m = normal(100, 100, 0.5, &mut seeded_rng(11));
        let s = crate::ops::stddev(m.as_slice());
        assert!((s - 0.5).abs() < 0.02, "std was {s}");
        assert!(crate::ops::mean(m.as_slice()).abs() < 0.02);
    }
}
