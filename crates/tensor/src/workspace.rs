//! Keyed pool of reusable scratch buffers for the per-sample hot path.
//!
//! The sequence layers in `etsb-nn` used to heap-allocate several `Vec`s
//! per timestep. A [`Workspace`] owns those buffers instead: callers
//! `take_*` a buffer at the start of an operation and `put_*` it back at
//! the end, so after a warmup pass the same allocations are recycled
//! forever. Buffers are keyed by a static string naming their role
//! (e.g. `"rnn.dz"`), which keeps shapes from unrelated call sites out of
//! each other's pools, and every acquisition is **zero-filled at the
//! requested size** — a taken buffer is indistinguishable from a freshly
//! allocated `vec![0.0; len]` / `Matrix::zeros`, which is what makes the
//! workspace path bitwise identical to the allocating path.
//!
//! Each key holds a *stack* of buffers, so re-entrant use (taking the
//! same key twice before returning it, as the bidirectional layers do) is
//! safe: the second take simply pops — or creates — another buffer.

use crate::Matrix;
use std::collections::HashMap;

/// A pool of keyed, zero-on-acquire scratch buffers.
///
/// One workspace is intended per worker thread: it is `Send` but not
/// shared, so there is no synchronization on the hot path. Dropping a
/// workspace frees everything it has pooled.
#[derive(Debug, Default)]
pub struct Workspace {
    vecs: HashMap<&'static str, Vec<Vec<f32>>>,
    mats: HashMap<&'static str, Vec<Matrix>>,
}

impl Workspace {
    /// An empty workspace; buffers are created lazily on first take.
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrow a zeroed vector of exactly `len` elements under `key`.
    ///
    /// Reuses a pooled buffer when one is available (allocation-free once
    /// its capacity has grown to `len`); return it with [`Self::put_vec`]
    /// when done.
    pub fn take_vec(&mut self, key: &'static str, len: usize) -> Vec<f32> {
        let mut v = self.vecs.entry(key).or_default().pop().unwrap_or_default();
        v.clear();
        v.resize(len, 0.0);
        v
    }

    /// Return a vector to the pool under `key`.
    pub fn put_vec(&mut self, key: &'static str, v: Vec<f32>) {
        self.vecs.entry(key).or_default().push(v);
    }

    /// Borrow a zeroed `rows x cols` matrix under `key`.
    ///
    /// Reuses a pooled buffer when one is available (allocation-free once
    /// its capacity suffices); return it with [`Self::put_mat`] when done.
    pub fn take_mat(&mut self, key: &'static str, rows: usize, cols: usize) -> Matrix {
        let mut m = self.mats.entry(key).or_default().pop().unwrap_or_default();
        m.resize_zeroed(rows, cols);
        m
    }

    /// Return a matrix to the pool under `key`.
    pub fn put_mat(&mut self, key: &'static str, m: Matrix) {
        self.mats.entry(key).or_default().push(m);
    }

    /// Number of buffers currently pooled (both kinds), for diagnostics.
    pub fn pooled(&self) -> usize {
        // Commutative usize sums over pool sizes: iteration order cannot
        // change the result, so the maps keep their O(1) hot-path lookups.
        self.vecs.values().map(Vec::len).sum::<usize>() // etsb: allow(hash-iter-order)
            + self.mats.values().map(Vec::len).sum::<usize>()
    }

    /// Heap bytes reserved by every pooled buffer (capacity, not length).
    /// This is the retained footprint a warmed workspace keeps alive
    /// between operations; the trainer exports it as the
    /// `workspace_bytes` gauge, and the leak-regression tests pin that it
    /// stops growing once the pools are warm.
    pub fn pooled_bytes(&self) -> usize {
        let vec_bytes: usize = self
            .vecs
            .values() // etsb: allow(hash-iter-order) -- commutative usize sum
            .flatten()
            .map(|v| v.capacity() * std::mem::size_of::<f32>())
            .sum();
        let mat_bytes: usize = self
            .mats
            .values() // etsb: allow(hash-iter-order) -- commutative usize sum
            .flatten()
            .map(Matrix::capacity_bytes)
            .sum();
        vec_bytes + mat_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zeroed_regardless_of_history() {
        let mut ws = Workspace::new();
        ws.put_vec("v", vec![7.0, 8.0, 9.0]);
        let v = ws.take_vec("v", 5);
        assert_eq!(v, vec![0.0; 5]);

        ws.put_mat("m", Matrix::full(3, 3, 4.2));
        let m = ws.take_mat("m", 2, 4);
        assert_eq!(m, Matrix::zeros(2, 4));
    }

    #[test]
    fn buffers_are_recycled_not_reallocated() {
        let mut ws = Workspace::new();
        let v = ws.take_vec("v", 64);
        let ptr = v.as_ptr();
        ws.put_vec("v", v);
        // Same key, smaller request: capacity suffices, same allocation.
        let v2 = ws.take_vec("v", 32);
        assert_eq!(v2.as_ptr(), ptr, "vector was reallocated");

        let m = ws.take_mat("m", 8, 8);
        let ptr = m.as_slice().as_ptr();
        ws.put_mat("m", m);
        let m2 = ws.take_mat("m", 4, 16);
        assert_eq!(m2.as_slice().as_ptr(), ptr, "matrix was reallocated");
    }

    #[test]
    fn double_take_yields_distinct_buffers() {
        let mut ws = Workspace::new();
        let a = ws.take_vec("v", 4);
        let b = ws.take_vec("v", 4);
        assert_ne!(a.as_ptr(), b.as_ptr());
        ws.put_vec("v", a);
        ws.put_vec("v", b);
        assert_eq!(ws.pooled(), 2);
    }

    #[test]
    fn pooled_bytes_counts_retained_capacity() {
        let mut ws = Workspace::new();
        assert_eq!(ws.pooled_bytes(), 0);
        let v = ws.take_vec("v", 16);
        let m = ws.take_mat("m", 4, 8);
        // Taken-out buffers are the caller's until returned.
        assert_eq!(ws.pooled_bytes(), 0);
        let expect = v.capacity() * 4 + m.capacity_bytes();
        ws.put_vec("v", v);
        ws.put_mat("m", m);
        assert_eq!(ws.pooled_bytes(), expect);

        // A warmed take/put cycle at the same or smaller size must not
        // grow the retained footprint.
        let before = ws.pooled_bytes();
        for _ in 0..3 {
            let v = ws.take_vec("v", 8);
            let m = ws.take_mat("m", 2, 4);
            ws.put_vec("v", v);
            ws.put_mat("m", m);
        }
        assert_eq!(ws.pooled_bytes(), before);
    }

    #[test]
    fn keys_do_not_alias() {
        let mut ws = Workspace::new();
        ws.put_vec("a", Vec::with_capacity(128));
        let b = ws.take_vec("b", 4);
        assert!(b.capacity() < 128, "buffer leaked across keys");
    }
}
