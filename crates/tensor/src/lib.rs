//! # etsb-tensor
//!
//! Dense `f32` linear-algebra substrate for the ETSB-RNN error-detection
//! stack. Provides a row-major [`Matrix`] type with the operations the
//! neural-network layer zoo in `etsb-nn` needs: matrix products (including
//! transposed variants that avoid materializing transposes), element-wise
//! arithmetic, reductions, seeded random initialization and a compact
//! binary serialization used for weight checkpoints.
//!
//! The crate deliberately stays scalar (no SIMD intrinsics, no BLAS) so it
//! builds anywhere; the matmul kernels are written cache-consciously
//! (ikj loop order, transpose-free variants) which is enough to train the
//! paper's models in seconds on a laptop core.
//!
//! ```
//! use etsb_tensor::Matrix;
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! assert_eq!(a.matmul(&b), a);
//! ```

#![warn(missing_docs)]

mod grad;
mod matrix;
mod ops;
mod serialize;
mod workspace;

/// Seeded weight-initialization schemes (uniform, Glorot, recurrent).
pub mod init;
/// NaN/Inf detection hooks, active under the `sanitize` feature.
pub mod sanitize;

pub use grad::GradBuffer;
pub use matrix::Matrix;
pub use ops::{
    add_assign, argmax, axpy, dot, l2_norm, max_abs_diff, mean, relu_inplace, scale,
    softmax_inplace, stddev, sub_assign, tanh_inplace, variance,
};
pub use serialize::{decode_matrix, encode_matrix, DecodeError};
pub use workspace::Workspace;

/// Crate-wide numeric tolerance used by tests and gradient checks.
pub const EPS: f32 = 1e-5;
