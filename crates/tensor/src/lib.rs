//! # etsb-tensor
//!
//! Dense `f32` linear-algebra substrate for the ETSB-RNN error-detection
//! stack. Provides a row-major [`Matrix`] type with the operations the
//! neural-network layer zoo in `etsb-nn` needs: matrix products (including
//! transposed variants that avoid materializing transposes), element-wise
//! arithmetic, reductions, seeded random initialization and a compact
//! binary serialization used for weight checkpoints.
//!
//! The reference kernels stay scalar (no BLAS) so they build anywhere and
//! pin the bitwise-determinism contract; the matmul kernels are written
//! cache-consciously (ikj loop order, transpose-free variants) which is
//! enough to train the paper's models in seconds on a laptop core. An
//! opt-in fast inference tier lives in [`simd`]: fused multiply-add
//! kernels (portable scalar or runtime-detected AVX2+FMA) selected
//! through a [`KernelPolicy`], epsilon-close to the exact path and
//! bitwise identical across backends.
//!
//! ```
//! use etsb_tensor::Matrix;
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! assert_eq!(a.matmul(&b), a);
//! ```

#![warn(missing_docs)]

mod grad;
mod matrix;
mod ops;
mod serialize;
mod workspace;

/// Seeded weight-initialization schemes (uniform, Glorot, recurrent).
pub mod init;
/// NaN/Inf detection hooks, active under the `sanitize` feature.
pub mod sanitize;
/// Opt-in FastMath inference kernels with runtime backend dispatch.
pub mod simd;

pub use grad::GradBuffer;
pub use matrix::Matrix;
pub use ops::{
    add_assign, argmax, axpy, dot, l2_norm, max_abs_diff, mean, relu_inplace, scale,
    softmax_inplace, stddev, sub_assign, tanh_inplace, variance,
};
pub use serialize::{decode_matrix, encode_matrix, DecodeError};
pub use simd::KernelPolicy;
pub use workspace::Workspace;

/// Crate-wide numeric tolerance used by tests and gradient checks.
pub const EPS: f32 = 1e-5;
