//! Mergeable gradient storage for data-parallel training.
//!
//! A [`GradBuffer`] holds one gradient matrix ("slot") per trainable
//! parameter, in the same stable order the model reports its parameters.
//! Backward passes accumulate into a buffer instead of into the layers
//! themselves, so a mini-batch can be sharded across threads: each shard
//! fills its own buffer and the shards are [`GradBuffer::merge`]d in a
//! fixed order, keeping results bitwise-deterministic for a given seed
//! regardless of worker count.

use crate::Matrix;

/// Per-parameter gradient accumulators, mergeable across shards.
#[derive(Clone, Debug, PartialEq)]
pub struct GradBuffer {
    slots: Vec<Matrix>,
}

impl GradBuffer {
    /// New buffer with one zeroed slot per `(rows, cols)` shape.
    pub fn from_shapes(shapes: impl IntoIterator<Item = (usize, usize)>) -> Self {
        Self {
            slots: shapes
                .into_iter()
                .map(|(r, c)| Matrix::zeros(r, c))
                .collect(),
        }
    }

    /// Reset every slot to zero, keeping allocations.
    pub fn zero(&mut self) {
        for s in &mut self.slots {
            s.fill_zero();
        }
    }

    /// Element-wise add `other` into `self` (shard reduction).
    ///
    /// # Panics
    /// If the buffers have different arity or slot shapes.
    pub fn merge(&mut self, other: &GradBuffer) {
        assert_eq!(
            self.slots.len(),
            other.slots.len(),
            "GradBuffer::merge: arity {} != {}",
            self.slots.len(),
            other.slots.len()
        );
        for (a, b) in self.slots.iter_mut().zip(&other.slots) {
            a.add_assign(b);
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the buffer has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Slot `i` (same index as the corresponding parameter).
    pub fn slot(&self, i: usize) -> &Matrix {
        &self.slots[i]
    }

    /// Mutable slot `i`.
    pub fn slot_mut(&mut self, i: usize) -> &mut Matrix {
        &mut self.slots[i]
    }

    /// All slots in parameter order.
    pub fn slots(&self) -> &[Matrix] {
        &self.slots
    }

    /// All slots, mutably (for splitting across layer backward calls).
    pub fn slots_mut(&mut self) -> &mut [Matrix] {
        &mut self.slots
    }

    /// Sanitizer hook: assert every slot is finite (active under the
    /// `sanitize` feature, no-op otherwise).
    pub fn assert_finite(&self, layer: &str, op: &str) {
        for s in &self.slots {
            s.assert_finite(layer, op);
        }
    }

    /// Global L2 norm over every element of every slot, accumulated in
    /// f64 slot by slot so the result does not depend on slot layout.
    /// Used as a per-merge training-health gauge by the obs layer.
    pub fn global_norm(&self) -> f64 {
        let sum_sq: f64 = self
            .slots
            .iter()
            .flat_map(|s| s.as_slice())
            .map(|&v| {
                let v = v as f64;
                v * v
            })
            .sum();
        sum_sq.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_shapes_allocates_zeroed_slots() {
        let g = GradBuffer::from_shapes([(2, 3), (1, 4)]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.slot(0).shape(), (2, 3));
        assert_eq!(g.slot(1).shape(), (1, 4));
        assert_eq!(g.slot(0).sum(), 0.0);
    }

    #[test]
    fn merge_adds_elementwise() {
        let mut a = GradBuffer::from_shapes([(1, 2)]);
        let mut b = GradBuffer::from_shapes([(1, 2)]);
        a.slot_mut(0)[(0, 0)] = 1.0;
        b.slot_mut(0)[(0, 0)] = 2.0;
        b.slot_mut(0)[(0, 1)] = 5.0;
        a.merge(&b);
        assert_eq!(a.slot(0)[(0, 0)], 3.0);
        assert_eq!(a.slot(0)[(0, 1)], 5.0);
    }

    #[test]
    fn zero_clears_but_keeps_shape() {
        let mut g = GradBuffer::from_shapes([(2, 2)]);
        g.slot_mut(0).as_mut_slice().fill(7.0);
        g.zero();
        assert_eq!(g.slot(0).sum(), 0.0);
        assert_eq!(g.slot(0).shape(), (2, 2));
    }

    #[test]
    fn global_norm_spans_all_slots() {
        let mut g = GradBuffer::from_shapes([(1, 2), (2, 1)]);
        g.slot_mut(0)[(0, 0)] = 3.0;
        g.slot_mut(1)[(1, 0)] = 4.0;
        assert!((g.global_norm() - 5.0).abs() < 1e-12);
        assert_eq!(GradBuffer::from_shapes([(2, 2)]).global_norm(), 0.0);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn merge_rejects_mismatched_arity() {
        let mut a = GradBuffer::from_shapes([(1, 1)]);
        let b = GradBuffer::from_shapes([(1, 1), (1, 1)]);
        a.merge(&b);
    }
}
