//! Row-major dense `f32` matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f32` values.
///
/// Shapes are checked at runtime: mismatched operands panic with a message
/// naming the operation and both shapes, which turns silent numeric bugs
/// into loud test failures. All storage is a single contiguous `Vec<f32>`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from an explicit row-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: buffer of len {} cannot form a {rows}x{cols} matrix",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Build from row slices; all rows must have equal length.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(
                row.len(),
                c,
                "Matrix::from_rows: ragged rows ({} vs {c})",
                row.len()
            );
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Build a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// A 1 x n row vector.
    pub fn row_vector(values: &[f32]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// An n x 1 column vector.
    pub fn col_vector(values: &[f32]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Heap bytes reserved by the backing buffer (capacity, not length) —
    /// the footprint a pooled scratch matrix keeps alive between uses.
    #[inline]
    pub fn capacity_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f32>()
    }

    /// Read-only view of the row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Read-only view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(
            c < self.cols,
            "col {c} out of bounds for {} cols",
            self.cols
        );
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Explicit transpose, blocked so writes stream through `out`'s rows
    /// instead of striding the full matrix height on every element.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::default();
        self.transpose_into(&mut out);
        out
    }

    /// [`Matrix::transpose`] written into `out` (reshaped in place) —
    /// allocation-free once `out`'s capacity has grown to fit.
    // etsb: allow(shape-assert, into-shape-assert) -- `out` is a reshaped sink; there is no shape precondition.
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.resize_zeroed(self.cols, self.rows);
        const BLOCK: usize = 32;
        for ib in (0..self.rows).step_by(BLOCK) {
            let imax = (ib + BLOCK).min(self.rows);
            for jb in (0..self.cols).step_by(BLOCK) {
                let jmax = (jb + BLOCK).min(self.cols);
                // j outer within the block: the inner i loop writes a
                // contiguous run of out.row(j).
                for j in jb..jmax {
                    for i in ib..imax {
                        out.data[j * self.rows + i] = self.data[i * self.cols + j];
                    }
                }
            }
        }
    }

    /// Shared accumulation kernel: `out[j] += Σ_k v[k] * self[k][j]`,
    /// i.e. `out += v @ self`, k-unrolled by eight. Every `vecmat` and
    /// every `matmul` output row goes through this one function, which is
    /// what guarantees `a.matmul(&w).row(t)` stays bitwise identical to
    /// `w.vecmat(a.row(t))` — the batched and per-step sequence paths in
    /// `etsb-nn` must never diverge.
    #[inline]
    fn accumulate_rows(&self, v: &[f32], out: &mut [f32]) {
        assert_eq!(
            v.len(),
            self.rows,
            "accumulate_rows: {} coefficients vs {} rows",
            v.len(),
            self.rows
        );
        self.accumulate_rows_from(0, v, out);
    }

    /// [`Matrix::accumulate_rows`] over the row window starting at
    /// `start`: `out[j] += Σ_k v[k] * self[start + k][j]`. Same ascending-k
    /// add order and zero-skip; the window form lets gradient kernels
    /// align shifted time ranges (e.g. `h_{t-1}` against `dz_t`).
    #[inline]
    fn accumulate_rows_from(&self, start: usize, v: &[f32], out: &mut [f32]) {
        assert!(
            start + v.len() <= self.rows && out.len() == self.cols,
            "accumulate_rows_from: window {start}+{} over {} rows / out {} vs {} cols",
            v.len(),
            self.rows,
            out.len(),
            self.cols
        );
        let cols = self.cols;
        let mut chunks = v.chunks_exact(8);
        let mut base = start;
        for ch in &mut chunks {
            let rows = &self.data[base * cols..(base + 8) * cols];
            Self::apply_chunk8(ch, rows, cols, out);
            base += 8;
        }
        for (k, &vk) in chunks.remainder().iter().enumerate() {
            if vk == 0.0 {
                continue;
            }
            for (o, &m) in out.iter_mut().zip(self.row(base + k)) {
                *o += vk * m;
            }
        }
    }

    /// One eight-`k` chunk of [`Matrix::accumulate_rows_from`]:
    /// `out[j] += Σ_{k<8} ch[k] * rows[k * cols + j]`, adds in ascending
    /// `k`. Factored out so the four-row batched sweep below can fall
    /// back to exactly this code path row by row, keeping every batched
    /// output row bitwise identical to its single-row sweep.
    #[inline]
    // etsb: allow(shape-assert) -- shared kernel; the callers' window asserts name their op.
    fn apply_chunk8(ch: &[f32], rows: &[f32], cols: usize, out: &mut [f32]) {
        let (r0, rest) = rows.split_at(cols);
        let (r1, rest) = rest.split_at(cols);
        let (r2, rest) = rest.split_at(cols);
        let (r3, rest) = rest.split_at(cols);
        let (r4, rest) = rest.split_at(cols);
        let (r5, rest) = rest.split_at(cols);
        let (r6, r7) = rest.split_at(cols);
        if ch.iter().all(|&vk| vk != 0.0) {
            // All-nonzero fast path: fused across eight k's so the
            // inner loop register-blocks out[j], but the adds stay in
            // ascending-k order — bitwise identical to the scalar
            // fallback below.
            let (v0, v1, v2, v3) = (ch[0], ch[1], ch[2], ch[3]);
            let (v4, v5, v6, v7) = (ch[4], ch[5], ch[6], ch[7]);
            let it = out
                .iter_mut()
                .zip(r0)
                .zip(r1)
                .zip(r2)
                .zip(r3)
                .zip(r4)
                .zip(r5)
                .zip(r6)
                .zip(r7);
            for ((((((((o, &a), &b), &c), &d), &e), &f), &g), &h) in it {
                let mut acc = *o;
                acc += v0 * a;
                acc += v1 * b;
                acc += v2 * c;
                acc += v3 * d;
                acc += v4 * e;
                acc += v5 * f;
                acc += v6 * g;
                acc += v7 * h;
                *o = acc;
            }
        } else {
            for (k, &vk) in ch.iter().enumerate() {
                if vk == 0.0 {
                    continue;
                }
                let r = &rows[k * cols..(k + 1) * cols];
                for (o, &m) in out.iter_mut().zip(r) {
                    *o += vk * m;
                }
            }
        }
    }

    /// Fully-fused four-row sweep for windows whose coefficients are all
    /// nonzero: `outs[r][j] += Σ_k vs[r][k] * self[start+k][j]`, blocked
    /// over 16 output columns so the four accumulator blocks stay in
    /// registers for the entire k loop — each weight row element is
    /// loaded once and the output is touched exactly twice (load, store)
    /// per block. The per-element add order is ascending k, the same
    /// sequence the chunked and single-row sweeps produce when no
    /// coefficient is zero.
    fn fused_rows4_from(&self, start: usize, vs: [&[f32]; 4], outs: [&mut [f32]; 4]) {
        const JB: usize = 16;
        let cols = self.cols;
        let len = vs[0].len();
        let [va, vb, vc, vd] = vs;
        let [oa, ob, oc, od] = outs;
        let mut jb = 0;
        while jb + JB <= cols {
            let mut a0 = [0.0_f32; JB];
            let mut a1 = [0.0_f32; JB];
            let mut a2 = [0.0_f32; JB];
            let mut a3 = [0.0_f32; JB];
            a0.copy_from_slice(&oa[jb..jb + JB]);
            a1.copy_from_slice(&ob[jb..jb + JB]);
            a2.copy_from_slice(&oc[jb..jb + JB]);
            a3.copy_from_slice(&od[jb..jb + JB]);
            for k in 0..len {
                let base = (start + k) * cols + jb;
                let w = &self.data[base..base + JB];
                let (x0, x1, x2, x3) = (va[k], vb[k], vc[k], vd[k]);
                for j in 0..JB {
                    a0[j] += x0 * w[j];
                    a1[j] += x1 * w[j];
                    a2[j] += x2 * w[j];
                    a3[j] += x3 * w[j];
                }
            }
            oa[jb..jb + JB].copy_from_slice(&a0);
            ob[jb..jb + JB].copy_from_slice(&a1);
            oc[jb..jb + JB].copy_from_slice(&a2);
            od[jb..jb + JB].copy_from_slice(&a3);
            jb += JB;
        }
        for j in jb..cols {
            let (mut t0, mut t1, mut t2, mut t3) = (oa[j], ob[j], oc[j], od[j]);
            for k in 0..len {
                let w = self.data[(start + k) * cols + j];
                t0 += va[k] * w;
                t1 += vb[k] * w;
                t2 += vc[k] * w;
                t3 += vd[k] * w;
            }
            oa[j] = t0;
            ob[j] = t1;
            oc[j] = t2;
            od[j] = t3;
        }
    }

    /// Four [`Matrix::accumulate_rows_from`] sweeps over the same row
    /// window, interleaved: `outs[r][j] += Σ_k vs[r][k] * self[start+k][j]`
    /// for each of the four coefficient/output pairs. When every
    /// coefficient in a chunk is nonzero the inner loop carries four
    /// independent accumulator chains — one per output row — so the
    /// eight-deep add latency chain of the single-row sweep overlaps
    /// fourfold and each loaded weight row serves four outputs. Per
    /// output row the adds stay in ascending `k` with the same zero-skip
    /// fallback, so each row is bitwise identical to its own single-row
    /// sweep — the invariant the batched sequence kernels in `etsb-nn`
    /// are built on.
    fn accumulate_rows4_from(&self, start: usize, vs: [&[f32]; 4], outs: [&mut [f32]; 4]) {
        let len = vs[0].len();
        assert!(
            start + len <= self.rows
                && vs.iter().all(|v| v.len() == len)
                && outs.iter().all(|o| o.len() == self.cols),
            "accumulate_rows4_from: window {start}+{len} over {} rows / outs vs {} cols",
            self.rows,
            self.cols
        );
        let cols = self.cols;
        let [va, vb, vc, vd] = vs;
        let [oa, ob, oc, od] = outs;
        if va.iter().chain(vb).chain(vc).chain(vd).all(|&x| x != 0.0) {
            // All-nonzero window (the common case for dense activations):
            // the j-blocked kernel keeps each 16-wide output block in
            // registers across the whole k loop instead of reloading it
            // per k-chunk. Per output element the adds still run in
            // ascending k with nothing skipped, so results are bitwise
            // identical to the chunked path below.
            return self.fused_rows4_from(start, [va, vb, vc, vd], [oa, ob, oc, od]);
        }
        // k-chunks of four (not eight): the fused inner loop then keeps
        // 4 weight vectors + 4 accumulators + 16 broadcast coefficients
        // live, which fits the register file; an 8-deep chunk spills.
        // Chunk width never changes results: per output element the adds
        // run in ascending k with the same skip-on-zero rule either way.
        let n_chunks = len / 4;
        for c in 0..n_chunks {
            let base = start + c * 4;
            let rows = &self.data[base * cols..(base + 4) * cols];
            let ca = &va[c * 4..c * 4 + 4];
            let cb = &vb[c * 4..c * 4 + 4];
            let cc = &vc[c * 4..c * 4 + 4];
            let cd = &vd[c * 4..c * 4 + 4];
            let fused = ca.iter().chain(cb).chain(cc).chain(cd).all(|&x| x != 0.0);
            if fused {
                let (r0, rest) = rows.split_at(cols);
                let (r1, rest) = rest.split_at(cols);
                let (r2, r3) = rest.split_at(cols);
                // Reslice to `cols` so the indexed inner loop elides its
                // bounds checks.
                let (sa, sb) = (&mut oa[..cols], &mut ob[..cols]);
                let (sc, sd) = (&mut oc[..cols], &mut od[..cols]);
                for j in 0..cols {
                    let (w0, w1, w2, w3) = (r0[j], r1[j], r2[j], r3[j]);
                    let mut t0 = sa[j];
                    t0 += ca[0] * w0;
                    t0 += ca[1] * w1;
                    t0 += ca[2] * w2;
                    t0 += ca[3] * w3;
                    sa[j] = t0;
                    let mut t1 = sb[j];
                    t1 += cb[0] * w0;
                    t1 += cb[1] * w1;
                    t1 += cb[2] * w2;
                    t1 += cb[3] * w3;
                    sb[j] = t1;
                    let mut t2 = sc[j];
                    t2 += cc[0] * w0;
                    t2 += cc[1] * w1;
                    t2 += cc[2] * w2;
                    t2 += cc[3] * w3;
                    sc[j] = t2;
                    let mut t3 = sd[j];
                    t3 += cd[0] * w0;
                    t3 += cd[1] * w1;
                    t3 += cd[2] * w2;
                    t3 += cd[3] * w3;
                    sd[j] = t3;
                }
            } else {
                for (ch, out) in [
                    (ca, &mut *oa),
                    (cb, &mut *ob),
                    (cc, &mut *oc),
                    (cd, &mut *od),
                ] {
                    for (k, &vk) in ch.iter().enumerate() {
                        if vk == 0.0 {
                            continue;
                        }
                        let r = &rows[k * cols..(k + 1) * cols];
                        for (o, &m) in out.iter_mut().zip(r) {
                            *o += vk * m;
                        }
                    }
                }
            }
        }
        let tail = n_chunks * 4;
        for (v, out) in [(va, oa), (vb, ob), (vc, oc), (vd, od)] {
            for (k, &vk) in v[tail..].iter().enumerate() {
                if vk == 0.0 {
                    continue;
                }
                for (o, &m) in out.iter_mut().zip(self.row(start + tail + k)) {
                    *o += vk * m;
                }
            }
        }
    }

    /// `self @ other` — standard matrix product; each output row is one
    /// `accumulate_rows` sweep, so the inner loop streams both `other`'s
    /// and the output's rows.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} @ {}x{} shape mismatch",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            other.accumulate_rows(self.row(i), out.row_mut(i));
        }
        crate::sanitize::assert_finite("tensor", "matmul", &out.data);
        out
    }

    /// `self @ other` written into `out`, which is reshaped in place —
    /// allocation-free once `out`'s capacity has grown to fit.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul_into: {}x{} @ {}x{} shape mismatch",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize_zeroed(self.rows, other.cols);
        for i in 0..self.rows {
            other.accumulate_rows(self.row(i), out.row_mut(i));
        }
        crate::sanitize::assert_finite("tensor", "matmul_into", &out.data);
    }

    /// `self[row_start .. row_start+count] @ other` written into `out`
    /// (reshaped to `count x other.cols`). Output rows are computed four
    /// at a time through [`Matrix::accumulate_rows4_from`], so each is
    /// bitwise identical to the corresponding [`Matrix::matmul_into`] /
    /// [`Matrix::vecmat`] row while the shared weight-row loads run at
    /// four-row matmul intensity. The window form is what the batched
    /// sequence kernels use to multiply only the still-active prefix of
    /// a packed timestep block.
    pub fn matmul_window_into(
        &self,
        row_start: usize,
        count: usize,
        other: &Matrix,
        out: &mut Matrix,
    ) {
        assert_eq!(
            self.cols, other.rows,
            "matmul_window_into: {}x{} @ {}x{} shape mismatch",
            self.rows, self.cols, other.rows, other.cols
        );
        assert!(
            row_start + count <= self.rows,
            "matmul_window_into: window {row_start}+{count} out of {} rows",
            self.rows
        );
        out.resize_zeroed(count, other.cols);
        let oc = other.cols;
        let mut i = 0;
        while i + 4 <= count {
            let block = &mut out.data[i * oc..(i + 4) * oc];
            let (o0, rest) = block.split_at_mut(oc);
            let (o1, rest) = rest.split_at_mut(oc);
            let (o2, o3) = rest.split_at_mut(oc);
            other.accumulate_rows4_from(
                0,
                [
                    self.row(row_start + i),
                    self.row(row_start + i + 1),
                    self.row(row_start + i + 2),
                    self.row(row_start + i + 3),
                ],
                [o0, o1, o2, o3],
            );
            i += 4;
        }
        for r in i..count {
            other.accumulate_rows(self.row(row_start + r), out.row_mut(r));
        }
        crate::sanitize::assert_finite("tensor", "matmul_window_into", &out.data);
    }

    /// One output row of `a @ self.T`: `out_row[j] = dot(a_row, self.row(j))`,
    /// four `self` rows per pass via [`crate::ops::dot4`] (each element
    /// bitwise equal to its single `dot`).
    #[inline]
    fn transposed_row_dots(&self, a_row: &[f32], out_row: &mut [f32]) {
        assert!(
            a_row.len() == self.cols && out_row.len() == self.rows,
            "transposed_row_dots: a_row {} vs {} cols / out_row {} vs {} rows",
            a_row.len(),
            self.cols,
            out_row.len(),
            self.rows
        );
        let mut j = 0;
        while j + 4 <= self.rows {
            let r = crate::ops::dot4(
                a_row,
                self.row(j),
                self.row(j + 1),
                self.row(j + 2),
                self.row(j + 3),
            );
            out_row[j..j + 4].copy_from_slice(&r);
            j += 4;
        }
        for (jj, o) in out_row.iter_mut().enumerate().skip(j) {
            *o = crate::ops::dot(a_row, self.row(jj));
        }
    }

    /// `self @ other.T` without materializing the transpose.
    pub fn matmul_transposed(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transposed: {}x{} @ ({}x{})^T shape mismatch",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * other.rows..(i + 1) * other.rows];
            other.transposed_row_dots(a_row, out_row);
        }
        crate::sanitize::assert_finite("tensor", "matmul_transposed", &out.data);
        out
    }

    /// `self @ other.T` written into `out` (reshaped in place). Each
    /// element is a [`crate::ops::dot`]; `dot` is argument-symmetric, so
    /// row `i` of the result is bitwise identical to
    /// `other.matvec(self.row(i))`.
    pub fn matmul_transposed_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transposed_into: {}x{} @ ({}x{})^T shape mismatch",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize_zeroed(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * other.rows..(i + 1) * other.rows];
            other.transposed_row_dots(a_row, out_row);
        }
        crate::sanitize::assert_finite("tensor", "matmul_transposed_into", &out.data);
    }

    /// `self.T @ other` without materializing the transpose.
    pub fn transposed_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "transposed_matmul: ({}x{})^T @ {}x{} shape mismatch",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        crate::sanitize::assert_finite("tensor", "transposed_matmul", &out.data);
        out
    }

    /// Matrix–vector product `self @ v`.
    pub fn matvec(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(
            self.cols,
            v.len(),
            "matvec: {}x{} @ vec of len {}",
            self.rows,
            self.cols,
            v.len()
        );
        let mut out = Vec::new();
        self.matvec_into(v, &mut out);
        out
    }

    /// `self @ v` written into `out` (cleared and resized; allocation-free
    /// once `out`'s capacity suffices). Bitwise identical to [`Self::matvec`].
    pub fn matvec_into(&self, v: &[f32], out: &mut Vec<f32>) {
        assert_eq!(
            self.cols,
            v.len(),
            "matvec_into: {}x{} @ vec of len {}",
            self.rows,
            self.cols,
            v.len()
        );
        out.clear();
        out.resize(self.rows, 0.0);
        // Four rows per pass: `dot4` shares the sweep over `v` between four
        // output elements, each still bitwise equal to its single `dot`.
        let mut i = 0;
        while i + 4 <= self.rows {
            let r = crate::ops::dot4(
                v,
                self.row(i),
                self.row(i + 1),
                self.row(i + 2),
                self.row(i + 3),
            );
            out[i..i + 4].copy_from_slice(&r);
            i += 4;
        }
        for (j, o) in out.iter_mut().enumerate().skip(i) {
            *o = crate::ops::dot(self.row(j), v);
        }
    }

    /// Vector–matrix product `v @ self` (i.e. `self.T @ v`), transpose-free.
    pub fn vecmat(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(
            self.rows,
            v.len(),
            "vecmat: vec of len {} @ {}x{}",
            v.len(),
            self.rows,
            self.cols
        );
        let mut out = vec![0.0; self.cols];
        self.accumulate_rows(v, &mut out);
        out
    }

    /// `v @ self` written into `out` (cleared and resized; allocation-free
    /// once `out`'s capacity suffices). Bitwise identical to [`Self::vecmat`].
    pub fn vecmat_into(&self, v: &[f32], out: &mut Vec<f32>) {
        assert_eq!(
            self.rows,
            v.len(),
            "vecmat_into: vec of len {} @ {}x{}",
            v.len(),
            self.rows,
            self.cols
        );
        out.clear();
        out.resize(self.cols, 0.0);
        self.accumulate_rows(v, out);
    }

    /// Rank-1 update `self += alpha * a b^T`; the outer-product accumulation
    /// at the heart of every weight-gradient in `etsb-nn`.
    pub fn add_outer(&mut self, alpha: f32, a: &[f32], b: &[f32]) {
        assert_eq!(
            self.rows,
            a.len(),
            "add_outer: rows {} vs a len {}",
            self.rows,
            a.len()
        );
        assert_eq!(
            self.cols,
            b.len(),
            "add_outer: cols {} vs b len {}",
            self.cols,
            b.len()
        );
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0.0 {
                continue;
            }
            let s = alpha * ai;
            for (o, &bj) in self.row_mut(i).iter_mut().zip(b) {
                *o += s * bj;
            }
        }
    }

    /// Batched outer-product accumulation over a window of matching rows:
    /// `self[i][j] += Σ_k a[a_start + k][i] * b[b_start + k][j]` for `k`
    /// in `0..count`. Per output element the additions run in ascending
    /// `k` with the same zero-skip as [`Matrix::add_outer`], so this is
    /// bitwise identical to `count` ascending `add_outer(1.0, a.row(..),
    /// b.row(..))` calls — but register-blocked four steps at a time,
    /// which is what makes whole-sequence weight-gradient accumulation
    /// cheap. `col` is caller-owned scratch (one strided column gather per
    /// output row), recycled across calls.
    pub fn add_transposed_matmul(
        &mut self,
        a: &Matrix,
        a_start: usize,
        b: &Matrix,
        b_start: usize,
        count: usize,
        col: &mut Vec<f32>,
    ) {
        assert_eq!(
            self.shape(),
            (a.cols, b.cols),
            "add_transposed_matmul: out {:?} vs {}x{}",
            self.shape(),
            a.cols,
            b.cols
        );
        assert!(
            a_start + count <= a.rows && b_start + count <= b.rows,
            "add_transposed_matmul: window {a_start}/{b_start}+{count} out of {}x{} rows",
            a.rows,
            b.rows
        );
        for i in 0..self.rows {
            col.clear();
            col.extend((0..count).map(|k| a.data[(a_start + k) * a.cols + i]));
            b.accumulate_rows_from(b_start, col, self.row_mut(i));
        }
    }

    /// [`Matrix::add_transposed_matmul`] with output rows computed four
    /// at a time through [`Matrix::accumulate_rows4_from`]: four columns
    /// of `a` are gathered into `cols_scratch` (reshaped to `4 x count`)
    /// and swept against the same `b` row window together, so each loaded
    /// `b` row serves four weight-gradient rows. Per output element the
    /// adds run in ascending `k` with the same zero-skip, so the result
    /// is bitwise identical to the unblocked kernel — and therefore to
    /// the per-step `add_outer` loop both replace.
    pub fn add_transposed_matmul_blocked(
        &mut self,
        a: &Matrix,
        a_start: usize,
        b: &Matrix,
        b_start: usize,
        count: usize,
        cols_scratch: &mut Matrix,
    ) {
        assert_eq!(
            self.shape(),
            (a.cols, b.cols),
            "add_transposed_matmul_blocked: out {:?} vs {}x{}",
            self.shape(),
            a.cols,
            b.cols
        );
        assert!(
            a_start + count <= a.rows && b_start + count <= b.rows,
            "add_transposed_matmul_blocked: window {a_start}/{b_start}+{count} out of {}x{} rows",
            a.rows,
            b.rows
        );
        cols_scratch.resize_zeroed(4, count);
        let sc = self.cols;
        let mut i = 0;
        while i + 4 <= self.rows {
            for r in 0..4 {
                let dst = cols_scratch.row_mut(r);
                for (k, d) in dst.iter_mut().enumerate() {
                    *d = a.data[(a_start + k) * a.cols + i + r];
                }
            }
            let block = &mut self.data[i * sc..(i + 4) * sc];
            let (o0, rest) = block.split_at_mut(sc);
            let (o1, rest) = rest.split_at_mut(sc);
            let (o2, o3) = rest.split_at_mut(sc);
            b.accumulate_rows4_from(
                b_start,
                [
                    cols_scratch.row(0),
                    cols_scratch.row(1),
                    cols_scratch.row(2),
                    cols_scratch.row(3),
                ],
                [o0, o1, o2, o3],
            );
            i += 4;
        }
        for r in i..self.rows {
            let dst = cols_scratch.row_mut(0);
            for (k, d) in dst.iter_mut().enumerate() {
                *d = a.data[(a_start + k) * a.cols + r];
            }
            let block = &mut self.data[r * sc..(r + 1) * sc];
            b.accumulate_rows_from(b_start, cols_scratch.row(0), block);
        }
    }

    /// Element-wise `self + other`.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise `self - other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    // etsb: allow(shape-assert) -- shared kernel; the assertion below names the *caller's* op.
    fn zip_with(&self, other: &Matrix, op: &str, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place element-wise `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_assign: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place element-wise `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "axpy: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place scalar multiply.
    pub fn scale_inplace(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Scalar multiple of the matrix.
    pub fn scaled(&self, alpha: f32) -> Matrix {
        let mut out = self.clone();
        out.scale_inplace(alpha);
        out
    }

    /// Apply `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Set every element to zero, retaining the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Reshape to `rows x cols` with every element zero, retaining the
    /// allocation when the existing capacity suffices. The workhorse of
    /// the `_into` kernels and the scratch [`crate::Workspace`].
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Become an element-wise copy of `other` (shape included), reusing
    /// the existing allocation when its capacity suffices.
    // etsb: allow(shape-assert) -- `self` is a reshaped sink; there is no shape precondition.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Largest absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, &x| m.max(x.abs()))
    }

    /// Sanitizer hook: panic if any element is NaN/Inf, attributing the
    /// failure to `layer` and `op`. A no-op unless the crate is built
    /// with the `sanitize` feature; returns `self` for chaining.
    #[inline]
    pub fn assert_finite(&self, layer: &str, op: &str) -> &Matrix {
        crate::sanitize::assert_finite(layer, op, &self.data);
        self
    }

    /// True when every element of `self` is within `tol` of `other`.
    /// A shape mismatch is an ordinary `false`, never a panic.
    // etsb: allow(shape-assert) -- predicate by contract: mismatched shapes compare unequal.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl Default for Matrix {
    /// An empty `0 x 0` matrix — the placeholder state of reusable caches
    /// and workspace buffers before their first `resize_zeroed`.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for i in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(12) {
                write!(f, "{:>9.4}", self[(i, j)])?;
            }
            if self.cols > 12 {
                write!(f, " ...")?;
            }
            writeln!(f, " ]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_transposed_agrees_with_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f32);
        let b = Matrix::from_fn(5, 4, |i, j| (i as f32) - (j as f32) * 0.5);
        assert!(a
            .matmul_transposed(&b)
            .approx_eq(&a.matmul(&b.transpose()), 1e-6));
    }

    #[test]
    fn transposed_matmul_agrees_with_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |i, j| (i + j) as f32 * 0.25);
        let b = Matrix::from_fn(4, 5, |i, j| (i as f32) * 0.1 + j as f32);
        assert!(a
            .transposed_matmul(&b)
            .approx_eq(&a.transpose().matmul(&b), 1e-6));
    }

    #[test]
    fn matvec_and_vecmat() {
        let m = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[1.0, 1.0]]);
        assert_eq!(m.matvec(&[3.0, 4.0]), vec![3.0, 8.0, 7.0]);
        assert_eq!(m.vecmat(&[1.0, 1.0, 1.0]), vec![2.0, 3.0]);
    }

    #[test]
    fn add_outer_accumulates_outer_product() {
        let mut m = Matrix::zeros(2, 3);
        m.add_outer(2.0, &[1.0, 3.0], &[1.0, 0.0, -1.0]);
        assert_eq!(
            m,
            Matrix::from_rows(&[&[2.0, 0.0, -2.0], &[6.0, 0.0, -6.0]])
        );
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(b.sub(&a), Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, 10.0]]));
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 7 + j) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_non_square_exact() {
        // Shapes chosen to exercise partial blocks on both axes of the
        // blocked kernel (37 and 53 are not multiples of the block size).
        let a = Matrix::from_fn(37, 53, |i, j| (i * 100 + j) as f32);
        let t = a.transpose();
        assert_eq!(t.shape(), (53, 37));
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert_eq!(t[(j, i)], a[(i, j)], "mismatch at ({i},{j})");
            }
        }
    }

    /// Helper: a deterministic matrix with a mix of signs, magnitudes and
    /// exact zeros (so the zero-skip paths are exercised).
    fn messy(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| {
            if (i * cols + j).is_multiple_of(7) {
                0.0
            } else {
                ((i * 31 + j * 17) % 23) as f32 * 0.37 - 3.9
            }
        })
    }

    #[test]
    fn into_variants_are_bitwise_identical_to_allocating_ones() {
        let a = messy(9, 13);
        let b = messy(13, 6);
        let bt = messy(6, 13);
        let v13: Vec<f32> = (0..13).map(|i| i as f32 * 0.3 - 1.7).collect();
        let v9: Vec<f32> = (0..9).map(|i| i as f32 * -0.21 + 0.5).collect();

        // Seed the `_into` outputs with garbage to prove they overwrite.
        let mut m = Matrix::full(2, 2, 7.7);
        a.matmul_into(&b, &mut m);
        assert_eq!(m, a.matmul(&b));

        a.matmul_transposed_into(&bt, &mut m);
        assert_eq!(m, a.matmul_transposed(&bt));

        let mut v = vec![9.9; 3];
        a.matvec_into(&v13, &mut v);
        assert_eq!(v, a.matvec(&v13));

        a.vecmat_into(&v9, &mut v);
        assert_eq!(v, a.vecmat(&v9));
    }

    /// The batched weight-gradient kernel must be bitwise identical to
    /// the per-step `add_outer` loop it replaces (ascending step order,
    /// same zero-skip), on full and shifted row windows, accumulating on
    /// top of pre-existing gradient content.
    #[test]
    fn add_transposed_matmul_matches_per_step_add_outer() {
        let a = messy(11, 7); // e.g. cached inputs, T x input_dim
        let b = messy(11, 5); // e.g. dz rows, T x hidden
        let mut col = Vec::new();

        let mut batched = messy(7, 5); // nonzero start: accumulation, not overwrite
        let mut looped = batched.clone();
        batched.add_transposed_matmul(&a, 0, &b, 0, 11, &mut col);
        for t in 0..11 {
            looped.add_outer(1.0, a.row(t), b.row(t));
        }
        assert_eq!(batched, looped);

        // Shifted window: a rows 0..10 against b rows 1..11 (the
        // recurrent-weight alignment, h_{t-1} against dz_t).
        let mut batched = messy(7, 5);
        let mut looped = batched.clone();
        batched.add_transposed_matmul(&a, 0, &b, 1, 10, &mut col);
        for t in 1..11 {
            looped.add_outer(1.0, a.row(t - 1), b.row(t));
        }
        assert_eq!(batched, looped);
    }

    /// The invariant the sequence layers build on: a batched matmul row
    /// is bitwise identical to the per-step vecmat of the same row, and a
    /// batched transposed matmul row is bitwise identical to matvec.
    #[test]
    fn batched_rows_match_per_step_kernels_bitwise() {
        let inputs = messy(11, 9);
        let w = messy(9, 5);
        let z_all = inputs.matmul(&w);
        for t in 0..inputs.rows() {
            assert_eq!(z_all.row(t), &w.vecmat(inputs.row(t))[..], "row {t}");
        }

        let dz_all = messy(11, 5);
        let gi = dz_all.matmul_transposed(&w);
        for t in 0..dz_all.rows() {
            assert_eq!(gi.row(t), &w.matvec(dz_all.row(t))[..], "row {t}");
        }
    }

    /// The windowed four-row matmul must reproduce the plain matmul rows
    /// bit for bit, on aligned and unaligned windows (remainder rows go
    /// through the single-row sweep) and zero-laced data (fallback path).
    #[test]
    fn matmul_window_into_is_bitwise_identical_to_matmul_rows() {
        let a = messy(13, 17);
        let w = messy(17, 9);
        let full = a.matmul(&w);
        let mut out = Matrix::full(1, 1, 5.5);
        for (start, count) in [(0, 13), (0, 4), (2, 7), (5, 8), (9, 3), (0, 0)] {
            a.matmul_window_into(start, count, &w, &mut out);
            assert_eq!(out.shape(), (count, w.cols()));
            for r in 0..count {
                assert_eq!(
                    out.row(r),
                    full.row(start + r),
                    "window {start}+{count} row {r}"
                );
            }
        }
    }

    /// The blocked weight-gradient kernel must match the unblocked one
    /// bit for bit — full windows, shifted windows, row counts that leave
    /// a remainder against the 4-row blocking, and accumulation on top of
    /// pre-existing gradient content.
    #[test]
    fn add_transposed_matmul_blocked_matches_unblocked_bitwise() {
        let a = messy(11, 7); // 7 output rows: one full 4-block + 3 remainder
        let b = messy(11, 5);
        let mut col = Vec::new();
        let mut scratch = Matrix::default();
        for (a_start, b_start, count) in [(0, 0, 11), (0, 1, 10), (3, 0, 8), (2, 2, 9)] {
            let mut blocked = messy(7, 5);
            let mut plain = blocked.clone();
            blocked.add_transposed_matmul_blocked(&a, a_start, &b, b_start, count, &mut scratch);
            plain.add_transposed_matmul(&a, a_start, &b, b_start, count, &mut col);
            assert_eq!(blocked, plain, "window {a_start}/{b_start}+{count}");
        }
        // Output with a multiple-of-4 row count (no remainder rows).
        let a = messy(9, 8);
        let b = messy(9, 6);
        let mut blocked = messy(8, 6);
        let mut plain = blocked.clone();
        blocked.add_transposed_matmul_blocked(&a, 0, &b, 0, 9, &mut scratch);
        plain.add_transposed_matmul(&a, 0, &b, 0, 9, &mut col);
        assert_eq!(blocked, plain);
    }

    #[test]
    fn capacity_bytes_tracks_backing_buffer() {
        let mut m = Matrix::zeros(4, 4);
        assert!(m.capacity_bytes() >= 64);
        let cap = m.capacity_bytes();
        m.resize_zeroed(2, 2);
        assert_eq!(
            m.capacity_bytes(),
            cap,
            "shrinking must keep the allocation"
        );
    }

    #[test]
    fn resize_zeroed_and_copy_from_reuse_storage() {
        let mut m = Matrix::full(4, 4, 3.5);
        let cap = m.data.capacity();
        m.resize_zeroed(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(m.data.capacity(), cap, "resize within capacity reallocated");

        let src = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        m.copy_from(&src);
        assert_eq!(m, src);
        assert_eq!(m.data.capacity(), cap, "copy within capacity reallocated");
    }

    #[test]
    fn default_matrix_is_empty() {
        let m = Matrix::default();
        assert_eq!(m.shape(), (0, 0));
        assert!(m.is_empty());
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, -4.0]]);
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.mean(), -0.5);
        assert_eq!(a.max_abs(), 4.0);
        assert!((a.frobenius_norm() - 30.0_f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn row_and_col_views() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::from_rows(&[&[1.0, 1.0]]);
        let b = Matrix::from_rows(&[&[2.0, 4.0]]);
        a.axpy(0.5, &b);
        assert_eq!(a, Matrix::from_rows(&[&[2.0, 3.0]]));
        a.scale_inplace(2.0);
        assert_eq!(a, Matrix::from_rows(&[&[4.0, 6.0]]));
    }
}
