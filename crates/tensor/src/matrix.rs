//! Row-major dense `f32` matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f32` values.
///
/// Shapes are checked at runtime: mismatched operands panic with a message
/// naming the operation and both shapes, which turns silent numeric bugs
/// into loud test failures. All storage is a single contiguous `Vec<f32>`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from an explicit row-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: buffer of len {} cannot form a {rows}x{cols} matrix",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Build from row slices; all rows must have equal length.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(
                row.len(),
                c,
                "Matrix::from_rows: ragged rows ({} vs {c})",
                row.len()
            );
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Build a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// A 1 x n row vector.
    pub fn row_vector(values: &[f32]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// An n x 1 column vector.
    pub fn col_vector(values: &[f32]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Read-only view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(
            c < self.cols,
            "col {c} out of bounds for {} cols",
            self.cols
        );
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// `self @ other` — standard matrix product, ikj loop order so the
    /// inner loop streams both `other`'s and the output's rows.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} @ {}x{} shape mismatch",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ik * b;
                }
            }
        }
        crate::sanitize::assert_finite("tensor", "matmul", &out.data);
        out
    }

    /// `self @ other.T` without materializing the transpose.
    pub fn matmul_transposed(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transposed: {}x{} @ ({}x{})^T shape mismatch",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = crate::ops::dot(a_row, other.row(j));
            }
        }
        crate::sanitize::assert_finite("tensor", "matmul_transposed", &out.data);
        out
    }

    /// `self.T @ other` without materializing the transpose.
    pub fn transposed_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "transposed_matmul: ({}x{})^T @ {}x{} shape mismatch",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        crate::sanitize::assert_finite("tensor", "transposed_matmul", &out.data);
        out
    }

    /// Matrix–vector product `self @ v`.
    pub fn matvec(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(
            self.cols,
            v.len(),
            "matvec: {}x{} @ vec of len {}",
            self.rows,
            self.cols,
            v.len()
        );
        (0..self.rows)
            .map(|i| crate::ops::dot(self.row(i), v))
            .collect()
    }

    /// Vector–matrix product `v @ self` (i.e. `self.T @ v`), transpose-free.
    pub fn vecmat(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(
            self.rows,
            v.len(),
            "vecmat: vec of len {} @ {}x{}",
            v.len(),
            self.rows,
            self.cols
        );
        let mut out = vec![0.0; self.cols];
        for (k, &vk) in v.iter().enumerate() {
            if vk == 0.0 {
                continue;
            }
            for (o, &m) in out.iter_mut().zip(self.row(k)) {
                *o += vk * m;
            }
        }
        out
    }

    /// Rank-1 update `self += alpha * a b^T`; the outer-product accumulation
    /// at the heart of every weight-gradient in `etsb-nn`.
    pub fn add_outer(&mut self, alpha: f32, a: &[f32], b: &[f32]) {
        assert_eq!(
            self.rows,
            a.len(),
            "add_outer: rows {} vs a len {}",
            self.rows,
            a.len()
        );
        assert_eq!(
            self.cols,
            b.len(),
            "add_outer: cols {} vs b len {}",
            self.cols,
            b.len()
        );
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0.0 {
                continue;
            }
            let s = alpha * ai;
            for (o, &bj) in self.row_mut(i).iter_mut().zip(b) {
                *o += s * bj;
            }
        }
    }

    /// Element-wise `self + other`.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise `self - other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    // etsb: allow(shape-assert) -- shared kernel; the assertion below names the *caller's* op.
    fn zip_with(&self, other: &Matrix, op: &str, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place element-wise `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_assign: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place element-wise `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "axpy: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place scalar multiply.
    pub fn scale_inplace(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Scalar multiple of the matrix.
    pub fn scaled(&self, alpha: f32) -> Matrix {
        let mut out = self.clone();
        out.scale_inplace(alpha);
        out
    }

    /// Apply `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Set every element to zero, retaining the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Largest absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, &x| m.max(x.abs()))
    }

    /// Sanitizer hook: panic if any element is NaN/Inf, attributing the
    /// failure to `layer` and `op`. A no-op unless the crate is built
    /// with the `sanitize` feature; returns `self` for chaining.
    #[inline]
    pub fn assert_finite(&self, layer: &str, op: &str) -> &Matrix {
        crate::sanitize::assert_finite(layer, op, &self.data);
        self
    }

    /// True when every element of `self` is within `tol` of `other`.
    /// A shape mismatch is an ordinary `false`, never a panic.
    // etsb: allow(shape-assert) -- predicate by contract: mismatched shapes compare unequal.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for i in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(12) {
                write!(f, "{:>9.4}", self[(i, j)])?;
            }
            if self.cols > 12 {
                write!(f, " ...")?;
            }
            writeln!(f, " ]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_transposed_agrees_with_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f32);
        let b = Matrix::from_fn(5, 4, |i, j| (i as f32) - (j as f32) * 0.5);
        assert!(a
            .matmul_transposed(&b)
            .approx_eq(&a.matmul(&b.transpose()), 1e-6));
    }

    #[test]
    fn transposed_matmul_agrees_with_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |i, j| (i + j) as f32 * 0.25);
        let b = Matrix::from_fn(4, 5, |i, j| (i as f32) * 0.1 + j as f32);
        assert!(a
            .transposed_matmul(&b)
            .approx_eq(&a.transpose().matmul(&b), 1e-6));
    }

    #[test]
    fn matvec_and_vecmat() {
        let m = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[1.0, 1.0]]);
        assert_eq!(m.matvec(&[3.0, 4.0]), vec![3.0, 8.0, 7.0]);
        assert_eq!(m.vecmat(&[1.0, 1.0, 1.0]), vec![2.0, 3.0]);
    }

    #[test]
    fn add_outer_accumulates_outer_product() {
        let mut m = Matrix::zeros(2, 3);
        m.add_outer(2.0, &[1.0, 3.0], &[1.0, 0.0, -1.0]);
        assert_eq!(
            m,
            Matrix::from_rows(&[&[2.0, 0.0, -2.0], &[6.0, 0.0, -6.0]])
        );
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(b.sub(&a), Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, 10.0]]));
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 7 + j) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, -4.0]]);
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.mean(), -0.5);
        assert_eq!(a.max_abs(), 4.0);
        assert!((a.frobenius_norm() - 30.0_f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn row_and_col_views() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::from_rows(&[&[1.0, 1.0]]);
        let b = Matrix::from_rows(&[&[2.0, 4.0]]);
        a.axpy(0.5, &b);
        assert_eq!(a, Matrix::from_rows(&[&[2.0, 3.0]]));
        a.scale_inplace(2.0);
        assert_eq!(a, Matrix::from_rows(&[&[4.0, 6.0]]));
    }
}
