//! Numeric sanitizer: NaN/Inf detection at op and layer boundaries.
//!
//! Enabled by the `sanitize` cargo feature; without it every hook
//! compiles to an empty `#[inline(always)]` function and costs nothing.
//! With it, the first non-finite value produced by a matmul, activation,
//! BatchNorm or loss — or accumulated into a gradient buffer — panics
//! with the layer name, the op and the offending flat index, pointing at
//! the step that diverged instead of the distant place where the NaN is
//! finally observed (usually the loss, many layers later).

/// Panic if `data` holds a NaN or an infinity.
///
/// `layer` names the network layer (`"tensor"` for unattributed core
/// ops); `op` names the operation that produced the buffer.
#[cfg(feature = "sanitize")]
#[inline]
pub fn assert_finite(layer: &str, op: &str, data: &[f32]) {
    for (i, &v) in data.iter().enumerate() {
        if !v.is_finite() {
            // Record the hit in the trace before unwinding, so a run that
            // dies mid-sweep still shows where the numbers went bad.
            etsb_obs::obs_event!(
                "sanitize.hit",
                "layer" => layer,
                "op" => op,
                "index" => i,
                "value" => v as f64,
            );
            // etsb: allow(no-unwrap) -- panicking with diagnostics is this hook's contract.
            panic!("sanitize: non-finite value {v} at flat index {i} (layer `{layer}`, op `{op}`)");
        }
    }
}

/// No-op stand-in compiled without the `sanitize` feature.
#[cfg(not(feature = "sanitize"))]
#[inline(always)]
pub fn assert_finite(_layer: &str, _op: &str, _data: &[f32]) {}

/// Whether the sanitizer is compiled in (used by tests and diagnostics).
pub const fn enabled() -> bool {
    cfg!(feature = "sanitize")
}

#[cfg(all(test, feature = "sanitize"))]
mod tests {
    use super::assert_finite;

    #[test]
    fn finite_data_passes() {
        assert_finite("test", "noop", &[0.0, -1.5, f32::MAX]);
    }

    #[test]
    fn nan_panics_with_location() {
        let err = std::panic::catch_unwind(|| {
            assert_finite("lstm-fwd", "matmul", &[1.0, f32::NAN, 2.0]);
        })
        .expect_err("NaN must panic");
        let msg = err.downcast_ref::<String>().expect("panic payload");
        assert!(msg.contains("lstm-fwd"), "layer missing: {msg}");
        assert!(msg.contains("matmul"), "op missing: {msg}");
        assert!(msg.contains("index 1"), "index missing: {msg}");
    }

    #[test]
    fn infinity_panics() {
        assert!(std::panic::catch_unwind(|| {
            assert_finite("head", "loss", &[f32::INFINITY]);
        })
        .is_err());
    }
}
