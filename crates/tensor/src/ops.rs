//! Free functions on `&[f32]` slices: the vector kernels shared by the
//! layer implementations in `etsb-nn`.

/// Dot product of two equal-length slices.
///
/// # Panics
/// If the slices have different lengths.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    // Eight independent accumulation chains over bounds-check-free chunks:
    // wide enough for the optimizer to keep the whole accumulator in one
    // vector register without needing `-C target-cpu` flags. The reduction
    // structure is symmetric in `a`/`b`, so `dot(a, b)` is bitwise equal to
    // `dot(b, a)` — the batched backward kernels rely on that.
    let mut acc = [0.0_f32; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        acc[0] += xa[0] * xb[0];
        acc[1] += xa[1] * xb[1];
        acc[2] += xa[2] * xb[2];
        acc[3] += xa[3] * xb[3];
        acc[4] += xa[4] * xb[4];
        acc[5] += xa[5] * xb[5];
        acc[6] += xa[6] * xb[6];
        acc[7] += xa[7] * xb[7];
    }
    let mut sum = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for (&xa, &xb) in ca.remainder().iter().zip(cb.remainder()) {
        sum += xa * xb;
    }
    sum
}

/// Four dot products sharing one pass over `a`: returns
/// `[dot(a, b0), dot(a, b1), dot(a, b2), dot(a, b3)]`, each entry bitwise
/// identical to the corresponding [`dot`] call. Blocking the `b` rows
/// amortizes the loads of `a` and the loop control across four outputs —
/// the difference between `matvec`/`matmul_transposed` running at memory
/// speed and stalling on per-call overhead.
///
/// # Panics
/// If any slice length differs from `a`'s.
#[inline]
pub fn dot4(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
    assert!(
        b0.len() == a.len() && b1.len() == a.len() && b2.len() == a.len() && b3.len() == a.len(),
        "dot4: length mismatch"
    );
    let mut acc0 = [0.0_f32; 8];
    let mut acc1 = [0.0_f32; 8];
    let mut acc2 = [0.0_f32; 8];
    let mut acc3 = [0.0_f32; 8];
    let mut ca = a.chunks_exact(8);
    let mut c0 = b0.chunks_exact(8);
    let mut c1 = b1.chunks_exact(8);
    let mut c2 = b2.chunks_exact(8);
    let mut c3 = b3.chunks_exact(8);
    for ((((xa, x0), x1), x2), x3) in (&mut ca)
        .zip(&mut c0)
        .zip(&mut c1)
        .zip(&mut c2)
        .zip(&mut c3)
    {
        for j in 0..8 {
            acc0[j] += xa[j] * x0[j];
            acc1[j] += xa[j] * x1[j];
            acc2[j] += xa[j] * x2[j];
            acc3[j] += xa[j] * x3[j];
        }
    }
    // Same reduction tree as `dot`.
    let fold = |acc: [f32; 8]| {
        ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
    };
    let mut out = [fold(acc0), fold(acc1), fold(acc2), fold(acc3)];
    let ra = ca.remainder();
    for (k, &xa) in ra.iter().enumerate() {
        out[0] += xa * c0.remainder()[k];
        out[1] += xa * c1.remainder()[k];
        out[2] += xa * c2.remainder()[k];
        out[3] += xa * c3.remainder()[k];
    }
    out
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(
        x.len(),
        y.len(),
        "axpy: length mismatch {} vs {}",
        x.len(),
        y.len()
    );
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y += x`.
#[inline]
pub fn add_assign(y: &mut [f32], x: &[f32]) {
    assert_eq!(
        x.len(),
        y.len(),
        "add_assign: length mismatch {} vs {}",
        x.len(),
        y.len()
    );
    axpy(1.0, x, y);
}

/// `y -= x`.
#[inline]
pub fn sub_assign(y: &mut [f32], x: &[f32]) {
    assert_eq!(
        x.len(),
        y.len(),
        "sub_assign: length mismatch {} vs {}",
        x.len(),
        y.len()
    );
    axpy(-1.0, x, y);
}

/// `x *= alpha`.
#[inline]
pub fn scale(x: &mut [f32], alpha: f32) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Index of the largest element; ties resolve to the first maximum.
///
/// # Panics
/// If the slice is empty.
pub fn argmax(x: &[f32]) -> usize {
    assert!(!x.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in x.iter().enumerate().skip(1) {
        if v > x[best] {
            best = i;
        }
    }
    best
}

/// Numerically stable in-place softmax.
pub fn softmax_inplace(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for xi in x.iter_mut() {
        *xi = (*xi - max).exp();
        sum += *xi;
    }
    // `sum >= 1` because one exponent is exp(0); no division-by-zero risk.
    for xi in x.iter_mut() {
        *xi /= sum;
    }
}

/// In-place hyperbolic tangent.
pub fn tanh_inplace(x: &mut [f32]) {
    for xi in x {
        *xi = xi.tanh();
    }
}

/// In-place rectified linear unit.
pub fn relu_inplace(x: &mut [f32]) {
    for xi in x {
        if *xi < 0.0 {
            *xi = 0.0;
        }
    }
}

/// Euclidean norm.
pub fn l2_norm(x: &[f32]) -> f32 {
    x.iter().map(|v| v * v).sum::<f32>().sqrt()
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(x: &[f32]) -> f32 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f32>() / x.len() as f32
    }
}

/// Population variance (0 for slices of length < 2).
pub fn variance(x: &[f32]) -> f32 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / x.len() as f32
}

/// Population standard deviation.
pub fn stddev(x: &[f32]) -> f32 {
    variance(x).sqrt()
}

/// Largest absolute element-wise difference between two slices.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch");
    a.iter()
        .zip(b)
        .fold(0.0_f32, |m, (&x, &y)| m.max((x - y).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic_and_unrolled_tail() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        // Length 7 exercises both the unrolled body and the scalar tail.
        let a: Vec<f32> = (1..=7).map(|i| i as f32).collect();
        let b = vec![1.0; 7];
        assert_eq!(dot(&a, &b), 28.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0, 1.0];
        axpy(2.0, &[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn argmax_ties_take_first() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[-5.0]), 0);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut x = vec![1.0, 2.0, 3.0];
        softmax_inplace(&mut x);
        assert!((x.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(x[2] > x[1] && x[1] > x[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let mut a = vec![1000.0, 1001.0];
        softmax_inplace(&mut a);
        let mut b = vec![0.0, 1.0];
        softmax_inplace(&mut b);
        assert!(max_abs_diff(&a, &b) < 1e-6);
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn relu_clamps_negatives_only() {
        let mut x = vec![-1.0, 0.0, 2.5];
        relu_inplace(&mut x);
        assert_eq!(x, vec![0.0, 0.0, 2.5]);
    }

    #[test]
    fn stats() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&x), 5.0);
        assert_eq!(variance(&x), 4.0);
        assert_eq!(stddev(&x), 2.0);
    }

    #[test]
    fn empty_slice_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        softmax_inplace(&mut []); // must not panic
    }
}
