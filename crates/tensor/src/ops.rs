//! Free functions on `&[f32]` slices: the vector kernels shared by the
//! layer implementations in `etsb-nn`.

/// Dot product of two equal-length slices.
///
/// # Panics
/// If the slices have different lengths.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    // Manual 4-way unroll: gives the optimizer independent accumulation
    // chains without needing `-C target-cpu` flags.
    let mut acc = [0.0_f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let k = i * 4;
        acc[0] += a[k] * b[k];
        acc[1] += a[k + 1] * b[k + 1];
        acc[2] += a[k + 2] * b[k + 2];
        acc[3] += a[k + 3] * b[k + 3];
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for k in chunks * 4..a.len() {
        sum += a[k] * b[k];
    }
    sum
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(
        x.len(),
        y.len(),
        "axpy: length mismatch {} vs {}",
        x.len(),
        y.len()
    );
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y += x`.
#[inline]
pub fn add_assign(y: &mut [f32], x: &[f32]) {
    assert_eq!(
        x.len(),
        y.len(),
        "add_assign: length mismatch {} vs {}",
        x.len(),
        y.len()
    );
    axpy(1.0, x, y);
}

/// `y -= x`.
#[inline]
pub fn sub_assign(y: &mut [f32], x: &[f32]) {
    assert_eq!(
        x.len(),
        y.len(),
        "sub_assign: length mismatch {} vs {}",
        x.len(),
        y.len()
    );
    axpy(-1.0, x, y);
}

/// `x *= alpha`.
#[inline]
pub fn scale(x: &mut [f32], alpha: f32) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Index of the largest element; ties resolve to the first maximum.
///
/// # Panics
/// If the slice is empty.
pub fn argmax(x: &[f32]) -> usize {
    assert!(!x.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in x.iter().enumerate().skip(1) {
        if v > x[best] {
            best = i;
        }
    }
    best
}

/// Numerically stable in-place softmax.
pub fn softmax_inplace(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for xi in x.iter_mut() {
        *xi = (*xi - max).exp();
        sum += *xi;
    }
    // `sum >= 1` because one exponent is exp(0); no division-by-zero risk.
    for xi in x.iter_mut() {
        *xi /= sum;
    }
}

/// In-place hyperbolic tangent.
pub fn tanh_inplace(x: &mut [f32]) {
    for xi in x {
        *xi = xi.tanh();
    }
}

/// In-place rectified linear unit.
pub fn relu_inplace(x: &mut [f32]) {
    for xi in x {
        if *xi < 0.0 {
            *xi = 0.0;
        }
    }
}

/// Euclidean norm.
pub fn l2_norm(x: &[f32]) -> f32 {
    x.iter().map(|v| v * v).sum::<f32>().sqrt()
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(x: &[f32]) -> f32 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f32>() / x.len() as f32
    }
}

/// Population variance (0 for slices of length < 2).
pub fn variance(x: &[f32]) -> f32 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / x.len() as f32
}

/// Population standard deviation.
pub fn stddev(x: &[f32]) -> f32 {
    variance(x).sqrt()
}

/// Largest absolute element-wise difference between two slices.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch");
    a.iter()
        .zip(b)
        .fold(0.0_f32, |m, (&x, &y)| m.max((x - y).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic_and_unrolled_tail() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        // Length 7 exercises both the unrolled body and the scalar tail.
        let a: Vec<f32> = (1..=7).map(|i| i as f32).collect();
        let b = vec![1.0; 7];
        assert_eq!(dot(&a, &b), 28.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0, 1.0];
        axpy(2.0, &[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn argmax_ties_take_first() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[-5.0]), 0);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut x = vec![1.0, 2.0, 3.0];
        softmax_inplace(&mut x);
        assert!((x.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(x[2] > x[1] && x[1] > x[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let mut a = vec![1000.0, 1001.0];
        softmax_inplace(&mut a);
        let mut b = vec![0.0, 1.0];
        softmax_inplace(&mut b);
        assert!(max_abs_diff(&a, &b) < 1e-6);
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn relu_clamps_negatives_only() {
        let mut x = vec![-1.0, 0.0, 2.5];
        relu_inplace(&mut x);
        assert_eq!(x, vec![0.0, 0.0, 2.5]);
    }

    #[test]
    fn stats() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&x), 5.0);
        assert_eq!(variance(&x), 4.0);
        assert_eq!(stddev(&x), 2.0);
    }

    #[test]
    fn empty_slice_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        softmax_inplace(&mut []); // must not panic
    }
}
