//! Opt-in fast inference kernels: the `FastMath` tier of the kernel
//! policy dispatch.
//!
//! # The kernel-policy contract
//!
//! The exact kernels in `matrix.rs` / `ops.rs` pin a fixed ascending-k
//! mul-then-add reduction order — the bitwise-determinism contract the
//! whole training and reference-inference stack is built on. This module
//! adds a second, *opt-in* tier for batched inference only:
//!
//! * [`KernelPolicy::Exact`] (the default) routes every call to the
//!   existing scalar kernels, byte-for-byte unchanged.
//! * [`KernelPolicy::FastMath`] routes the hot products through fused
//!   multiply-add kernels — a portable scalar [`f32::mul_add`] fallback
//!   and an x86-64 AVX2+FMA implementation selected by runtime CPU
//!   feature detection — and the elementwise tanh through a rational
//!   FMA approximation ([`tanh_fast`], max abs error 2.4e-7).
//!
//! FastMath results are *not* bitwise comparable to Exact results (FMA
//! contracts the intermediate rounding step), but they are **backend
//! invariant**: the portable and AVX2 kernels compute the same chains of
//! IEEE-754 fused operations in the same order, so `FastMath` output is
//! bitwise identical across machines, backends and worker counts. The
//! two policies therefore form two internally-deterministic universes,
//! and response provenance records which one produced an answer.
//!
//! # Dispatch
//!
//! | policy    | backend                      | kernel                            |
//! |-----------|------------------------------|-----------------------------------|
//! | Exact     | n/a                          | scalar mul-then-add, [`f32::tanh`] |
//! | FastMath  | [`Backend::Portable`]        | scalar [`f32::mul_add`] products + rational tanh |
//! | FastMath  | `Backend::Avx2` (detected)   | AVX2 `_mm256_fmadd_ps` products + 8-lane rational tanh |
//!
//! The backend is chosen once per process by
//! [`is_x86_feature_detected!`](std::arch::is_x86_feature_detected)
//! (`avx2` *and* `fma`), overridable through the `ETSB_KERNELS`
//! environment variable: `portable` forces the scalar fallback (how CI
//! exercises both paths on any host), `native` (or unset) keeps the
//! detected backend. Unrecognized values fall back to detection — the
//! override can only *narrow* capability, never enable an instruction
//! set the host lacks.

use crate::Matrix;
use std::sync::OnceLock;

mod portable;
#[cfg(target_arch = "x86_64")]
mod x86;

/// Which numeric contract a kernel invocation must honour.
///
/// Threaded from `etsb_core`'s prediction entry points down through the
/// batched RNN forward paths. Training, backward and the per-sample
/// reference paths never accept a policy: they are always exact.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum KernelPolicy {
    /// The bitwise-determinism contract: fixed ascending-k mul-then-add
    /// reduction order, identical across batch shapes and worker counts.
    #[default]
    Exact,
    /// Fused multiply-add kernels (portable scalar or AVX2+FMA),
    /// epsilon-close to `Exact` and bitwise identical across backends.
    FastMath,
}

impl KernelPolicy {
    /// Stable name used in provenance records and bench arm labels.
    pub fn name(self) -> &'static str {
        match self {
            KernelPolicy::Exact => "exact",
            KernelPolicy::FastMath => "fast-math",
        }
    }
}

/// The FastMath kernel implementation in use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Scalar [`f32::mul_add`] kernels; compiled everywhere.
    Portable,
    /// AVX2 + FMA intrinsics; selected when the CPU supports both.
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

impl Backend {
    /// Stable name used in diagnostics and tests.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Portable => "portable",
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => "avx2",
        }
    }
}

/// Runtime CPU-feature detection: AVX2 kernels require both `avx2`
/// (8-wide f32 vectors) and `fma` (`_mm256_fmadd_ps`).
fn detected_backend() -> Backend {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return Backend::Avx2;
        }
    }
    Backend::Portable
}

/// Resolve the backend for a given `ETSB_KERNELS` value: `portable`
/// forces the scalar fallback, `native` / unset / unrecognized use
/// feature detection. The override can only narrow capability — there is
/// no way to force AVX2 on a host that lacks it, which is what keeps the
/// dispatch sound.
fn backend_for(env_override: Option<&str>) -> Backend {
    match env_override.map(str::trim) {
        Some("portable") => Backend::Portable,
        _ => detected_backend(),
    }
}

/// The FastMath backend for this process: detection plus the
/// `ETSB_KERNELS` override, resolved once and cached.
pub fn active_backend() -> Backend {
    static CACHE: OnceLock<Backend> = OnceLock::new();
    *CACHE.get_or_init(|| backend_for(std::env::var("ETSB_KERNELS").ok().as_deref()))
}

impl Matrix {
    /// Policy-dispatched [`Matrix::matmul_window_into`]:
    /// `self[row_start .. row_start+count] @ other` written into `out`.
    ///
    /// `Exact` delegates to the pinned scalar kernel unchanged.
    /// `FastMath` computes each output element as one ascending-k fused
    /// multiply-add chain from zero — bitwise identical between the
    /// portable and AVX2 backends (see the module docs), epsilon-close
    /// to the exact result.
    // Dispatching into the runtime-verified AVX2 kernels is the one
    // sanctioned unsafe_code opt-out outside `simd/x86.rs`.
    #[allow(unsafe_code)]
    pub fn matmul_window_policy_into(
        &self,
        row_start: usize,
        count: usize,
        other: &Matrix,
        out: &mut Matrix,
        policy: KernelPolicy,
    ) {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul_window_policy_into: {}x{} @ {}x{} shape mismatch",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        assert!(
            row_start + count <= self.rows(),
            "matmul_window_policy_into: window {row_start}+{count} out of {} rows",
            self.rows()
        );
        match policy {
            KernelPolicy::Exact => self.matmul_window_into(row_start, count, other, out),
            KernelPolicy::FastMath => {
                out.resize_zeroed(count, other.cols());
                match active_backend() {
                    Backend::Portable => {
                        portable::matmul_window(self, row_start, count, other, out);
                    }
                    #[cfg(target_arch = "x86_64")]
                    // SAFETY: Backend::Avx2 is only ever produced by
                    // `detected_backend`, which verified the `avx2` and
                    // `fma` CPU features at runtime.
                    Backend::Avx2 => unsafe {
                        x86::matmul_window(self, row_start, count, other, out);
                    },
                }
                crate::sanitize::assert_finite(
                    "tensor",
                    "matmul_window_policy_into",
                    out.as_slice(),
                );
            }
        }
    }

    /// Policy-dispatched [`Matrix::matvec_into`]: `self @ v` into `out`.
    ///
    /// `FastMath` computes each output element as an eight-lane fused
    /// multiply-add dot product (lane `l` accumulates indices
    /// `k ≡ l (mod 8)`), bitwise identical across backends.
    // Dispatch into runtime-verified AVX2 kernels (see above).
    #[allow(unsafe_code)]
    pub fn matvec_policy_into(&self, v: &[f32], out: &mut Vec<f32>, policy: KernelPolicy) {
        assert_eq!(
            self.cols(),
            v.len(),
            "matvec_policy_into: {}x{} @ vec of len {}",
            self.rows(),
            self.cols(),
            v.len()
        );
        match policy {
            KernelPolicy::Exact => self.matvec_into(v, out),
            KernelPolicy::FastMath => {
                out.clear();
                out.resize(self.rows(), 0.0);
                match active_backend() {
                    Backend::Portable => portable::matvec(self, v, out),
                    #[cfg(target_arch = "x86_64")]
                    // SAFETY: Backend::Avx2 is only ever produced by
                    // `detected_backend`, which verified the `avx2` and
                    // `fma` CPU features at runtime.
                    Backend::Avx2 => unsafe { x86::matvec(self, v, out) },
                }
                crate::sanitize::assert_finite("tensor", "matvec_policy_into", out);
            }
        }
    }

    /// Policy-dispatched [`Matrix::matmul_transposed_into`]:
    /// `self @ other.T` into `out`, each element one fused multiply-add
    /// dot product under `FastMath` (same lane scheme as
    /// [`Matrix::matvec_policy_into`], bitwise identical across
    /// backends).
    // Dispatch into runtime-verified AVX2 kernels (see above).
    #[allow(unsafe_code)]
    pub fn matmul_transposed_policy_into(
        &self,
        other: &Matrix,
        out: &mut Matrix,
        policy: KernelPolicy,
    ) {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_transposed_policy_into: {}x{} @ ({}x{})^T shape mismatch",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        match policy {
            KernelPolicy::Exact => self.matmul_transposed_into(other, out),
            KernelPolicy::FastMath => {
                out.resize_zeroed(self.rows(), other.rows());
                match active_backend() {
                    Backend::Portable => portable::matmul_transposed(self, other, out),
                    #[cfg(target_arch = "x86_64")]
                    // SAFETY: Backend::Avx2 is only ever produced by
                    // `detected_backend`, which verified the `avx2` and
                    // `fma` CPU features at runtime.
                    Backend::Avx2 => unsafe { x86::matmul_transposed(self, other, out) },
                }
                crate::sanitize::assert_finite(
                    "tensor",
                    "matmul_transposed_policy_into",
                    out.as_slice(),
                );
            }
        }
    }
}

/// Explicit-backend window product, for the dispatch-correctness tests:
/// callers pick the backend instead of [`active_backend`]. Panics are
/// impossible for `Avx2` on a non-AVX2 host because the variant cannot
/// be constructed there (`cfg`-gated).
// Dispatch into runtime-verified AVX2 kernels (see the policy methods).
#[allow(unsafe_code)]
pub fn matmul_window_fast_with(
    backend: Backend,
    a: &Matrix,
    row_start: usize,
    count: usize,
    b: &Matrix,
    out: &mut Matrix,
) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_window_fast_with: {}x{} @ {}x{} shape mismatch",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    assert!(
        row_start + count <= a.rows(),
        "matmul_window_fast_with: window {row_start}+{count} out of {} rows",
        a.rows()
    );
    out.resize_zeroed(count, b.cols());
    match backend {
        Backend::Portable => portable::matmul_window(a, row_start, count, b, out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Backend::Avx2 values only exist on hosts where
        // `detected_backend` verified the `avx2` and `fma` features.
        Backend::Avx2 => unsafe { x86::matmul_window(a, row_start, count, b, out) },
    }
}

/// Explicit-backend fused dot product (the FastMath building block of
/// `matvec` / `matmul_transposed`), for the dispatch-correctness tests.
// Dispatch into runtime-verified AVX2 kernels (see the policy methods).
#[allow(unsafe_code)]
pub fn dot_fast_with(backend: Backend, a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot_fast_with: {} vs {} elements",
        a.len(),
        b.len()
    );
    match backend {
        Backend::Portable => portable::dot(a, b),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Backend::Avx2 values only exist on hosts where
        // `detected_backend` verified the `avx2` and `fma` features.
        Backend::Avx2 => unsafe { x86::dot(a, b) },
    }
}

/// FastMath elementwise tanh in place, on [`active_backend`]: the
/// rational approximation `x·P(x²)/Q(x²)` evaluated as fused
/// multiply-add Horner chains — max abs error 2.4e-7 against
/// [`f32::tanh`], bitwise identical across backends (elementwise, so
/// there is no reduction order to preserve; both backends run the same
/// per-element IEEE-754 chain). The Exact tier never calls this: exact
/// paths keep [`f32::tanh`].
pub fn tanh_fast(xs: &mut [f32]) {
    tanh_fast_with(active_backend(), xs);
    crate::sanitize::assert_finite("tensor", "tanh_fast", xs);
}

/// Explicit-backend FastMath tanh, for the dispatch-correctness tests.
// Dispatch into runtime-verified AVX2 kernels (see the policy methods).
#[allow(unsafe_code)]
pub fn tanh_fast_with(backend: Backend, xs: &mut [f32]) {
    match backend {
        Backend::Portable => portable::tanh_inplace(xs),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Backend::Avx2 values only exist on hosts where
        // `detected_backend` verified the `avx2` and `fma` features.
        Backend::Avx2 => unsafe { x86::tanh_inplace(xs) },
    }
}

/// Reduce the eight dot-product lanes with the fixed symmetric tree
/// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))` — shared verbatim by the
/// portable and AVX2 backends so their results stay bitwise identical.
#[inline]
pub(crate) fn reduce_lanes(l: &[f32; 8]) -> f32 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;
    use crate::ops::max_abs_diff;
    use rand::Rng;

    fn random_matrix(rng: &mut impl Rng, rows: usize, cols: usize) -> Matrix {
        // Lace in exact zeros so the exact kernels' zero-skip paths and
        // the fast kernels' no-skip contract are both exercised.
        Matrix::from_fn(rows, cols, |i, j| {
            if (i * cols + j).is_multiple_of(7) {
                0.0
            } else {
                rng.gen_range(-1.0..1.0)
            }
        })
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(KernelPolicy::Exact.name(), "exact");
        assert_eq!(KernelPolicy::FastMath.name(), "fast-math");
        assert_eq!(KernelPolicy::default(), KernelPolicy::Exact);
        assert_eq!(Backend::Portable.name(), "portable");
    }

    #[test]
    fn env_override_narrows_but_never_widens() {
        assert_eq!(backend_for(Some("portable")), Backend::Portable);
        assert_eq!(backend_for(Some(" portable ")), Backend::Portable);
        assert_eq!(backend_for(Some("native")), detected_backend());
        assert_eq!(backend_for(None), detected_backend());
        // Unrecognized values fall back to detection.
        assert_eq!(backend_for(Some("quantum")), detected_backend());
    }

    #[test]
    fn exact_policy_is_bitwise_identical_to_the_exact_kernel() {
        let mut rng = seeded_rng(41);
        let a = random_matrix(&mut rng, 13, 9);
        let b = random_matrix(&mut rng, 9, 11);
        let mut exact = Matrix::default();
        let mut via_policy = Matrix::default();
        a.matmul_window_into(2, 7, &b, &mut exact);
        a.matmul_window_policy_into(2, 7, &b, &mut via_policy, KernelPolicy::Exact);
        assert_eq!(exact.as_slice(), via_policy.as_slice());
    }

    #[test]
    fn fast_math_is_epsilon_close_to_exact() {
        let mut rng = seeded_rng(42);
        let a = random_matrix(&mut rng, 24, 86);
        let b = random_matrix(&mut rng, 86, 64);
        let mut exact = Matrix::default();
        let mut fast = Matrix::default();
        a.matmul_window_policy_into(0, 24, &b, &mut exact, KernelPolicy::Exact);
        a.matmul_window_policy_into(0, 24, &b, &mut fast, KernelPolicy::FastMath);
        let diff = max_abs_diff(exact.as_slice(), fast.as_slice());
        assert!(diff <= 1e-5, "fast-math drifted {diff} from exact");
    }

    #[test]
    fn portable_and_native_backends_are_bitwise_identical() {
        let native = detected_backend();
        let mut rng = seeded_rng(43);
        // Odd sizes exercise the j-tail and k-remainder lanes.
        for (rows, inner, cols) in [(7, 86, 64), (4, 33, 37), (1, 8, 8), (5, 3, 70)] {
            let a = random_matrix(&mut rng, rows, inner);
            let b = random_matrix(&mut rng, inner, cols);
            let mut p = Matrix::default();
            let mut n = Matrix::default();
            matmul_window_fast_with(Backend::Portable, &a, 0, rows, &b, &mut p);
            matmul_window_fast_with(native, &a, 0, rows, &b, &mut n);
            assert_eq!(
                p.as_slice(),
                n.as_slice(),
                "portable vs {} diverged on {rows}x{inner}x{cols}",
                native.name()
            );
        }
        for len in [1usize, 7, 8, 9, 64, 129] {
            let a: Vec<f32> = (0..len)
                .map(|i| {
                    if i % 5 == 0 {
                        0.0
                    } else {
                        rng.gen_range(-1.0..1.0)
                    }
                })
                .collect();
            let b: Vec<f32> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let p = dot_fast_with(Backend::Portable, &a, &b);
            let n = dot_fast_with(native, &a, &b);
            assert_eq!(
                p.to_bits(),
                n.to_bits(),
                "dot lanes diverged at len {len} (portable {p} vs {} {n})",
                native.name()
            );
        }
    }

    #[test]
    fn fast_matvec_and_transposed_match_exact_within_epsilon() {
        let mut rng = seeded_rng(44);
        let m = random_matrix(&mut rng, 19, 31);
        let v: Vec<f32> = (0..31).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut exact = Vec::new();
        let mut fast = Vec::new();
        m.matvec_policy_into(&v, &mut exact, KernelPolicy::Exact);
        m.matvec_policy_into(&v, &mut fast, KernelPolicy::FastMath);
        assert!(max_abs_diff(&exact, &fast) <= 1e-5);

        let other = random_matrix(&mut rng, 13, 31);
        let mut exact = Matrix::default();
        let mut fast = Matrix::default();
        m.matmul_transposed_policy_into(&other, &mut exact, KernelPolicy::Exact);
        m.matmul_transposed_policy_into(&other, &mut fast, KernelPolicy::FastMath);
        assert!(max_abs_diff(exact.as_slice(), fast.as_slice()) <= 1e-5);
    }

    #[test]
    fn fast_tanh_is_close_to_std_and_backend_invariant() {
        let native = detected_backend();
        let mut rng = seeded_rng(45);
        // 1003 % 8 == 3 exercises the sub-register scalar tail; the
        // pinned values cover the exact zero and both clamp regions.
        let mut xs: Vec<f32> = (0..1003).map(|_| rng.gen_range(-9.0..9.0)).collect();
        xs[0] = 0.0;
        xs[1] = 20.0;
        xs[2] = -20.0;
        let mut p = xs.clone();
        let mut n = xs.clone();
        tanh_fast_with(Backend::Portable, &mut p);
        tanh_fast_with(native, &mut n);
        for (i, (a, b)) in p.iter().zip(&n).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "fast tanh diverged between portable and {} at element {i}",
                native.name()
            );
        }
        for (&x, &y) in xs.iter().zip(&p) {
            let want = x.tanh();
            assert!(
                (y - want).abs() <= 5e-7,
                "fast tanh({x}) = {y}, std = {want}"
            );
        }
        assert_eq!(p[0].to_bits(), 0.0f32.to_bits(), "tanh(0) must stay 0");
    }

    #[test]
    #[should_panic(expected = "matmul_window_policy_into")]
    fn policy_window_checks_shapes() {
        let a = Matrix::zeros(3, 4);
        let b = Matrix::zeros(5, 2);
        let mut out = Matrix::default();
        a.matmul_window_policy_into(0, 3, &b, &mut out, KernelPolicy::FastMath);
    }
}
