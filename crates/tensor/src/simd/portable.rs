//! Portable scalar FastMath kernels: [`f32::mul_add`] chains in exactly
//! the order the AVX2 backend computes them, so the two backends are
//! bitwise interchangeable (the `ETSB_KERNELS=portable` CI leg asserts
//! this). Scalar `mul_add` and `_mm256_fmadd_ps` both perform one
//! IEEE-754 fused multiply-add per element, so identical chains produce
//! identical bits.
//!
//! Callers (the dispatchers in `simd::mod`) validate shapes and
//! pre-zero the output; these kernels only accumulate.

use super::reduce_lanes;
use crate::Matrix;

/// FastMath window product into a pre-zeroed `out`:
/// `out[r][j] = Σ_k a[row_start+r][k] * b[k][j]` as one ascending-k
/// fused multiply-add chain per output element, no zero-skip. Each
/// column chain is independent, which is why the AVX2 backend may block
/// columns freely without changing a single bit.
// etsb: allow(shape-assert) -- shapes validated by the policy dispatcher.
pub(super) fn matmul_window(
    a: &Matrix,
    row_start: usize,
    count: usize,
    b: &Matrix,
    out: &mut Matrix,
) {
    for r in 0..count {
        let a_row = a.row(row_start + r);
        let out_row = out.row_mut(r);
        for (k, &av) in a_row.iter().enumerate() {
            for (o, &bv) in out_row.iter_mut().zip(b.row(k)) {
                *o = av.mul_add(bv, *o);
            }
        }
    }
}

/// FastMath dot product: eight independent fused multiply-add lanes
/// (lane `l` accumulates indices `k ≡ l (mod 8)` in ascending order,
/// the remainder continuing lanes `0..len%8`), reduced by the shared
/// symmetric tree. Mirrors one AVX2 register lane-for-lane.
// etsb: allow(shape-assert) -- lengths validated by the policy dispatcher.
pub(super) fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut lanes = [0.0f32; 8];
    let mut ac = a.chunks_exact(8);
    let mut bc = b.chunks_exact(8);
    for (a8, b8) in (&mut ac).zip(&mut bc) {
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane = a8[l].mul_add(b8[l], *lane);
        }
    }
    for (l, (&av, &bv)) in ac.remainder().iter().zip(bc.remainder()).enumerate() {
        lanes[l] = av.mul_add(bv, lanes[l]);
    }
    reduce_lanes(&lanes)
}

/// Clamp bound of the FastMath tanh approximation: beyond this |x| the
/// true tanh is 1 to within f32 resolution, so clamping first keeps the
/// rational form from overflowing without changing the rounded result.
pub(super) const TANH_CLAMP: f32 = 7.998_811_7;

/// Odd numerator coefficients of the FastMath tanh rational
/// approximation `x·P(x²) / Q(x²)` (ascending powers x¹..x¹³) — the
/// classic single-precision fit used across ML runtimes, measured at
/// max abs error 2.4e-7 against [`f32::tanh`] over the clamped range.
pub(super) const TANH_ALPHA: [f32; 7] = [
    4.893_524_6e-3,
    6.372_619_5e-4,
    1.485_722_35e-5,
    5.122_297_3e-8,
    -8.604_672e-11,
    2.000_188e-13,
    -2.760_768_4e-16,
];

/// Even denominator coefficients of the tanh approximation (ascending
/// powers x⁰..x⁶).
pub(super) const TANH_BETA: [f32; 4] =
    [4.893_525e-3, 2.268_434_7e-3, 1.185_347_1e-4, 1.198_258_4e-6];

/// One FastMath tanh: clamp, then evaluate both polynomials as
/// descending-degree fused multiply-add (Horner) chains in `x²`, then
/// one multiply and one division. Every step is a single correctly
/// rounded IEEE-754 operation, so the AVX2 backend reproduces it bit for
/// bit by running the same chain per lane.
#[inline]
pub(super) fn tanh_one(x: f32) -> f32 {
    let x = x.clamp(-TANH_CLAMP, TANH_CLAMP);
    let x2 = x * x;
    let mut p = TANH_ALPHA[6];
    for &a in TANH_ALPHA[..6].iter().rev() {
        p = x2.mul_add(p, a);
    }
    let p = x * p;
    let mut q = TANH_BETA[3];
    for &b in TANH_BETA[..3].iter().rev() {
        q = x2.mul_add(q, b);
    }
    p / q
}

/// FastMath elementwise tanh in place.
pub(super) fn tanh_inplace(xs: &mut [f32]) {
    for x in xs {
        *x = tanh_one(*x);
    }
}

/// FastMath matrix–vector product into a pre-sized `out`: one fused
/// [`dot`] per row.
// etsb: allow(shape-assert) -- shapes validated by the policy dispatcher.
pub(super) fn matvec(m: &Matrix, v: &[f32], out: &mut [f32]) {
    for (i, o) in out.iter_mut().enumerate() {
        *o = dot(m.row(i), v);
    }
}

/// FastMath `a @ b.T` into a pre-shaped `out`: one fused [`dot`] per
/// element.
// etsb: allow(shape-assert) -- shapes validated by the policy dispatcher.
pub(super) fn matmul_transposed(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    for i in 0..a.rows() {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        for (j, o) in out_row.iter_mut().enumerate() {
            *o = dot(a_row, b.row(j));
        }
    }
}
