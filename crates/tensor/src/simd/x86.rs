//! AVX2+FMA FastMath kernels. Only compiled on x86-64 and only *run*
//! after [`super::detected_backend`] has verified the `avx2` and `fma`
//! CPU features at runtime — the `Backend::Avx2` variant cannot be
//! constructed any other way.
//!
//! # Bitwise contract with the portable backend
//!
//! Every output element is the same chain of IEEE-754 fused
//! multiply-adds the portable kernels compute: `_mm256_fmadd_ps`
//! performs one fused multiply-add per lane, exactly like scalar
//! [`f32::mul_add`]. Column blocking (32/8/scalar in `matmul_window`)
//! regroups *independent* per-column chains and therefore cannot change
//! a bit; the dot kernel's register lanes and reduction tree mirror the
//! portable eight-lane scheme index for index.
//
// The one sanctioned opt-out from the workspace-wide `unsafe_code`
// deny: SIMD intrinsics are unsafe by definition, and this module is
// the blessed home for them (enforced by the `fast-math-confinement`
// check rule).
#![allow(unsafe_code)]

use super::portable::{TANH_ALPHA, TANH_BETA, TANH_CLAMP};
use super::reduce_lanes;
use crate::Matrix;
use std::arch::x86_64::{
    _mm256_div_ps, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_max_ps, _mm256_min_ps, _mm256_mul_ps,
    _mm256_set1_ps, _mm256_setzero_ps, _mm256_storeu_ps,
};

/// FastMath window product into a pre-zeroed `out` (see
/// `portable::matmul_window` for the chain definition). Columns are
/// processed in blocks of 32 (four independent accumulator registers),
/// then 8, then a scalar [`f32::mul_add`] tail — all computing the same
/// ascending-k chain per column.
///
/// # Safety
///
/// The CPU must support `avx2` and `fma`, and the caller must have
/// validated shapes (`a.cols() == b.rows()`, the row window in bounds)
/// and shaped `out` to `count x b.cols()`.
// SAFETY: callers uphold the `# Safety` contract above — `Backend::Avx2`
// existence proves avx2+fma, and the policy dispatcher validated shapes.
// etsb: allow(shape-assert) -- shapes validated by the policy dispatcher.
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn matmul_window(
    a: &Matrix,
    row_start: usize,
    count: usize,
    b: &Matrix,
    out: &mut Matrix,
) {
    let cols = b.cols();
    let bp = b.as_slice().as_ptr();
    for r in 0..count {
        let a_row = a.row(row_start + r);
        let out_row = out.row_mut(r);
        let op = out_row.as_mut_ptr();
        let mut j = 0usize;
        while j + 32 <= cols {
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let mut acc2 = _mm256_setzero_ps();
            let mut acc3 = _mm256_setzero_ps();
            for (k, &av) in a_row.iter().enumerate() {
                let va = _mm256_set1_ps(av);
                // SAFETY: k < b.rows() and j+32 <= cols, so every load
                // reads inside row k of `b`'s backing slice.
                let base = bp.add(k * cols + j);
                acc0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(base), acc0);
                acc1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(base.add(8)), acc1);
                acc2 = _mm256_fmadd_ps(va, _mm256_loadu_ps(base.add(16)), acc2);
                acc3 = _mm256_fmadd_ps(va, _mm256_loadu_ps(base.add(24)), acc3);
            }
            // SAFETY: j+32 <= cols == out_row.len(), so the four stores
            // stay inside this output row.
            _mm256_storeu_ps(op.add(j), acc0);
            _mm256_storeu_ps(op.add(j + 8), acc1);
            _mm256_storeu_ps(op.add(j + 16), acc2);
            _mm256_storeu_ps(op.add(j + 24), acc3);
            j += 32;
        }
        while j + 8 <= cols {
            let mut acc = _mm256_setzero_ps();
            for (k, &av) in a_row.iter().enumerate() {
                // SAFETY: k < b.rows() and j+8 <= cols keep the load in
                // row k of `b`.
                let bv = _mm256_loadu_ps(bp.add(k * cols + j));
                acc = _mm256_fmadd_ps(_mm256_set1_ps(av), bv, acc);
            }
            // SAFETY: j+8 <= cols == out_row.len().
            _mm256_storeu_ps(op.add(j), acc);
            j += 8;
        }
        for (jj, o) in out_row.iter_mut().enumerate().skip(j) {
            let mut acc = 0.0f32;
            for (k, &av) in a_row.iter().enumerate() {
                // SAFETY: k < b.rows() and jj < cols index one element
                // of row k.
                acc = av.mul_add(*bp.add(k * cols + jj), acc);
            }
            *o = acc;
        }
    }
}

/// FastMath dot product: one accumulator register whose lane `l` holds
/// the ascending chain over indices `k ≡ l (mod 8)`, spilled to the
/// same eight lanes and reduced by the same tree as the portable
/// backend.
///
/// # Safety
///
/// The CPU must support `avx2` and `fma`, and the caller must have
/// checked `a.len() == b.len()`.
// SAFETY: callers uphold the `# Safety` contract above — `Backend::Avx2`
// existence proves avx2+fma, and the policy dispatcher validated lengths.
// etsb: allow(shape-assert) -- lengths validated by the policy dispatcher.
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
    let chunks = a.len() / 8;
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc = _mm256_setzero_ps();
    for c in 0..chunks {
        // SAFETY: c*8+8 <= a.len() == b.len(), so both loads are in
        // bounds.
        let va = _mm256_loadu_ps(ap.add(c * 8));
        let vb = _mm256_loadu_ps(bp.add(c * 8));
        acc = _mm256_fmadd_ps(va, vb, acc);
    }
    let mut lanes = [0.0f32; 8];
    // SAFETY: `lanes` is exactly eight contiguous f32s.
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    for (l, lane) in lanes.iter_mut().enumerate().take(a.len() % 8) {
        let k = chunks * 8 + l;
        // SAFETY: k < a.len() == b.len() by the remainder bound.
        *lane = (*ap.add(k)).mul_add(*bp.add(k), *lane);
    }
    reduce_lanes(&lanes)
}

/// FastMath matrix–vector product into a pre-sized `out`: one fused
/// [`dot`] per row.
///
/// # Safety
///
/// The CPU must support `avx2` and `fma`, and the caller must have
/// validated `m.cols() == v.len()` and sized `out` to `m.rows()`.
// SAFETY: callers uphold the `# Safety` contract above — `Backend::Avx2`
// existence proves avx2+fma, and the policy dispatcher validated shapes.
// etsb: allow(shape-assert) -- shapes validated by the policy dispatcher.
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn matvec(m: &Matrix, v: &[f32], out: &mut [f32]) {
    for (i, o) in out.iter_mut().enumerate() {
        // SAFETY: features hold for this whole fn; row lengths equal
        // v.len() by the caller's shape check.
        *o = dot(m.row(i), v);
    }
}

/// FastMath `a @ b.T` into a pre-shaped `out`: one fused [`dot`] per
/// element.
///
/// # Safety
///
/// The CPU must support `avx2` and `fma`, and the caller must have
/// validated `a.cols() == b.cols()` and shaped `out` to
/// `a.rows() x b.rows()`.
// SAFETY: callers uphold the `# Safety` contract above — `Backend::Avx2`
// existence proves avx2+fma, and the policy dispatcher validated shapes.
// etsb: allow(shape-assert) -- shapes validated by the policy dispatcher.
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn matmul_transposed(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    for i in 0..a.rows() {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        for (j, o) in out_row.iter_mut().enumerate() {
            // SAFETY: features hold for this whole fn; row lengths
            // equal by the caller's shape check.
            *o = dot(a_row, b.row(j));
        }
    }
}

/// FastMath elementwise tanh in place: the rational approximation from
/// `portable::tanh_one` evaluated eight lanes at a time. Clamp
/// (min-then-max), both Horner chains, the final multiply and the
/// division are each one correctly rounded IEEE-754 operation per lane
/// — the identical chain the scalar kernel runs — so the two backends
/// agree bit for bit; the sub-register tail reuses the scalar kernel
/// outright.
///
/// # Safety
///
/// The CPU must support `avx2` and `fma`.
// SAFETY: callers uphold the `# Safety` contract above — `Backend::Avx2`
// existence proves avx2+fma; any slice length is valid.
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn tanh_inplace(xs: &mut [f32]) {
    let hi = _mm256_set1_ps(TANH_CLAMP);
    let lo = _mm256_set1_ps(-TANH_CLAMP);
    let mut chunks = xs.chunks_exact_mut(8);
    for c in &mut chunks {
        let p8 = c.as_mut_ptr();
        // SAFETY: `c` is exactly eight contiguous f32s.
        let x = _mm256_max_ps(_mm256_min_ps(_mm256_loadu_ps(p8), hi), lo);
        let x2 = _mm256_mul_ps(x, x);
        let mut p = _mm256_set1_ps(TANH_ALPHA[6]);
        for &a in TANH_ALPHA[..6].iter().rev() {
            p = _mm256_fmadd_ps(x2, p, _mm256_set1_ps(a));
        }
        let p = _mm256_mul_ps(x, p);
        let mut q = _mm256_set1_ps(TANH_BETA[3]);
        for &b in TANH_BETA[..3].iter().rev() {
            q = _mm256_fmadd_ps(x2, q, _mm256_set1_ps(b));
        }
        // SAFETY: same eight lanes the load above read.
        _mm256_storeu_ps(p8, _mm256_div_ps(p, q));
    }
    for x in chunks.into_remainder() {
        *x = super::portable::tanh_one(*x);
    }
}
