//! Event sinks: where trace events go once the layer is enabled.
//!
//! Three implementations cover every consumer: [`JsonlSink`] writes one
//! JSON object per line for machine analysis, [`StderrSink`] renders a
//! human-readable live feed, and [`CaptureSink`] buffers events in memory
//! for tests. All sinks receive events behind the global mutex in
//! [`crate::set_sink`], so implementations need no internal locking.

use crate::{Event, FieldValue};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Receiver of trace events. `emit` runs under the global sink lock and
/// behind a panic barrier: a panicking sink disables tracing instead of
/// unwinding into training code.
pub trait Sink: Send {
    /// Record one event.
    fn emit(&mut self, event: &Event);
}

/// JSONL sink: one event per line, stable schema
/// `{"ts_rel_us":…,"span":…,"kind":…,"fields":{…}}`, flushed per event so
/// the file is complete even if the process aborts.
///
/// Write failures (closed pipe, full disk) never unwind into
/// instrumented code and never poison the sink: the event is counted as
/// dropped and tracing continues. If the writer later recovers, the sink
/// first emits a synthetic `event` line
/// (`fields: {"name":"trace_events_dropped","count":N}`) so the gap is
/// visible in the trace itself, then resumes normal emission.
pub struct JsonlSink {
    out: Box<dyn Write + Send>,
    dropped: u64,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("dropped", &self.dropped)
            .finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Create (truncate) the trace file at `path`.
    pub fn create(path: &str) -> std::io::Result<JsonlSink> {
        Ok(Self::from_writer(Box::new(std::io::BufWriter::new(
            std::fs::File::create(path)?,
        ))))
    }

    /// Wrap an arbitrary writer — tests inject failing writers here, and
    /// embedders can target sockets or in-memory buffers.
    pub fn from_writer(out: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink { out, dropped: 0 }
    }

    /// Events dropped so far because the writer failed (reset when a
    /// recovery record is successfully written).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.out.flush()
    }
}

impl Sink for JsonlSink {
    fn emit(&mut self, event: &Event) {
        if self.dropped > 0 {
            // The writer failed earlier; before the next real event, try
            // to record the gap. Schema-compatible with every other line.
            let note = Event {
                ts_rel_us: event.ts_rel_us,
                span: String::new(),
                kind: "event",
                fields: vec![
                    ("name", FieldValue::from("trace_events_dropped")),
                    ("count", FieldValue::from(self.dropped)),
                ],
            };
            if self.write_line(&note.to_json_line()).is_err() {
                // Still failing: this event joins the dropped count.
                self.dropped += 1;
                return;
            }
            self.dropped = 0;
        }
        if self.write_line(&event.to_json_line()).is_err() {
            self.dropped += 1;
        }
    }
}

/// Human-readable sink on standard error:
/// `[   1.234ms] kind span key=value …`.
#[derive(Debug, Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn emit(&mut self, event: &Event) {
        let mut line = format!(
            "[{:>10.3}ms] {:<10} {}",
            event.ts_rel_us as f64 / 1000.0,
            event.kind,
            event.span
        );
        for (key, value) in &event.fields {
            line.push(' ');
            line.push_str(key);
            line.push('=');
            match value {
                FieldValue::U64(n) => line.push_str(&n.to_string()),
                FieldValue::I64(n) => line.push_str(&n.to_string()),
                FieldValue::F64(n) => {
                    let _ = std::fmt::Write::write_fmt(&mut line, format_args!("{n:.6}"));
                }
                FieldValue::Bool(b) => line.push_str(if *b { "true" } else { "false" }),
                FieldValue::Str(s) => line.push_str(s),
            }
        }
        // Locked, buffered single write so parallel threads do not
        // interleave mid-line; failures are dropped, not propagated.
        let stderr = std::io::stderr();
        let mut handle = stderr.lock();
        let _ = writeln!(handle, "{line}");
    }
}

/// In-memory sink for tests: clones every event into a shared buffer.
#[derive(Debug)]
pub struct CaptureSink {
    buffer: Arc<Mutex<Vec<Event>>>,
}

impl CaptureSink {
    /// New sink plus the shared handle tests read events from.
    pub fn new() -> (CaptureSink, Arc<Mutex<Vec<Event>>>) {
        let buffer = Arc::new(Mutex::new(Vec::new()));
        (
            CaptureSink {
                buffer: Arc::clone(&buffer),
            },
            buffer,
        )
    }
}

impl Sink for CaptureSink {
    fn emit(&mut self, event: &Event) {
        if let Ok(mut buf) = self.buffer.lock() {
            buf.push(event.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn event(n: u64) -> Event {
        Event {
            ts_rel_us: n,
            span: String::new(),
            kind: "counter",
            fields: vec![
                ("name", FieldValue::from("x")),
                ("value", FieldValue::from(n)),
            ],
        }
    }

    /// A writer that fails its first `fail_for` write calls, then
    /// forwards to an in-memory buffer.
    struct FlakyWriter {
        fail_for: usize,
        calls: Arc<AtomicUsize>,
        buf: Arc<Mutex<Vec<u8>>>,
    }

    impl Write for FlakyWriter {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            if self.calls.fetch_add(1, Ordering::SeqCst) < self.fail_for {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "pipe closed",
                ));
            }
            self.buf.lock().unwrap().extend_from_slice(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_failures_count_drops_instead_of_panicking() {
        let calls = Arc::new(AtomicUsize::new(0));
        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut sink = JsonlSink::from_writer(Box::new(FlakyWriter {
            fail_for: usize::MAX,
            calls,
            buf: Arc::clone(&buf),
        }));
        for n in 0..3 {
            sink.emit(&event(n));
        }
        assert_eq!(sink.dropped(), 3);
        assert!(buf.lock().unwrap().is_empty());
    }

    #[test]
    fn recovery_emits_a_dropped_events_record() {
        let calls = Arc::new(AtomicUsize::new(0));
        let buf = Arc::new(Mutex::new(Vec::new()));
        // Fail the first two write calls: event 0's line write fails (its
        // trailing-newline write is never attempted after ? aborts...)
        let mut sink = JsonlSink::from_writer(Box::new(FlakyWriter {
            fail_for: 2,
            calls,
            buf: Arc::clone(&buf),
        }));
        sink.emit(&event(0));
        sink.emit(&event(1));
        assert_eq!(sink.dropped(), 2, "both events hit the broken writer");
        sink.emit(&event(2));
        assert_eq!(sink.dropped(), 0, "recovery resets the counter");
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].contains("trace_events_dropped") && lines[0].contains("\"count\":2"),
            "first surviving line records the gap: {}",
            lines[0]
        );
        // Every line stays schema-valid JSONL.
        for line in lines {
            let v = crate::json::parse(line).unwrap();
            for key in ["ts_rel_us", "span", "kind", "fields"] {
                assert!(v.get(key).is_some(), "missing {key} in {line}");
            }
        }
    }
}
