//! Event sinks: where trace events go once the layer is enabled.
//!
//! Three implementations cover every consumer: [`JsonlSink`] writes one
//! JSON object per line for machine analysis, [`StderrSink`] renders a
//! human-readable live feed, and [`CaptureSink`] buffers events in memory
//! for tests. All sinks receive events behind the global mutex in
//! [`crate::set_sink`], so implementations need no internal locking.

use crate::{Event, FieldValue};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Receiver of trace events. `emit` runs under the global sink lock and
/// behind a panic barrier: a panicking sink disables tracing instead of
/// unwinding into training code.
pub trait Sink: Send {
    /// Record one event.
    fn emit(&mut self, event: &Event);
}

/// JSONL sink: one event per line, stable schema
/// `{"ts_rel_us":…,"span":…,"kind":…,"fields":{…}}`, flushed per event so
/// the file is complete even if the process aborts.
#[derive(Debug)]
pub struct JsonlSink {
    out: std::io::BufWriter<std::fs::File>,
}

impl JsonlSink {
    /// Create (truncate) the trace file at `path`.
    pub fn create(path: &str) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink {
            out: std::io::BufWriter::new(std::fs::File::create(path)?),
        })
    }
}

impl Sink for JsonlSink {
    fn emit(&mut self, event: &Event) {
        // I/O failures must not unwind into instrumented code; a broken
        // pipe or full disk silently drops the remaining events.
        let _ = self.out.write_all(event.to_json_line().as_bytes());
        let _ = self.out.write_all(b"\n");
        let _ = self.out.flush();
    }
}

/// Human-readable sink on standard error:
/// `[   1.234ms] kind span key=value …`.
#[derive(Debug, Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn emit(&mut self, event: &Event) {
        let mut line = format!(
            "[{:>10.3}ms] {:<10} {}",
            event.ts_rel_us as f64 / 1000.0,
            event.kind,
            event.span
        );
        for (key, value) in &event.fields {
            line.push(' ');
            line.push_str(key);
            line.push('=');
            match value {
                FieldValue::U64(n) => line.push_str(&n.to_string()),
                FieldValue::I64(n) => line.push_str(&n.to_string()),
                FieldValue::F64(n) => {
                    let _ = std::fmt::Write::write_fmt(&mut line, format_args!("{n:.6}"));
                }
                FieldValue::Bool(b) => line.push_str(if *b { "true" } else { "false" }),
                FieldValue::Str(s) => line.push_str(s),
            }
        }
        // Locked, buffered single write so parallel threads do not
        // interleave mid-line; failures are dropped, not propagated.
        let stderr = std::io::stderr();
        let mut handle = stderr.lock();
        let _ = writeln!(handle, "{line}");
    }
}

/// In-memory sink for tests: clones every event into a shared buffer.
#[derive(Debug)]
pub struct CaptureSink {
    buffer: Arc<Mutex<Vec<Event>>>,
}

impl CaptureSink {
    /// New sink plus the shared handle tests read events from.
    pub fn new() -> (CaptureSink, Arc<Mutex<Vec<Event>>>) {
        let buffer = Arc::new(Mutex::new(Vec::new()));
        (
            CaptureSink {
                buffer: Arc::clone(&buffer),
            },
            buffer,
        )
    }
}

impl Sink for CaptureSink {
    fn emit(&mut self, event: &Event) {
        if let Ok(mut buf) = self.buffer.lock() {
            buf.push(event.clone());
        }
    }
}
