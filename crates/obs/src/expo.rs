//! Dependency-free Prometheus text-format exposition of a
//! [`RegistrySnapshot`](crate::registry::RegistrySnapshot), plus a
//! validator for the emitted format (used by `trace_lint --expo` and the
//! determinism suite).
//!
//! The rendering follows the Prometheus text exposition format
//! (`text/plain; version=0.0.4`): one `# TYPE` comment per metric
//! family, histogram buckets as *cumulative* `_bucket{le="…"}` series
//! ending with `le="+Inf"`, and `_sum` / `_count` companions. Bucket
//! `le` values are the registry's raw integer bounds; the unit lives in
//! the metric name (`…_ns`, `…_cells`), which keeps the rendering exact
//! and byte-deterministic.

use crate::registry::{InstrumentSnapshot, RegistrySnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Content-Type for the rendered exposition.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Render a snapshot as Prometheus text. Deterministic: equal snapshots
/// produce byte-identical output (name-sorted families, integer bucket
/// bounds, shortest-round-trip float formatting).
pub fn render(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.entries {
        let name = sanitize_name(name);
        match value {
            InstrumentSnapshot::Counter(v) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {v}");
            }
            InstrumentSnapshot::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {}", fmt_f64(*v));
            }
            InstrumentSnapshot::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for (le, n) in h.bounds.iter().zip(&h.buckets) {
                    cumulative += n;
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
                let _ = writeln!(out, "{name}_sum {}", h.sum);
                let _ = writeln!(out, "{name}_count {}", h.count);
            }
        }
    }
    out
}

/// Map a registry instrument name onto the Prometheus metric-name
/// charset `[a-zA-Z_:][a-zA-Z0-9_:]*` (invalid characters become `_`).
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Format an f64 the way Prometheus expects (`+Inf`/`-Inf`/`NaN`
/// tokens; otherwise Rust's shortest round-trip `Display`).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// One parsed sample line.
struct Sample {
    name: String,
    le: Option<String>,
    value: f64,
    line_no: usize,
}

/// Validate a Prometheus text exposition as produced by [`render`]:
/// every sample belongs to a `# TYPE`-declared family, counter values
/// are finite and non-negative, histogram `_bucket` series have
/// ascending `le` bounds with non-decreasing cumulative counts ending in
/// `le="+Inf"`, and the `+Inf` bucket equals `_count`. Returns the
/// number of metric families, or a message naming the offending line.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let parts: Vec<&str> = comment.split_whitespace().collect();
            if parts.first() == Some(&"TYPE") {
                if parts.len() != 3 {
                    return Err(format!("line {line_no}: malformed # TYPE comment"));
                }
                if !matches!(parts[2], "counter" | "gauge" | "histogram") {
                    return Err(format!(
                        "line {line_no}: unsupported metric type {:?}",
                        parts[2]
                    ));
                }
                types.insert(parts[1].to_string(), parts[2].to_string());
            }
            continue;
        }
        samples.push(parse_sample(line, line_no)?);
    }

    let mut histograms: BTreeMap<String, Vec<&Sample>> = BTreeMap::new();
    for sample in &samples {
        let (family, suffix) = family_of(&sample.name, &types);
        let Some(kind) = types.get(&family) else {
            return Err(format!(
                "line {}: sample {:?} has no # TYPE declaration",
                sample.line_no, sample.name
            ));
        };
        match (kind.as_str(), suffix) {
            ("counter", "") => {
                if !sample.value.is_finite() || sample.value < 0.0 {
                    return Err(format!(
                        "line {}: counter {:?} must be finite and non-negative",
                        sample.line_no, sample.name
                    ));
                }
            }
            ("gauge", "") => {}
            ("histogram", "_bucket") => {
                if sample.le.is_none() {
                    return Err(format!(
                        "line {}: histogram bucket without le label",
                        sample.line_no
                    ));
                }
                histograms.entry(family).or_default().push(sample);
            }
            ("histogram", "_sum") | ("histogram", "_count") => {
                histograms.entry(family).or_default().push(sample);
            }
            _ => {
                return Err(format!(
                    "line {}: sample {:?} does not match its declared {kind} family",
                    sample.line_no, sample.name
                ));
            }
        }
    }

    for (family, series) in &histograms {
        validate_histogram(family, series)?;
    }
    Ok(types.len())
}

/// Split a sample name into its `# TYPE` family and the histogram
/// suffix (`_bucket`, `_sum`, `_count`, or `""`).
fn family_of(name: &str, types: &BTreeMap<String, String>) -> (String, &'static str) {
    if types.contains_key(name) {
        return (name.to_string(), "");
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return (base.to_string(), suffix);
            }
        }
    }
    (name.to_string(), "")
}

fn validate_histogram(family: &str, series: &[&Sample]) -> Result<(), String> {
    let buckets: Vec<&&Sample> = series.iter().filter(|s| s.le.is_some()).collect();
    if buckets.is_empty() {
        return Err(format!("histogram {family:?} has no buckets"));
    }
    let mut prev_le = None;
    let mut prev_cum = None;
    for (i, bucket) in buckets.iter().enumerate() {
        let le_raw = bucket.le.as_deref().unwrap_or_default();
        let last = i + 1 == buckets.len();
        if last {
            if le_raw != "+Inf" {
                return Err(format!(
                    "line {}: histogram {family:?} must end with le=\"+Inf\"",
                    bucket.line_no
                ));
            }
        } else {
            let le: f64 = le_raw
                .parse()
                .map_err(|_| format!("line {}: unparsable le={le_raw:?}", bucket.line_no))?;
            if let Some(prev) = prev_le {
                if le <= prev {
                    return Err(format!(
                        "line {}: histogram {family:?} le bounds not ascending",
                        bucket.line_no
                    ));
                }
            }
            prev_le = Some(le);
        }
        if !bucket.value.is_finite() || bucket.value < 0.0 {
            return Err(format!(
                "line {}: bucket count must be finite and non-negative",
                bucket.line_no
            ));
        }
        if let Some(prev) = prev_cum {
            if bucket.value < prev {
                return Err(format!(
                    "line {}: histogram {family:?} cumulative bucket counts decreased",
                    bucket.line_no
                ));
            }
        }
        prev_cum = Some(bucket.value);
    }
    let inf = buckets[buckets.len() - 1].value;
    let count = series
        .iter()
        .find(|s| s.le.is_none() && s.name.ends_with("_count"))
        .ok_or_else(|| format!("histogram {family:?} is missing _count"))?;
    if series
        .iter()
        .all(|s| s.le.is_some() || !s.name.ends_with("_sum"))
    {
        return Err(format!("histogram {family:?} is missing _sum"));
    }
    if count.value != inf {
        return Err(format!(
            "histogram {family:?}: _count {} != +Inf bucket {}",
            count.value, inf
        ));
    }
    Ok(())
}

fn parse_sample(line: &str, line_no: usize) -> Result<Sample, String> {
    if let Some(open) = line.find('{') {
        let close = line[open..]
            .find('}')
            .map(|i| open + i)
            .ok_or_else(|| format!("line {line_no}: unterminated label set"))?;
        let labels = &line[open + 1..close];
        let value = line[close + 1..].trim();
        finish_sample(&line[..open], Some(labels), value, line_no)
    } else {
        let mut parts = line.split_whitespace();
        let name = parts
            .next()
            .ok_or_else(|| format!("line {line_no}: empty sample"))?;
        let value = parts
            .next()
            .ok_or_else(|| format!("line {line_no}: sample {name:?} has no value"))?;
        if parts.next().is_some() {
            return Err(format!("line {line_no}: trailing tokens after value"));
        }
        finish_sample(name, None, value, line_no)
    }
}

fn finish_sample(
    name: &str,
    labels: Option<&str>,
    value: &str,
    line_no: usize,
) -> Result<Sample, String> {
    if name.is_empty()
        || !name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
    {
        return Err(format!("line {line_no}: invalid metric name {name:?}"));
    }
    let mut le = None;
    if let Some(labels) = labels {
        for pair in labels.split(',').filter(|p| !p.is_empty()) {
            let (key, raw) = pair
                .split_once('=')
                .ok_or_else(|| format!("line {line_no}: malformed label {pair:?}"))?;
            let raw = raw.trim();
            if !(raw.starts_with('"') && raw.ends_with('"') && raw.len() >= 2) {
                return Err(format!("line {line_no}: label value must be quoted"));
            }
            if key.trim() == "le" {
                le = Some(raw[1..raw.len() - 1].to_string());
            }
        }
    }
    let parsed: f64 = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        other => other
            .parse()
            .map_err(|_| format!("line {line_no}: unparsable value {other:?}"))?,
    };
    Ok(Sample {
        name: name.to_string(),
        le,
        value: parsed,
        line_no,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Registry, COUNT_BOUNDS};

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("demo_requests_total").add(5);
        r.gauge("demo_queue_cells").set(3.0);
        let h = r.histogram_with_bounds("demo_latency_ns", &[1_000, 10_000]);
        h.record(500);
        h.record(500);
        h.record(5_000);
        h.record(50_000);
        r
    }

    #[test]
    fn renders_counters_gauges_and_cumulative_buckets() {
        let text = render(&sample_registry().snapshot());
        let expected = "\
# TYPE demo_latency_ns histogram
demo_latency_ns_bucket{le=\"1000\"} 2
demo_latency_ns_bucket{le=\"10000\"} 3
demo_latency_ns_bucket{le=\"+Inf\"} 4
demo_latency_ns_sum 56000
demo_latency_ns_count 4
# TYPE demo_queue_cells gauge
demo_queue_cells 3
# TYPE demo_requests_total counter
demo_requests_total 5
";
        assert_eq!(text, expected);
    }

    #[test]
    fn rendered_output_validates() {
        let r = sample_registry();
        r.histogram_with_bounds("empty_hist_ns", &COUNT_BOUNDS);
        let text = render(&r.snapshot());
        assert_eq!(validate(&text), Ok(4));
    }

    #[test]
    fn equal_snapshots_render_identical_bytes() {
        let a = render(&sample_registry().snapshot());
        let b = render(&sample_registry().snapshot());
        assert_eq!(a, b);
    }

    #[test]
    fn validate_rejects_broken_expositions() {
        let cases: &[(&str, &str)] = &[
            ("undeclared sample", "orphan_total 3\n"),
            ("negative counter", "# TYPE c_total counter\nc_total -1\n"),
            (
                "missing +Inf bucket",
                "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_sum 5\nh_count 1\n",
            ),
            (
                "non-ascending le",
                "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_bucket{le=\"5\"} 1\n\
                 h_bucket{le=\"+Inf\"} 1\nh_sum 5\nh_count 1\n",
            ),
            (
                "decreasing cumulative counts",
                "# TYPE h histogram\nh_bucket{le=\"10\"} 2\nh_bucket{le=\"20\"} 1\n\
                 h_bucket{le=\"+Inf\"} 2\nh_sum 5\nh_count 2\n",
            ),
            (
                "count mismatch",
                "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_bucket{le=\"+Inf\"} 2\n\
                 h_sum 5\nh_count 3\n",
            ),
            (
                "missing _sum",
                "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
            ),
            ("bad value", "# TYPE g gauge\ng pancake\n"),
        ];
        for (what, text) in cases {
            assert!(validate(text).is_err(), "accepted {what}: {text:?}");
        }
    }

    #[test]
    fn sanitize_maps_invalid_chars() {
        assert_eq!(
            sanitize_name("serve.detect-latency"),
            "serve_detect_latency"
        );
        assert_eq!(sanitize_name("9lives"), "_lives");
        assert_eq!(sanitize_name(""), "_");
    }
}
