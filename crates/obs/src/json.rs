//! Minimal JSON support: a value tree, a writer with correct string
//! escaping, and a strict parser.
//!
//! The workspace vendors no `serde_json`, so the trace sinks, the run
//! manifests and the `trace_lint` validator share this hand-rolled
//! implementation instead. It covers exactly the JSON this workspace
//! emits: objects, arrays, strings, finite numbers, booleans and null
//! (non-finite floats serialize as `null`, the convention `serde_json`
//! uses too).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed or to-be-serialized JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; the traces' relative
    /// microsecond timestamps stay well inside the 2^53 exact range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Keys are sorted (`BTreeMap`) so serialization is
    /// deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (String, Value)>) -> Value {
        Value::Obj(pairs.into_iter().collect())
    }

    /// Serialize to a compact single-line JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(*n, out),
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}

/// Write a number the way JSON requires: no `NaN`/`inf` tokens (those
/// become `null`), integers without a trailing `.0`.
fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Write a JSON string literal with the mandatory escapes.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure: what was expected and the byte offset it failed at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing characters after document", pos));
    }
    Ok(value)
}

fn err(message: &str, offset: usize) -> ParseError {
    ParseError {
        message: message.to_string(),
        offset,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Value::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err("invalid literal", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err("invalid utf-8", start))?;
    match text.parse::<f64>() {
        Ok(n) if n.is_finite() => Ok(Value::Num(n)),
        _ => Err(err("invalid number", start)),
    }
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err("truncated \\u escape", *pos))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err("bad \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err("bad \\u escape", *pos))?;
                        // Surrogate pairs are not emitted by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one whole UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err("invalid utf-8 in string", *pos))?;
                let c = match rest.chars().next() {
                    Some(c) => c,
                    None => return Err(err("unterminated string", *pos)),
                };
                if (c as u32) < 0x20 {
                    return Err(err("unescaped control character", *pos));
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(err("expected ',' or ']'", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err("expected object key string", *pos));
        }
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err("expected ':'", *pos));
        }
        *pos += 1;
        map.insert(key, parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(err("expected ',' or '}'", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::obj([
            ("name".to_string(), Value::from("a \"quoted\"\nline")),
            ("n".to_string(), Value::from(42u64)),
            ("pi".to_string(), Value::Num(3.25)),
            (
                "arr".to_string(),
                Value::Arr(vec![Value::Null, Value::Bool(true)]),
            ),
        ]);
        let text = v.to_json();
        assert_eq!(parse(&text).expect("round trip"), v);
    }

    #[test]
    fn integers_have_no_decimal_point() {
        assert_eq!(Value::from(7u64).to_json(), "7");
        assert_eq!(Value::Num(7.5).to_json(), "7.5");
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1} x", "\"\\q\"", "nul"] {
            assert!(parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#"{"k":"a\tb\u00e9","neg":-1.5e2}"#).expect("valid");
        assert_eq!(v.get("k").and_then(Value::as_str), Some("a\tbé"));
        assert_eq!(v.get("neg").and_then(Value::as_f64), Some(-150.0));
    }

    #[test]
    fn control_chars_escape_on_write_and_reject_raw() {
        let mut out = String::new();
        write_escaped("a\u{1}b", &mut out);
        assert_eq!(out, "\"a\\u0001b\"");
        assert!(parse("\"a\u{1}b\"").is_err());
    }
}
