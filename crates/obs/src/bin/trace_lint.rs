//! `trace_lint`: validate an `ETSB_TRACE` JSONL trace, a run manifest,
//! and/or a Prometheus text exposition. Used by `run_checks.sh` to gate
//! the observability layer: every trace line must be a valid JSON object
//! carrying the stable schema keys, cumulative counters (names ending in
//! `_total`) must be monotonic across the file, the manifest must carry
//! every required field, and an exposition must satisfy the histogram
//! invariants (`etsb_obs::expo::validate`).
//!
//! Usage:
//!   trace_lint [--trace <trace.jsonl>] [--manifest <manifest.json>]
//!              [--expo <metrics.prom>]
//!
//! Exits nonzero on the first structural violation, printing the
//! offending line number and reason.

use etsb_obs::json;
use std::collections::BTreeMap;

const TRACE_REQUIRED_KEYS: &[&str] = &["ts_rel_us", "span", "kind", "fields"];
const TRACE_KINDS: &[&str] = &["span_start", "span_end", "counter", "gauge", "event"];
const DATASET_REQUIRED_KEYS: &[&str] = &["name", "rows", "cols", "cells"];

fn usage() -> String {
    "usage: trace_lint [--trace <trace.jsonl>] [--manifest <manifest.json>] [--expo <metrics.prom>]"
        .to_string()
}

struct Args {
    trace: Option<String>,
    manifest: Option<String>,
    expo: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        trace: None,
        manifest: None,
        expo: None,
    };
    let mut iter = argv.iter();
    while let Some(flag) = iter.next() {
        let slot = match flag.as_str() {
            "--trace" => &mut args.trace,
            "--manifest" => &mut args.manifest,
            "--expo" => &mut args.expo,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        };
        match iter.next() {
            Some(value) => *slot = Some(value.clone()),
            None => return Err(format!("{flag} requires a path\n{}", usage())),
        }
    }
    if args.trace.is_none() && args.manifest.is_none() && args.expo.is_none() {
        return Err(format!("nothing to lint\n{}", usage()));
    }
    Ok(args)
}

/// Running monotonicity state for cumulative trace counters: name →
/// (last value, line it was seen on). Only counters whose name ends in
/// `_total` participate — other counter events (per-shard item counts,
/// per-call dedup ratios) are point observations, not running totals.
type CounterState = BTreeMap<String, (f64, usize)>;

/// Enforce monotonicity for a `counter` event's `_total` series.
fn check_counter_monotonic(
    value: &json::Value,
    line_no: usize,
    state: &mut CounterState,
) -> Result<(), String> {
    let fields = match value.get("fields") {
        Some(f) => f,
        None => return Ok(()),
    };
    let Some(name) = fields.get("name").and_then(json::Value::as_str) else {
        return Err("counter event lacks a name field".to_string());
    };
    if !name.ends_with("_total") {
        return Ok(());
    }
    let Some(count) = fields.get("value").and_then(json::Value::as_f64) else {
        return Err(format!("counter {name:?} lacks a numeric value"));
    };
    if let Some((prev, prev_line)) = state.get(name) {
        if count < *prev {
            return Err(format!(
                "cumulative counter {name:?} decreased ({prev} at line {prev_line} -> {count})"
            ));
        }
    }
    state.insert(name.to_string(), (count, line_no));
    Ok(())
}

/// Validate one trace line; returns the parsed value (so stream-level
/// checks can continue on it) or a reason on violation.
fn lint_trace_line(line: &str) -> Result<json::Value, String> {
    let value = json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    for key in TRACE_REQUIRED_KEYS {
        if value.get(key).is_none() {
            return Err(format!("missing required key {key:?}"));
        }
    }
    let ts = value
        .get("ts_rel_us")
        .and_then(json::Value::as_f64)
        .ok_or("ts_rel_us is not a number")?;
    if !(ts >= 0.0 && ts.fract() == 0.0) {
        return Err(format!(
            "ts_rel_us must be a non-negative integer, got {ts}"
        ));
    }
    if value.get("span").and_then(json::Value::as_str).is_none() {
        return Err("span is not a string".to_string());
    }
    let kind = value
        .get("kind")
        .and_then(json::Value::as_str)
        .ok_or("kind is not a string")?;
    if !TRACE_KINDS.contains(&kind) {
        return Err(format!(
            "unknown kind {kind:?} (expected one of {TRACE_KINDS:?})"
        ));
    }
    match value.get("fields") {
        Some(json::Value::Obj(fields)) => {
            for (name, field) in fields {
                match field {
                    json::Value::Arr(_) | json::Value::Obj(_) => {
                        return Err(format!("field {name:?} is not a scalar"));
                    }
                    _ => {}
                }
            }
        }
        _ => return Err("fields is not an object".to_string()),
    }
    if kind == "span_end" && value.get("fields").and_then(|f| f.get("dur_us")).is_none() {
        return Err("span_end event lacks dur_us field".to_string());
    }
    Ok(value)
}

fn lint_trace_text(path: &str, text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    let mut counters = CounterState::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value =
            lint_trace_line(line).map_err(|reason| format!("{path}:{}: {reason}", idx + 1))?;
        if value.get("kind").and_then(json::Value::as_str) == Some("counter") {
            check_counter_monotonic(&value, idx + 1, &mut counters)
                .map_err(|reason| format!("{path}:{}: {reason}", idx + 1))?;
        }
        count += 1;
    }
    if count == 0 {
        return Err(format!("{path}: trace contains no events"));
    }
    Ok(count)
}

fn lint_trace(path: &str) -> Result<usize, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read trace: {e}"))?;
    lint_trace_text(path, &text)
}

fn lint_expo(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{path}: cannot read exposition: {e}"))?;
    etsb_obs::expo::validate(&text).map_err(|reason| format!("{path}: {reason}"))
}

fn lint_manifest(path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read manifest: {e}"))?;
    let value = json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    for key in etsb_obs::MANIFEST_REQUIRED_KEYS {
        if value.get(key).is_none() {
            return Err(format!("{path}: manifest missing required key {key:?}"));
        }
    }
    let datasets = match value.get("datasets") {
        Some(json::Value::Arr(items)) if !items.is_empty() => items,
        Some(json::Value::Arr(_)) => {
            return Err(format!("{path}: manifest lists no datasets"));
        }
        _ => return Err(format!("{path}: manifest \"datasets\" is not an array")),
    };
    for (idx, dataset) in datasets.iter().enumerate() {
        for key in DATASET_REQUIRED_KEYS {
            if dataset.get(key).is_none() {
                return Err(format!(
                    "{path}: datasets[{idx}] missing required key {key:?}"
                ));
            }
        }
    }
    match value.get("config") {
        Some(json::Value::Obj(_)) => Ok(()),
        _ => Err(format!("{path}: manifest \"config\" is not an object")),
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = parse_args(argv)?;
    if let Some(trace) = &args.trace {
        let events = lint_trace(trace)?;
        println!("trace_lint: {trace}: {events} events OK");
    }
    if let Some(manifest) = &args.manifest {
        lint_manifest(manifest)?;
        println!("trace_lint: {manifest}: manifest OK");
    }
    if let Some(expo) = &args.expo {
        let families = lint_expo(expo)?;
        println!("trace_lint: {expo}: {families} metric families OK");
    }
    Ok(())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Err(message) = run(&argv) {
        eprintln!("trace_lint: {message}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_lines() {
        let line =
            r#"{"ts_rel_us":12,"span":"a.b","kind":"counter","fields":{"name":"x","value":3}}"#;
        assert!(lint_trace_line(line).is_ok());
    }

    #[test]
    fn rejects_missing_keys_and_bad_kinds() {
        assert!(lint_trace_line(r#"{"span":"a","kind":"event","fields":{}}"#).is_err());
        assert!(
            lint_trace_line(r#"{"ts_rel_us":1,"span":"a","kind":"bogus","fields":{}}"#).is_err()
        );
        assert!(lint_trace_line("not json").is_err());
        // span_end must carry its duration.
        assert!(
            lint_trace_line(r#"{"ts_rel_us":1,"span":"a","kind":"span_end","fields":{}}"#).is_err()
        );
    }

    fn counter_line(ts: u64, name: &str, value: i64) -> String {
        format!(
            r#"{{"ts_rel_us":{ts},"span":"s","kind":"counter","fields":{{"name":"{name}","value":{value}}}}}"#
        )
    }

    #[test]
    fn accepts_monotonic_total_counters() {
        let trace = [
            counter_line(1, "serve_cache_hits_total", 0),
            counter_line(2, "serve_cache_hits_total", 3),
            counter_line(3, "serve_cache_hits_total", 3),
            // Non-_total counters are point observations: free to vary.
            counter_line(4, "shard_items", 9),
            counter_line(5, "shard_items", 2),
        ]
        .join("\n");
        assert_eq!(lint_trace_text("fixture", &trace), Ok(5));
    }

    #[test]
    fn rejects_decreasing_total_counters() {
        let trace = [
            counter_line(1, "serve_cache_hits_total", 5),
            counter_line(2, "serve_cache_hits_total", 4),
        ]
        .join("\n");
        let err = lint_trace_text("fixture", &trace).expect_err("must reject");
        assert!(err.contains("decreased"), "{err}");
        assert!(err.contains("fixture:2"), "{err}");
    }

    #[test]
    fn expo_fixtures_positive_and_negative() {
        // Positive fixture: a rendered registry round-trips through the
        // shared validator that --expo invokes.
        let registry = etsb_obs::registry::Registry::new();
        registry.counter("x_total").add(7);
        registry
            .histogram_with_bounds("lat_ns", &[10, 100])
            .record(42);
        let good = etsb_obs::expo::render(&registry.snapshot());
        assert_eq!(etsb_obs::expo::validate(&good), Ok(2));
        // Negative fixture: a decreasing cumulative bucket series
        // (le="10" claims more observations than le="100").
        let bad = good.replace("lat_ns_bucket{le=\"10\"} 0", "lat_ns_bucket{le=\"10\"} 2");
        assert!(etsb_obs::expo::validate(&bad).is_err());
    }
}
