//! `trace_lint`: validate an `ETSB_TRACE` JSONL trace and/or a run
//! manifest. Used by `run_checks.sh` to gate the observability layer:
//! every trace line must be a valid JSON object carrying the stable
//! schema keys, and the manifest must carry every required field.
//!
//! Usage:
//!   trace_lint --trace <trace.jsonl> [--manifest <manifest.json>]
//!
//! Exits nonzero on the first structural violation, printing the
//! offending line number and reason.

use etsb_obs::json;

const TRACE_REQUIRED_KEYS: &[&str] = &["ts_rel_us", "span", "kind", "fields"];
const TRACE_KINDS: &[&str] = &["span_start", "span_end", "counter", "gauge", "event"];
const DATASET_REQUIRED_KEYS: &[&str] = &["name", "rows", "cols", "cells"];

fn usage() -> String {
    "usage: trace_lint [--trace <trace.jsonl>] [--manifest <manifest.json>]".to_string()
}

struct Args {
    trace: Option<String>,
    manifest: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        trace: None,
        manifest: None,
    };
    let mut iter = argv.iter();
    while let Some(flag) = iter.next() {
        let slot = match flag.as_str() {
            "--trace" => &mut args.trace,
            "--manifest" => &mut args.manifest,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        };
        match iter.next() {
            Some(value) => *slot = Some(value.clone()),
            None => return Err(format!("{flag} requires a path\n{}", usage())),
        }
    }
    if args.trace.is_none() && args.manifest.is_none() {
        return Err(format!("nothing to lint\n{}", usage()));
    }
    Ok(args)
}

/// Validate one trace line; returns a reason on violation.
fn lint_trace_line(line: &str) -> Result<(), String> {
    let value = json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    for key in TRACE_REQUIRED_KEYS {
        if value.get(key).is_none() {
            return Err(format!("missing required key {key:?}"));
        }
    }
    let ts = value
        .get("ts_rel_us")
        .and_then(json::Value::as_f64)
        .ok_or("ts_rel_us is not a number")?;
    if !(ts >= 0.0 && ts.fract() == 0.0) {
        return Err(format!(
            "ts_rel_us must be a non-negative integer, got {ts}"
        ));
    }
    if value.get("span").and_then(json::Value::as_str).is_none() {
        return Err("span is not a string".to_string());
    }
    let kind = value
        .get("kind")
        .and_then(json::Value::as_str)
        .ok_or("kind is not a string")?;
    if !TRACE_KINDS.contains(&kind) {
        return Err(format!(
            "unknown kind {kind:?} (expected one of {TRACE_KINDS:?})"
        ));
    }
    match value.get("fields") {
        Some(json::Value::Obj(fields)) => {
            for (name, field) in fields {
                match field {
                    json::Value::Arr(_) | json::Value::Obj(_) => {
                        return Err(format!("field {name:?} is not a scalar"));
                    }
                    _ => {}
                }
            }
        }
        _ => return Err("fields is not an object".to_string()),
    }
    if kind == "span_end" && value.get("fields").and_then(|f| f.get("dur_us")).is_none() {
        return Err("span_end event lacks dur_us field".to_string());
    }
    Ok(())
}

fn lint_trace(path: &str) -> Result<usize, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read trace: {e}"))?;
    let mut count = 0usize;
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        lint_trace_line(line).map_err(|reason| format!("{path}:{}: {reason}", idx + 1))?;
        count += 1;
    }
    if count == 0 {
        return Err(format!("{path}: trace contains no events"));
    }
    Ok(count)
}

fn lint_manifest(path: &str) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read manifest: {e}"))?;
    let value = json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    for key in etsb_obs::MANIFEST_REQUIRED_KEYS {
        if value.get(key).is_none() {
            return Err(format!("{path}: manifest missing required key {key:?}"));
        }
    }
    let datasets = match value.get("datasets") {
        Some(json::Value::Arr(items)) if !items.is_empty() => items,
        Some(json::Value::Arr(_)) => {
            return Err(format!("{path}: manifest lists no datasets"));
        }
        _ => return Err(format!("{path}: manifest \"datasets\" is not an array")),
    };
    for (idx, dataset) in datasets.iter().enumerate() {
        for key in DATASET_REQUIRED_KEYS {
            if dataset.get(key).is_none() {
                return Err(format!(
                    "{path}: datasets[{idx}] missing required key {key:?}"
                ));
            }
        }
    }
    match value.get("config") {
        Some(json::Value::Obj(_)) => Ok(()),
        _ => Err(format!("{path}: manifest \"config\" is not an object")),
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let args = parse_args(argv)?;
    if let Some(trace) = &args.trace {
        let events = lint_trace(trace)?;
        println!("trace_lint: {trace}: {events} events OK");
    }
    if let Some(manifest) = &args.manifest {
        lint_manifest(manifest)?;
        println!("trace_lint: {manifest}: manifest OK");
    }
    Ok(())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Err(message) = run(&argv) {
        eprintln!("trace_lint: {message}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_lines() {
        let line =
            r#"{"ts_rel_us":12,"span":"a.b","kind":"counter","fields":{"name":"x","value":3}}"#;
        assert!(lint_trace_line(line).is_ok());
    }

    #[test]
    fn rejects_missing_keys_and_bad_kinds() {
        assert!(lint_trace_line(r#"{"span":"a","kind":"event","fields":{}}"#).is_err());
        assert!(
            lint_trace_line(r#"{"ts_rel_us":1,"span":"a","kind":"bogus","fields":{}}"#).is_err()
        );
        assert!(lint_trace_line("not json").is_err());
        // span_end must carry its duration.
        assert!(
            lint_trace_line(r#"{"ts_rel_us":1,"span":"a","kind":"span_end","fields":{}}"#).is_err()
        );
    }
}
