//! `trace_profile`: render a sorted self-time table from an
//! `ETSB_TRACE=jsonl:<path>` trace file.
//!
//! Usage:
//!   trace_profile --trace <trace.jsonl> [--top <n>] [--parents <span>]
//!
//! Folds every completed span (`span_end` events) into per-span-name
//! rollups via `etsb_obs::profile::SpanProfile` and prints them sorted
//! by descending self-time. `--parents <span>` additionally prints the
//! per-parent attribution for one span name. Exits nonzero on a
//! malformed trace or a trace with no completed spans.

use etsb_obs::profile::SpanProfile;

fn usage() -> String {
    "usage: trace_profile --trace <trace.jsonl> [--top <n>] [--parents <span>]".to_string()
}

struct Args {
    trace: String,
    top: usize,
    parents: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut trace = None;
    let mut top = 0usize;
    let mut parents = None;
    let mut iter = argv.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--trace" => match iter.next() {
                Some(value) => trace = Some(value.clone()),
                None => return Err(format!("--trace requires a path\n{}", usage())),
            },
            "--top" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => top = n,
                _ => return Err(format!("--top requires a count\n{}", usage())),
            },
            "--parents" => match iter.next() {
                Some(value) => parents = Some(value.clone()),
                None => return Err(format!("--parents requires a span name\n{}", usage())),
            },
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    match trace {
        Some(trace) => Ok(Args {
            trace,
            top,
            parents,
        }),
        None => Err(format!("--trace is required\n{}", usage())),
    }
}

fn run(argv: &[String]) -> Result<String, String> {
    let args = parse_args(argv)?;
    let text = std::fs::read_to_string(&args.trace)
        .map_err(|e| format!("{}: cannot read trace: {e}", args.trace))?;
    let mut profile = SpanProfile::new();
    profile
        .ingest_jsonl(&text)
        .map_err(|reason| format!("{}: {reason}", args.trace))?;
    let rows = profile.rows();
    if rows.is_empty() {
        return Err(format!(
            "{}: no completed spans in {} events",
            args.trace,
            profile.events_seen()
        ));
    }
    let mut out = format!(
        "trace_profile: {} — {} events, {} span names\n\n{}",
        args.trace,
        profile.events_seen(),
        rows.len(),
        profile.render_table(args.top),
    );
    if let Some(name) = &args.parents {
        let edges = profile.parents_of(name);
        if edges.is_empty() {
            return Err(format!("{}: no completed span named {name:?}", args.trace));
        }
        out.push_str(&format!("\nparents of {name:?}:\n"));
        for (parent, stats) in edges {
            out.push_str(&format!(
                "  {parent:<24} calls {:>8}  total_ms {:>12.3}\n",
                stats.calls,
                stats.total_us as f64 / 1000.0,
            ));
        }
    }
    Ok(out)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(report) => print!("{report}"),
        Err(message) => {
            eprintln!("trace_profile: {message}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_trace(lines: &[&str]) -> std::path::PathBuf {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "trace_profile_test_{}_{}.jsonl",
            std::process::id(),
            lines.len()
        ));
        std::fs::write(&path, lines.join("\n")).expect("write fixture");
        path
    }

    #[test]
    fn renders_table_from_jsonl_fixture() {
        let path = write_trace(&[
            r#"{"ts_rel_us":1,"span":"train","kind":"span_start","fields":{}}"#,
            r#"{"ts_rel_us":2,"span":"train.forward","kind":"span_end","fields":{"dur_us":700}}"#,
            r#"{"ts_rel_us":3,"span":"train","kind":"span_end","fields":{"dur_us":1000}}"#,
        ]);
        let argv = vec!["--trace".to_string(), path.display().to_string()];
        let report = run(&argv).expect("profile runs");
        let _ = std::fs::remove_file(&path);
        assert!(report.contains("forward"), "{report}");
        // forward has more self-time (700) than train (300): it sorts first.
        let fwd = report.find("forward").expect("forward row");
        let train_row = report.rfind("train ").unwrap_or(usize::MAX);
        assert!(fwd < train_row, "{report}");
    }

    #[test]
    fn rejects_span_free_traces() {
        let path = write_trace(&[r#"{"ts_rel_us":1,"span":"x","kind":"span_start","fields":{}}"#]);
        let argv = vec!["--trace".to_string(), path.display().to_string()];
        let err = run(&argv).expect_err("no completed spans");
        let _ = std::fs::remove_file(&path);
        assert!(err.contains("no completed spans"), "{err}");
    }

    #[test]
    fn parents_flag_reports_attribution() {
        let path = write_trace(&[
            r#"{"ts_rel_us":1,"span":"a.kernel","kind":"span_end","fields":{"dur_us":10}}"#,
            r#"{"ts_rel_us":2,"span":"b.kernel","kind":"span_end","fields":{"dur_us":30}}"#,
        ]);
        let argv = vec![
            "--trace".to_string(),
            path.display().to_string(),
            "--parents".to_string(),
            "kernel".to_string(),
        ];
        let report = run(&argv).expect("profile runs");
        let _ = std::fs::remove_file(&path);
        let b = report.find("\n  b").expect("b parent row");
        let a = report.find("\n  a").expect("a parent row");
        assert!(b < a, "parents sorted by total time:\n{report}");
    }
}
