//! `etsb-obs`: dependency-free structured tracing and metrics for the
//! ETSB-RNN pipeline.
//!
//! The §5.2 protocol (120 epochs × 10 repetitions × 6 datasets) is a
//! long-running sweep; this crate makes it observable without touching
//! results. It provides:
//!
//! * **Nestable spans** with scoped wall-clock timers ([`span`], the
//!   [`obs_span!`] macro) — each span emits a `span_start` and a
//!   `span_end` event carrying its duration in microseconds.
//! * **Counters, gauges and events** ([`counter`], [`gauge`],
//!   [`obs_event!`]) for training signals: per-epoch loss, gradient
//!   global-norms, sanitizer hits, evaluation metrics.
//! * **Pluggable sinks** ([`Sink`]): a JSONL file sink with a stable
//!   one-object-per-line schema, a human-readable stderr sink, and an
//!   in-memory capture sink for tests. Selected via
//!   `ETSB_TRACE=off|stderr|jsonl:<path>` ([`init_from_env`]) or
//!   programmatically ([`set_sink`]).
//! * **In-process aggregation** ([`registry`]): a lock-cheap registry of
//!   named counters, gauges and fixed-boundary log-scale latency
//!   histograms with deterministic snapshots (enabled via
//!   `ETSB_METRICS=on`); a **span profiler** ([`profile`]) folding
//!   `span_start`/`span_end` events into per-span self-time rollups
//!   (live via `ProfileSink` or offline via the `trace_profile` bin);
//!   and dependency-free **Prometheus text exposition** ([`expo`]) of
//!   registry snapshots, served by `etsb serve`'s `GET /metrics`.
//!
//! # Overhead contract
//!
//! With tracing disabled (the default), every instrumentation point costs
//! a single relaxed atomic load and performs **no allocation** — hot
//! training loops stay at hardware speed. Instrumentation must never
//! perturb results: no RNG is touched, and a panicking sink is caught at
//! the emit boundary and disables tracing rather than unwinding into
//! training code.
//!
//! # Event schema
//!
//! Every JSONL line is one object with exactly four keys:
//!
//! ```json
//! {"ts_rel_us":1234,"span":"pipeline.repetition.train_epoch","kind":"span_end","fields":{"dur_us":87,"epoch":3}}
//! ```
//!
//! `ts_rel_us` is microseconds since the sink was installed; `span` is
//! the dot-joined path of open spans on the emitting thread; `kind` is
//! one of `span_start`, `span_end`, `counter`, `gauge`, `event`;
//! `fields` is a flat string→scalar map.

pub mod expo;
pub mod json;
pub mod profile;
pub mod registry;
mod sink;

pub use sink::{CaptureSink, JsonlSink, Sink, StderrSink};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Top-level keys a run manifest must carry (validated by `trace_lint`
/// and produced by `etsb_core::manifest`).
pub const MANIFEST_REQUIRED_KEYS: &[&str] = &[
    "seed", "runs", "config", "workers", "version", "features", "datasets",
];

/// Whether tracing is enabled. Checked with a single relaxed load; the
/// flag only flips in [`set_sink`].
static TRACE_ON: AtomicBool = AtomicBool::new(false);

/// The installed sink, if any.
static SINK: Mutex<Option<Box<dyn Sink>>> = Mutex::new(None);

/// Process-relative clock epoch: installed with the first sink so
/// `ts_rel_us` counts from trace start.
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    /// Stack of open span names on this thread (worker threads start
    /// with an empty stack of their own).
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// One scalar field value attached to an event.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (counts, durations in µs).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (losses, norms, metrics).
    F64(f64),
    /// String (names, labels).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

macro_rules! impl_field_from {
    ($($ty:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl From<$ty> for FieldValue {
            fn from(v: $ty) -> FieldValue { FieldValue::$variant(v as $conv) }
        }
    )*};
}

impl_field_from!(
    u64 => U64 as u64,
    u32 => U64 as u64,
    usize => U64 as u64,
    i64 => I64 as i64,
    i32 => I64 as i64,
    f64 => F64 as f64,
    f32 => F64 as f64,
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

impl FieldValue {
    fn to_json_value(&self) -> json::Value {
        match self {
            FieldValue::U64(n) => json::Value::Num(*n as f64),
            FieldValue::I64(n) => json::Value::Num(*n as f64),
            FieldValue::F64(n) => json::Value::Num(*n),
            FieldValue::Str(s) => json::Value::Str(s.clone()),
            FieldValue::Bool(b) => json::Value::Bool(*b),
        }
    }
}

/// One trace event, as handed to sinks.
#[derive(Clone, Debug)]
pub struct Event {
    /// Microseconds since the sink was installed.
    pub ts_rel_us: u64,
    /// Dot-joined path of the open spans on the emitting thread
    /// (`""` at the root).
    pub span: String,
    /// Event kind: `span_start`, `span_end`, `counter`, `gauge`, `event`.
    pub kind: &'static str,
    /// Flat key → scalar payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// The stable JSONL representation (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let fields = json::Value::obj(
            self.fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_json_value())),
        );
        json::Value::obj([
            (
                "ts_rel_us".to_string(),
                json::Value::Num(self.ts_rel_us as f64),
            ),
            ("span".to_string(), json::Value::Str(self.span.clone())),
            ("kind".to_string(), json::Value::Str(self.kind.to_string())),
            ("fields".to_string(), fields),
        ])
        .to_json()
    }
}

/// Whether tracing is currently enabled. One relaxed atomic load — the
/// entire cost of every instrumentation point when tracing is off. Check
/// this before assembling field vectors for [`emit`].
#[inline(always)]
pub fn enabled() -> bool {
    TRACE_ON.load(Ordering::Relaxed)
}

/// Install (or, with `None`, remove) the process-wide sink. The relative
/// clock starts at the first installation. Intended for programmatic use
/// in tests and tools; binaries normally call [`init_from_env`].
pub fn set_sink(sink: Option<Box<dyn Sink>>) {
    let _ = EPOCH.get_or_init(Instant::now);
    let on = sink.is_some();
    match SINK.lock() {
        Ok(mut slot) => *slot = sink,
        Err(poisoned) => *poisoned.into_inner() = sink,
    }
    TRACE_ON.store(on, Ordering::SeqCst);
}

/// Configure the sink from `ETSB_TRACE`:
///
/// * unset, empty or `off` — tracing disabled;
/// * `stderr` — human-readable feed on standard error;
/// * `jsonl:<path>` — JSONL file at `<path>` (truncated).
///
/// Returns a description of the active mode, or an error for an
/// unrecognized value / unwritable trace path.
pub fn init_from_env() -> Result<&'static str, String> {
    match std::env::var("ETSB_TRACE") {
        Err(_) => {
            set_sink(None);
            Ok("off")
        }
        Ok(raw) => match raw.trim() {
            "" | "off" => {
                set_sink(None);
                Ok("off")
            }
            "stderr" => {
                set_sink(Some(Box::new(StderrSink)));
                Ok("stderr")
            }
            other => match other.strip_prefix("jsonl:") {
                Some(path) if !path.is_empty() => {
                    let sink = JsonlSink::create(path)
                        .map_err(|e| format!("ETSB_TRACE: cannot create {path}: {e}"))?;
                    set_sink(Some(Box::new(sink)));
                    Ok("jsonl")
                }
                _ => Err(format!(
                    "ETSB_TRACE: unrecognized value {other:?} (expected off|stderr|jsonl:<path>)"
                )),
            },
        },
    }
}

/// Microseconds since the trace epoch.
fn now_rel_us() -> u64 {
    EPOCH
        .get_or_init(Instant::now)
        .elapsed()
        .as_micros()
        .min(u64::MAX as u128) as u64
}

/// The dot-joined span path of the calling thread.
fn span_path() -> String {
    SPAN_STACK.with(|stack| stack.borrow().join("."))
}

/// Deliver an event to the sink behind the panic barrier: a sink that
/// panics is dropped and tracing is disabled, so instrumented code never
/// observes the unwind.
fn deliver(event: Event) {
    let mut guard = match SINK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let Some(sink) = guard.as_mut() else { return };
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sink.emit(&event)));
    if outcome.is_err() {
        *guard = None;
        TRACE_ON.store(false, Ordering::SeqCst);
    }
}

/// Emit an event of the given kind with explicit fields. No-op (single
/// atomic load) when tracing is off — but prefer checking [`enabled`]
/// at the call site so field construction is skipped too.
pub fn emit(kind: &'static str, fields: Vec<(&'static str, FieldValue)>) {
    if !enabled() {
        return;
    }
    deliver(Event {
        ts_rel_us: now_rel_us(),
        span: span_path(),
        kind,
        fields,
    });
}

/// Emit a named `counter` event (monotonic count observations).
pub fn counter(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    emit(
        "counter",
        vec![
            ("name", FieldValue::Str(name.to_string())),
            ("value", FieldValue::U64(value)),
        ],
    );
}

/// Emit a named `gauge` event (point-in-time measurement).
pub fn gauge(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    emit(
        "gauge",
        vec![
            ("name", FieldValue::Str(name.to_string())),
            ("value", FieldValue::F64(value)),
        ],
    );
}

/// RAII guard for a span: entering pushes onto the thread's span stack
/// and emits `span_start`; dropping emits `span_end` with `dur_us` and
/// pops. When tracing is off the guard is inert and allocation-free.
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; binding to _ drops it immediately"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    name: &'static str,
    start: Instant,
    fields: Vec<(&'static str, FieldValue)>,
}

impl SpanGuard {
    /// An inert guard (tracing off).
    #[inline]
    pub fn inert() -> SpanGuard {
        SpanGuard { active: None }
    }

    /// Open a span: push the name, emit `span_start` with `fields`.
    /// Callers normally go through [`span`] or [`obs_span!`], which
    /// check [`enabled`] first.
    pub fn enter(name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> SpanGuard {
        SPAN_STACK.with(|stack| stack.borrow_mut().push(name));
        deliver(Event {
            ts_rel_us: now_rel_us(),
            span: span_path(),
            kind: "span_start",
            fields: fields.clone(),
        });
        SpanGuard {
            active: Some(ActiveSpan {
                name,
                start: Instant::now(),
                fields,
            }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let dur_us = active.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let mut fields = active.fields;
        fields.push(("dur_us", FieldValue::U64(dur_us)));
        deliver(Event {
            ts_rel_us: now_rel_us(),
            span: span_path(),
            kind: "span_end",
            fields,
        });
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // RAII keeps this LIFO; the name check is defense against a
            // guard leaked across threads.
            if stack.last() == Some(&active.name) {
                stack.pop();
            }
        });
    }
}

/// Open a plain span (no fields). Inert and allocation-free when
/// tracing is off.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inert();
    }
    SpanGuard::enter(name, Vec::new())
}

/// Open a span with fields: `obs_span!("train.epoch", "epoch" => e)`.
/// Fields are only evaluated when tracing is enabled.
#[macro_export]
macro_rules! obs_span {
    ($name:expr $(, $key:literal => $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::SpanGuard::enter(
                $name,
                vec![$(($key, $crate::FieldValue::from($value))),*],
            )
        } else {
            $crate::SpanGuard::inert()
        }
    };
}

/// Emit a named `event` with fields:
/// `obs_event!("checkpoint", "epoch" => e, "loss" => l)`.
/// Fields are only evaluated when tracing is enabled.
#[macro_export]
macro_rules! obs_event {
    ($name:literal $(, $key:literal => $value:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::emit(
                "event",
                vec![
                    ("name", $crate::FieldValue::from($name)),
                    $(($key, $crate::FieldValue::from($value))),*
                ],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink is process-global; unit tests here share one mutex so
    // they do not fight over it (the integration suite runs in its own
    // process).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_capture(f: impl FnOnce()) -> Vec<Event> {
        let _guard = match TEST_LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let (sink, buffer) = CaptureSink::new();
        set_sink(Some(Box::new(sink)));
        f();
        set_sink(None);
        let events = match buffer.lock() {
            Ok(b) => b.clone(),
            Err(p) => p.into_inner().clone(),
        };
        events
    }

    #[test]
    fn disabled_by_default_and_emits_nothing() {
        let _guard = match TEST_LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        set_sink(None);
        assert!(!enabled());
        // None of these may panic or emit with no sink installed.
        counter("x", 1);
        gauge("y", 2.0);
        let _span = span("dead");
        drop(_span);
    }

    #[test]
    fn spans_nest_and_time() {
        let events = with_capture(|| {
            let _outer = obs_span!("outer", "n" => 3usize);
            {
                let _inner = span("inner");
                counter("ticks", 7);
            }
        });
        let kinds: Vec<_> = events.iter().map(|e| (e.kind, e.span.clone())).collect();
        assert_eq!(
            kinds,
            vec![
                ("span_start", "outer".to_string()),
                ("span_start", "outer.inner".to_string()),
                ("counter", "outer.inner".to_string()),
                ("span_end", "outer.inner".to_string()),
                ("span_end", "outer".to_string()),
            ]
        );
        // span_end carries dur_us; the outer span also keeps its fields.
        let outer_end = &events[4];
        assert!(outer_end.fields.iter().any(|(k, _)| *k == "dur_us"));
        assert!(outer_end
            .fields
            .iter()
            .any(|(k, v)| *k == "n" && *v == FieldValue::U64(3)));
    }

    #[test]
    fn json_lines_parse_with_required_keys() {
        let events = with_capture(|| {
            let _span = obs_span!("demo", "label" => "a \"b\"");
            gauge("loss", 0.125);
        });
        assert!(!events.is_empty());
        for e in &events {
            let parsed = json::parse(&e.to_json_line()).expect("valid json");
            for key in ["ts_rel_us", "span", "kind", "fields"] {
                assert!(parsed.get(key).is_some(), "missing {key}: {parsed:?}");
            }
        }
    }

    #[test]
    fn panicking_sink_is_contained_and_disables_tracing() {
        struct Bomb;
        impl Sink for Bomb {
            fn emit(&mut self, _event: &Event) {
                panic!("sink exploded");
            }
        }
        let _guard = match TEST_LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        set_sink(Some(Box::new(Bomb)));
        assert!(enabled());
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        counter("boom", 1); // must not unwind out of here
        std::panic::set_hook(prev_hook);
        assert!(!enabled(), "a panicking sink must disable tracing");
        set_sink(None);
    }

    #[test]
    fn init_from_env_rejects_garbage() {
        // Uses the documented error path without mutating the
        // environment: an unrecognized value string.
        assert!(init_from_env().is_ok() || std::env::var("ETSB_TRACE").is_ok());
    }
}
