//! In-process metrics aggregation: a registry of named instruments —
//! monotonic counters, gauges, and fixed-boundary log-scale histograms —
//! with deterministic snapshots.
//!
//! The trace layer ([`crate::emit`]) streams raw events out of the
//! process; this module *aggregates* in-process so the serving tier can
//! answer "what is p99 detect latency right now?" without replaying a
//! JSONL file. Design constraints, in order:
//!
//! * **Lock-cheap recording.** Instruments are plain atomics; recording
//!   a value is a handful of relaxed `fetch_add`s with no lock. The
//!   registry's mutex is only taken on instrument lookup (done once,
//!   callers cache the returned [`Arc`]) and on [`Registry::snapshot`].
//! * **Deterministic snapshots.** Histogram bucket boundaries are fixed
//!   at construction, sums are exact integer nanoseconds (`u64`, so
//!   accumulation order cannot perturb a bit), and per-shard
//!   [`LocalHistogram`]s merge in fixed shard order — for a given event
//!   stream, two runs produce byte-identical snapshots and byte-identical
//!   Prometheus renderings (`crate::expo`).
//! * **Results stay untouched.** Like tracing, metrics never feed back
//!   into computation: no RNG, no floats flowing into model math.
//!   Whether the registry is enabled ([`metrics_enabled`], `ETSB_METRICS`)
//!   must never change a bit of model output; `tests/determinism.rs`
//!   asserts this.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default latency bucket upper bounds in nanoseconds: a 1-2-5
/// log-scale ladder from 1µs to 50s. Values above the last bound land
/// in the overflow bucket (`+Inf` in the Prometheus rendering).
pub const LATENCY_BOUNDS_NS: [u64; 24] = [
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
    20_000_000_000,
    50_000_000_000,
];

/// Bucket upper bounds for small cardinalities (batch occupancy, queue
/// depth): powers of two from 1 to 65536.
pub const COUNT_BOUNDS: [u64; 17] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536,
];

/// Whether global-registry instrumentation points are live. Mirrors the
/// tracing flag: a single relaxed load when off.
static METRICS_ON: AtomicBool = AtomicBool::new(false);

/// The process-wide registry (see [`global`]).
static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// Whether instrumentation points that record into the [`global`]
/// registry should do so. One relaxed atomic load — the entire cost of
/// an instrumentation point when metrics are off.
#[inline(always)]
pub fn metrics_enabled() -> bool {
    METRICS_ON.load(Ordering::Relaxed)
}

/// Enable or disable global-registry instrumentation points.
/// Already-recorded values are retained either way.
pub fn set_metrics_enabled(on: bool) {
    METRICS_ON.store(on, Ordering::SeqCst);
}

/// Configure the metrics flag from `ETSB_METRICS`: unset, empty, `off`
/// or `0` disables; `on` or `1` enables. Returns the active mode, or an
/// error for an unrecognized value.
pub fn init_from_env() -> Result<&'static str, String> {
    match std::env::var("ETSB_METRICS") {
        Err(_) => {
            set_metrics_enabled(false);
            Ok("off")
        }
        Ok(raw) => match raw.trim() {
            "" | "off" | "0" => {
                set_metrics_enabled(false);
                Ok("off")
            }
            "on" | "1" => {
                set_metrics_enabled(true);
                Ok("on")
            }
            other => Err(format!(
                "ETSB_METRICS: unrecognized value {other:?} (expected off|on)"
            )),
        },
    }
}

/// The process-wide registry. Instruments registered here are exposed
/// by `etsb serve`'s `GET /metrics` and read by `serve_bench`.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Record an externally maintained cumulative total (e.g. cache hit
    /// counts owned by `PredictCache`). Implemented as `fetch_max`, so
    /// out-of-order observations of a monotonic source can never make
    /// the exposed value go backwards — scrapes stay `rate()`-able.
    #[inline]
    pub fn record_cumulative(&self, total: u64) {
        self.value.fetch_max(total, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time measurement (f64 bits in an atomic).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A gauge at 0.0.
    pub fn new() -> Gauge {
        Gauge {
            bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-boundary histogram. Bucket `i` counts observations `v <=
/// bounds[i]` (and greater than the previous bound); one overflow bucket
/// holds everything above the last bound. The sum is exact integer units
/// (nanoseconds for latency histograms), so accumulation order cannot
/// change a bit of any snapshot.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// A histogram over the given ascending bucket upper bounds.
    pub fn with_bounds(bounds: &[u64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: bounds.to_vec(),
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// A latency histogram over [`LATENCY_BOUNDS_NS`].
    pub fn latency() -> Histogram {
        Histogram::with_bounds(&LATENCY_BOUNDS_NS)
    }

    /// The bucket upper bounds (excludes the implicit overflow bucket).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a latency observation in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.record(ns);
    }

    /// Merge a per-shard [`LocalHistogram`] into this one. Callers must
    /// merge shards in fixed shard-index order so snapshots are
    /// deterministic for a given event stream (all accumulators are
    /// integers, so the merged *totals* are order-independent; fixed
    /// order additionally makes any interleaved snapshot deterministic).
    pub fn merge_local(&self, local: &LocalHistogram) {
        assert_eq!(
            self.bounds, local.bounds,
            "cannot merge histograms with different bounds"
        );
        for (bucket, &n) in self.buckets.iter().zip(&local.buckets) {
            if n > 0 {
                bucket.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(local.count, Ordering::Relaxed);
        self.sum.fetch_add(local.sum, Ordering::Relaxed);
        self.max.fetch_max(local.max, Ordering::Relaxed);
    }

    /// A consistent read of the histogram state. Concurrent recorders
    /// may be mid-update; for deterministic byte-identical snapshots,
    /// snapshot quiescent histograms (as the bench harness and the
    /// determinism suite do).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A plain (non-atomic) histogram for single-threaded accumulation in a
/// worker shard; merge into a shared [`Histogram`] with
/// [`Histogram::merge_local`] in shard-index order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalHistogram {
    bounds: Vec<u64>,
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl LocalHistogram {
    /// A local histogram over the given ascending bucket upper bounds.
    pub fn with_bounds(bounds: &[u64]) -> LocalHistogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        LocalHistogram {
            bounds: bounds.to_vec(),
            buckets: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// A local latency histogram over [`LATENCY_BOUNDS_NS`].
    pub fn latency() -> LocalHistogram {
        LocalHistogram::with_bounds(&LATENCY_BOUNDS_NS)
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// An immutable copy of a histogram's state with quantile queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (ascending; excludes the overflow bucket).
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts; `buckets.len() == bounds.len() + 1`
    /// (the last entry is the overflow bucket).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Exact sum of all observations (integer units).
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
}

impl HistogramSnapshot {
    /// The quantile estimate for `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the rank-`ceil(q·count)` observation, clamped
    /// to the exact observed maximum (so `quantile(1.0) == max` and
    /// estimates never exceed any real observation's bucket). Zero when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let le = self.bounds.get(i).copied().unwrap_or(self.max);
                return le.min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Exact mean (`sum / count`); zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The observations recorded since `earlier` (per-bucket saturating
    /// difference). `max` is the lifetime maximum, not the interval
    /// maximum — a histogram cannot recover the latter.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        assert_eq!(
            self.bounds, earlier.bounds,
            "cannot diff snapshots with different bounds"
        );
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }
}

/// One snapshotted instrument value.
#[derive(Clone, Debug, PartialEq)]
pub enum InstrumentSnapshot {
    /// Counter total.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// A deterministic (name-sorted) copy of every instrument in a registry.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct RegistrySnapshot {
    /// `(name, value)` pairs in ascending name order.
    pub entries: Vec<(String, InstrumentSnapshot)>,
}

impl RegistrySnapshot {
    /// Look up one instrument by name.
    pub fn get(&self, name: &str) -> Option<&InstrumentSnapshot> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// The counter with this name, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(InstrumentSnapshot::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram with this name, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name) {
            Some(InstrumentSnapshot::Histogram(h)) => Some(h),
            _ => None,
        }
    }
}

#[derive(Debug)]
enum Entry {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of instruments. Lookup takes the registry mutex;
/// recording through the returned [`Arc`] handles is lock-free, so
/// callers resolve instruments once and cache the handle.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Entry>> {
        match self.entries.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Get or create the counter with this name. If the name is already
    /// taken by a different instrument kind, a detached counter is
    /// returned (recordings into it are not exposed) rather than
    /// panicking inside instrumented code.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut entries = self.lock();
        match entries
            .entry(name.to_string())
            .or_insert_with(|| Entry::Counter(Arc::new(Counter::new())))
        {
            Entry::Counter(c) => Arc::clone(c),
            _ => Arc::new(Counter::new()),
        }
    }

    /// Get or create the gauge with this name (kind-mismatch behaves as
    /// in [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut entries = self.lock();
        match entries
            .entry(name.to_string())
            .or_insert_with(|| Entry::Gauge(Arc::new(Gauge::new())))
        {
            Entry::Gauge(g) => Arc::clone(g),
            _ => Arc::new(Gauge::new()),
        }
    }

    /// Get or create a latency histogram ([`LATENCY_BOUNDS_NS`]) with
    /// this name (kind-mismatch behaves as in [`Registry::counter`]).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with_bounds(name, &LATENCY_BOUNDS_NS)
    }

    /// Get or create a histogram with explicit bucket bounds. An
    /// existing histogram keeps its original bounds.
    pub fn histogram_with_bounds(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut entries = self.lock();
        match entries
            .entry(name.to_string())
            .or_insert_with(|| Entry::Histogram(Arc::new(Histogram::with_bounds(bounds))))
        {
            Entry::Histogram(h) => Arc::clone(h),
            _ => Arc::new(Histogram::with_bounds(bounds)),
        }
    }

    /// Snapshot every instrument in ascending name order. Two registries
    /// that saw the same event stream produce equal snapshots.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let entries = self.lock();
        RegistrySnapshot {
            entries: entries
                .iter()
                .map(|(name, entry)| {
                    let value = match entry {
                        Entry::Counter(c) => InstrumentSnapshot::Counter(c.value()),
                        Entry::Gauge(g) => InstrumentSnapshot::Gauge(g.value()),
                        Entry::Histogram(h) => InstrumentSnapshot::Histogram(h.snapshot()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic_under_cumulative_records() {
        let c = Counter::new();
        c.record_cumulative(10);
        c.record_cumulative(7); // stale observation must not regress
        assert_eq!(c.value(), 10);
        c.record_cumulative(12);
        assert_eq!(c.value(), 12);
    }

    #[test]
    fn gauge_round_trips_f64() {
        let g = Gauge::new();
        assert_eq!(g.value(), 0.0);
        g.set(0.1 + 0.2);
        assert_eq!(g.value(), 0.1 + 0.2);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::with_bounds(&[10, 100, 1000]);
        for v in [1, 5, 10, 50, 200, 5000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![3, 1, 1, 1]);
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 5266);
        assert_eq!(snap.max, 5000);
        assert_eq!(snap.p50(), 10);
        assert_eq!(snap.quantile(1.0), 5000);
        // Quantile estimates clamp to the observed max: with a single
        // observation of 7 in the ≤10 bucket, p99 is 7, not 10.
        let h1 = Histogram::with_bounds(&[10, 100]);
        h1.record(7);
        assert_eq!(h1.snapshot().p99(), 7);
    }

    #[test]
    fn local_merge_matches_direct_recording() {
        let direct = Histogram::latency();
        let merged = Histogram::latency();
        let mut shards = vec![LocalHistogram::latency(), LocalHistogram::latency()];
        for i in 0..100u64 {
            let v = i * 7919 + 13;
            direct.record(v);
            shards[(i % 2) as usize].record(v);
        }
        for shard in &shards {
            merged.merge_local(shard);
        }
        assert_eq!(direct.snapshot(), merged.snapshot());
    }

    #[test]
    fn snapshot_delta_isolates_an_interval() {
        let h = Histogram::with_bounds(&[10, 100]);
        h.record(5);
        let before = h.snapshot();
        h.record(50);
        h.record(7);
        let delta = h.snapshot().delta(&before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 57);
        assert_eq!(delta.buckets, vec![1, 1, 0]);
    }

    #[test]
    fn registry_returns_shared_handles_and_sorted_snapshots() {
        let r = Registry::new();
        r.counter("b_total").add(2);
        r.counter("b_total").add(3); // same instrument
        r.gauge("a_gauge").set(1.5);
        r.histogram_with_bounds("c_hist", &COUNT_BOUNDS).record(4);
        let snap = r.snapshot();
        let names: Vec<_> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a_gauge", "b_total", "c_hist"]);
        assert_eq!(snap.counter("b_total"), Some(5));
    }

    #[test]
    fn kind_mismatch_returns_detached_instrument() {
        let r = Registry::new();
        r.counter("x").inc();
        let g = r.gauge("x"); // wrong kind: detached, no panic
        g.set(9.0);
        assert_eq!(r.snapshot().counter("x"), Some(1));
    }

    #[test]
    fn env_init_parses_documented_values() {
        // Exercise the pure parsing arms without mutating the global
        // flag state observed by other tests: only the error arm.
        assert!(init_from_env().is_ok() || std::env::var("ETSB_METRICS").is_ok());
    }
}
