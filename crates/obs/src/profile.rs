//! Span profiler: folds `span_start`/`span_end` trace events into
//! per-span-name rollups — call count, total wall time, self-time
//! (total minus time spent in child spans), and per-parent attribution.
//!
//! Works both **online**, as a [`ProfileSink`] installed via
//! [`crate::set_sink`] (the `CaptureSink` pattern: the sink feeds a
//! shared [`SpanProfile`]), and **offline**, by replaying any
//! `ETSB_TRACE=jsonl:<path>` file (the `trace_profile` bin).
//!
//! Attribution uses the event's `span` path (the dot-joined stack of
//! open spans): the last segment is the span's own name, the
//! second-to-last its parent. Durations come from the `dur_us` field on
//! `span_end`, so only completed spans are counted. Self-time is
//! `total − Σ child totals`; a span name that appears under several
//! parents aggregates into one rollup, with the per-parent split kept
//! in the edge table.

use crate::json;
use crate::sink::Sink;
use crate::Event;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Parent name used for spans opened at the root of a thread's stack.
pub const ROOT: &str = "(root)";

/// Aggregate statistics for one span name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed calls.
    pub calls: u64,
    /// Total wall time across calls, microseconds.
    pub total_us: u64,
    /// Largest single call, microseconds.
    pub max_us: u64,
}

/// One row of the profiler report (see [`SpanProfile::rows`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileRow {
    /// Span name (last path segment).
    pub name: String,
    /// Completed calls.
    pub calls: u64,
    /// Total wall time, microseconds.
    pub total_us: u64,
    /// Self time: total minus child span totals, microseconds
    /// (saturating, so re-entrant spans cannot go negative).
    pub self_us: u64,
    /// Largest single call, microseconds.
    pub max_us: u64,
}

/// Folded view of a span event stream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanProfile {
    /// Per-span-name aggregates.
    spans: BTreeMap<String, SpanStats>,
    /// Per-(parent, child) aggregates; parent is [`ROOT`] at the top of
    /// a thread's stack.
    edges: BTreeMap<(String, String), SpanStats>,
    /// Events observed (any kind), for sanity reporting.
    events_seen: u64,
}

impl SpanProfile {
    /// An empty profile.
    pub fn new() -> SpanProfile {
        SpanProfile::default()
    }

    /// Fold one trace event. Only `span_end` events with a `dur_us`
    /// field contribute; everything else just bumps the event count.
    pub fn observe(&mut self, event: &Event) {
        self.events_seen += 1;
        if event.kind != "span_end" {
            return;
        }
        let dur_us = event.fields.iter().find_map(|(k, v)| match (k, v) {
            (&"dur_us", crate::FieldValue::U64(n)) => Some(*n),
            _ => None,
        });
        let Some(dur_us) = dur_us else { return };
        self.fold(&event.span, dur_us);
    }

    /// Fold one completed span given its dot-joined path and duration.
    fn fold(&mut self, path: &str, dur_us: u64) {
        let mut segments = path.rsplit('.');
        let Some(name) = segments.next().filter(|s| !s.is_empty()) else {
            return;
        };
        let parent = segments.next().filter(|s| !s.is_empty()).unwrap_or(ROOT);
        let stats = self.spans.entry(name.to_string()).or_default();
        stats.calls += 1;
        stats.total_us += dur_us;
        stats.max_us = stats.max_us.max(dur_us);
        let edge = self
            .edges
            .entry((parent.to_string(), name.to_string()))
            .or_default();
        edge.calls += 1;
        edge.total_us += dur_us;
        edge.max_us = edge.max_us.max(dur_us);
    }

    /// Fold every line of a JSONL trace file. Lines are the schema
    /// emitted by [`crate::sink::JsonlSink`]; non-span lines are
    /// counted and skipped, malformed JSON is an error (with its line
    /// number) so a truncated file cannot silently under-report.
    pub fn ingest_jsonl(&mut self, text: &str) -> Result<(), String> {
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let value = json::parse(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
            self.events_seen += 1;
            let kind = value.get("kind").and_then(json::Value::as_str);
            if kind != Some("span_end") {
                continue;
            }
            let Some(span) = value.get("span").and_then(json::Value::as_str) else {
                continue;
            };
            let dur_us = value
                .get("fields")
                .and_then(|f| f.get("dur_us"))
                .and_then(json::Value::as_f64);
            let Some(dur_us) = dur_us else { continue };
            if dur_us < 0.0 {
                return Err(format!("line {}: negative dur_us", idx + 1));
            }
            self.fold(span, dur_us as u64);
        }
        Ok(())
    }

    /// Build a profile from captured events.
    pub fn from_events(events: &[Event]) -> SpanProfile {
        let mut profile = SpanProfile::new();
        for event in events {
            profile.observe(event);
        }
        profile
    }

    /// Total events observed (any kind).
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Aggregate stats for one span name, if it completed at least once.
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        self.spans.get(name)
    }

    /// Report rows, sorted by descending self-time (ties broken by
    /// name, so output is deterministic).
    pub fn rows(&self) -> Vec<ProfileRow> {
        let mut child_totals: BTreeMap<&str, u64> = BTreeMap::new();
        for ((parent, _), stats) in &self.edges {
            if parent != ROOT {
                *child_totals.entry(parent.as_str()).or_default() += stats.total_us;
            }
        }
        let mut rows: Vec<ProfileRow> = self
            .spans
            .iter()
            .map(|(name, stats)| {
                let children = child_totals.get(name.as_str()).copied().unwrap_or(0);
                ProfileRow {
                    name: name.clone(),
                    calls: stats.calls,
                    total_us: stats.total_us,
                    self_us: stats.total_us.saturating_sub(children),
                    max_us: stats.max_us,
                }
            })
            .collect();
        rows.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.name.cmp(&b.name)));
        rows
    }

    /// Per-parent attribution for one span name: `(parent, stats)` in
    /// descending total-time order (ties by parent name).
    pub fn parents_of(&self, name: &str) -> Vec<(String, SpanStats)> {
        let mut out: Vec<(String, SpanStats)> = self
            .edges
            .iter()
            .filter(|((_, child), _)| child == name)
            .map(|((parent, _), stats)| (parent.clone(), stats.clone()))
            .collect();
        out.sort_by(|a, b| b.1.total_us.cmp(&a.1.total_us).then(a.0.cmp(&b.0)));
        out
    }

    /// Render the sorted self-time table. `top` limits the row count
    /// (0 = all rows).
    pub fn render_table(&self, top: usize) -> String {
        let rows = self.rows();
        let shown = if top == 0 {
            rows.len()
        } else {
            top.min(rows.len())
        };
        let total_self: u64 = rows.iter().map(|r| r.self_us).sum();
        let name_width = rows
            .iter()
            .take(shown)
            .map(|r| r.name.len())
            .chain(["span".len()])
            .max()
            .unwrap_or(4);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<name_width$}  {:>9}  {:>12}  {:>12}  {:>6}  {:>10}",
            "span", "calls", "self_ms", "total_ms", "self%", "max_ms"
        );
        for row in rows.iter().take(shown) {
            let pct = if total_self == 0 {
                0.0
            } else {
                100.0 * row.self_us as f64 / total_self as f64
            };
            let _ = writeln!(
                out,
                "{:<name_width$}  {:>9}  {:>12.3}  {:>12.3}  {:>6.1}  {:>10.3}",
                row.name,
                row.calls,
                row.self_us as f64 / 1000.0,
                row.total_us as f64 / 1000.0,
                pct,
                row.max_us as f64 / 1000.0,
            );
        }
        if shown < rows.len() {
            let _ = writeln!(out, "... {} more spans", rows.len() - shown);
        }
        out
    }
}

/// A [`Sink`] that folds events into a shared [`SpanProfile`] as they
/// are emitted (the in-memory `CaptureSink` pattern: keep the returned
/// handle, install the sink, read the profile after `set_sink(None)`).
#[derive(Debug)]
pub struct ProfileSink {
    profile: Arc<Mutex<SpanProfile>>,
}

impl ProfileSink {
    /// A sink plus the shared profile it populates.
    pub fn new() -> (ProfileSink, Arc<Mutex<SpanProfile>>) {
        let profile = Arc::new(Mutex::new(SpanProfile::new()));
        (
            ProfileSink {
                profile: Arc::clone(&profile),
            },
            profile,
        )
    }
}

impl Sink for ProfileSink {
    fn emit(&mut self, event: &Event) {
        let mut profile = match self.profile.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        profile.observe(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FieldValue;

    fn span_end(path: &str, dur_us: u64) -> Event {
        Event {
            ts_rel_us: 0,
            span: path.to_string(),
            kind: "span_end",
            fields: vec![("dur_us", FieldValue::U64(dur_us))],
        }
    }

    #[test]
    fn self_time_excludes_children() {
        let events = vec![
            span_end("train.epoch.forward", 30),
            span_end("train.epoch.backward", 50),
            span_end("train.epoch", 100),
            span_end("train", 120),
        ];
        let profile = SpanProfile::from_events(&events);
        let rows = profile.rows();
        let by_name = |n: &str| rows.iter().find(|r| r.name == n).cloned();
        let epoch = by_name("epoch").expect("epoch row");
        assert_eq!(epoch.total_us, 100);
        assert_eq!(epoch.self_us, 20); // 100 - (30 + 50)
        let train = by_name("train").expect("train row");
        assert_eq!(train.self_us, 20); // 120 - 100
        let backward = by_name("backward").expect("backward row");
        assert_eq!(backward.self_us, 50);
        // Sorted by descending self-time, name-tiebreak: backward(50),
        // forward(30), then epoch/train tied at 20 in name order.
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["backward", "forward", "epoch", "train"]);
    }

    #[test]
    fn per_parent_attribution_splits_shared_names() {
        let events = vec![
            span_end("train.matmul", 10),
            span_end("eval.matmul", 5),
            span_end("eval.matmul", 5),
        ];
        let profile = SpanProfile::from_events(&events);
        let matmul = profile.span("matmul").expect("matmul stats");
        assert_eq!(matmul.calls, 3);
        assert_eq!(matmul.total_us, 20);
        let parents = profile.parents_of("matmul");
        assert_eq!(parents.len(), 2);
        assert_eq!(parents[0].0, "eval");
        assert_eq!(parents[0].1.total_us, 10);
        assert_eq!(parents[1].0, "train");
        assert_eq!(parents[1].1.calls, 1);
    }

    #[test]
    fn root_spans_attribute_to_root() {
        let profile = SpanProfile::from_events(&[span_end("solo", 42)]);
        let parents = profile.parents_of("solo");
        assert_eq!(parents.len(), 1);
        assert_eq!(parents[0].0, ROOT);
    }

    #[test]
    fn jsonl_ingestion_matches_event_folding() {
        let events = vec![
            span_end("a.b", 10),
            span_end("a", 25),
            Event {
                ts_rel_us: 1,
                span: "a".to_string(),
                kind: "counter",
                fields: vec![("name", FieldValue::Str("x".into()))],
            },
        ];
        let text: String = events.iter().map(|e| e.to_json_line() + "\n").collect();
        let mut from_jsonl = SpanProfile::new();
        from_jsonl.ingest_jsonl(&text).expect("valid trace");
        let direct = SpanProfile::from_events(&events);
        assert_eq!(from_jsonl, direct);
        assert_eq!(from_jsonl.events_seen(), 3);
    }

    #[test]
    fn jsonl_ingestion_rejects_malformed_lines() {
        let mut profile = SpanProfile::new();
        let err = profile.ingest_jsonl("{\"kind\":\n").expect_err("bad json");
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn profile_sink_folds_live_spans() {
        let (sink, profile) = ProfileSink::new();
        let mut sink = sink;
        sink.emit(&span_end("live.child", 3));
        sink.emit(&span_end("live", 9));
        let profile = profile.lock().expect("profile lock");
        assert_eq!(profile.span("live").map(|s| s.total_us), Some(9));
        assert_eq!(
            profile
                .rows()
                .iter()
                .find(|r| r.name == "live")
                .map(|r| r.self_us),
            Some(6)
        );
    }

    #[test]
    fn table_renders_sorted_rows() {
        let profile = SpanProfile::from_events(&[span_end("big", 9000), span_end("small", 1000)]);
        let table = profile.render_table(0);
        let big_line = table.lines().nth(1).expect("first data row");
        assert!(big_line.starts_with("big"), "{table}");
        assert!(big_line.contains("90.0"), "self%% column: {table}");
        let limited = profile.render_table(1);
        assert!(limited.contains("1 more spans"), "{limited}");
    }
}
