//! End-to-end schema check: events written through a real [`JsonlSink`]
//! file must parse back line-by-line with the documented four-key shape.
//!
//! Kept to a single `#[test]` because the sink is process-global.

use etsb_obs::{json, obs_event, obs_span, set_sink, JsonlSink};

#[test]
fn jsonl_sink_round_trips_the_event_schema() {
    let path = std::env::temp_dir().join("etsb_obs_roundtrip.jsonl");
    let path = path.to_str().expect("utf-8 temp path");
    let sink = JsonlSink::create(path).expect("temp trace file");
    set_sink(Some(Box::new(sink)));

    {
        let _outer = obs_span!("outer", "items" => 5usize, "label" => "a \"quoted\" name");
        etsb_obs::counter("ticks", 3);
        {
            let _inner = obs_span!("inner");
            etsb_obs::gauge("loss", 0.25);
        }
        obs_event!("checkpoint", "epoch" => 2usize, "loss" => 0.5f64);
    }
    set_sink(None);

    let text = std::fs::read_to_string(path).expect("trace file readable");
    std::fs::remove_file(path).ok();
    let lines: Vec<&str> = text.lines().collect();
    // span_start/end x2, counter, gauge, event.
    assert_eq!(lines.len(), 7, "unexpected trace: {text}");

    let kinds = ["span_start", "span_end", "counter", "gauge", "event"];
    let mut last_ts = 0.0;
    for line in &lines {
        let parsed = json::parse(line).expect("every trace line is valid JSON");
        for key in ["ts_rel_us", "span", "kind", "fields"] {
            assert!(parsed.get(key).is_some(), "missing {key} in {line}");
        }
        let kind = parsed.get("kind").and_then(json::Value::as_str).unwrap();
        assert!(kinds.contains(&kind), "unknown kind {kind}");
        let ts = parsed
            .get("ts_rel_us")
            .and_then(json::Value::as_f64)
            .unwrap();
        assert!(ts >= last_ts, "timestamps must be non-decreasing");
        last_ts = ts;
        if kind == "span_end" {
            assert!(
                parsed.get("fields").and_then(|f| f.get("dur_us")).is_some(),
                "span_end without dur_us: {line}"
            );
        }
    }

    // Nesting is visible in the span paths: the inner gauge is attributed
    // to `outer.inner`, the trailing event back to `outer`.
    let span_of = |i: usize| {
        json::parse(lines[i])
            .unwrap()
            .get("span")
            .and_then(json::Value::as_str)
            .unwrap()
            .to_string()
    };
    assert_eq!(span_of(0), "outer");
    assert_eq!(span_of(2), "outer.inner");
    assert_eq!(span_of(3), "outer.inner");
    assert_eq!(span_of(6), "outer");
}
