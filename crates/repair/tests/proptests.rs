//! Property-based tests for the repair layer.

use etsb_repair::{bounded_levenshtein, dominant_shape, levenshtein};
use proptest::prelude::*;

fn word() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9 .,%&]{0,14}").expect("valid regex")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn levenshtein_is_a_metric(a in word(), b in word(), c in word()) {
        // Identity of indiscernibles.
        prop_assert_eq!(levenshtein(&a, &a), 0);
        let dab = levenshtein(&a, &b);
        prop_assert_eq!(dab == 0, a == b);
        // Symmetry.
        prop_assert_eq!(dab, levenshtein(&b, &a));
        // Triangle inequality.
        prop_assert!(levenshtein(&a, &c) <= dab + levenshtein(&b, &c));
    }

    #[test]
    fn levenshtein_bounded_by_lengths(a in word(), b in word()) {
        let d = levenshtein(&a, &b);
        let (la, lb) = (a.chars().count(), b.chars().count());
        prop_assert!(d >= la.abs_diff(lb));
        prop_assert!(d <= la.max(lb));
    }

    #[test]
    fn bounded_matches_full(a in word(), b in word(), bound in 0usize..6) {
        let full = levenshtein(&a, &b);
        match bounded_levenshtein(&a, &b, bound) {
            Some(d) => {
                prop_assert_eq!(d, full);
                prop_assert!(d <= bound);
            }
            None => prop_assert!(full > bound),
        }
    }

    #[test]
    fn single_edit_has_distance_one(a in proptest::string::string_regex("[a-z]{2,10}").expect("regex"), pos in 0usize..10) {
        let chars: Vec<char> = a.chars().collect();
        let pos = pos % chars.len();
        let mut edited = chars.clone();
        edited[pos] = if edited[pos] == 'x' { 'y' } else { 'x' };
        let edited: String = edited.into_iter().collect();
        if edited != a {
            prop_assert_eq!(levenshtein(&a, &edited), 1);
        }
    }

    #[test]
    fn normalization_output_matches_target_shape(v in word(), target in word()) {
        use etsb_repair::*;
        let target_shape = {
            // Use the shape of another random word as the target.
            dominant_shape(std::iter::once(target.as_str())).unwrap_or_default()
        };
        if let Some(fixed) = normalize_to_shape(&v, &target_shape) {
            // The contract: the result conforms to the requested shape
            // and differs from the input.
            prop_assert_ne!(&fixed, &v);
            prop_assert_eq!(
                dominant_shape(std::iter::once(fixed.as_str())).unwrap_or_default(),
                target_shape
            );
        }
    }

    #[test]
    fn dominant_shape_is_a_shape_of_some_input(values in proptest::collection::vec(word(), 1..10)) {
        let dom = dominant_shape(values.iter().map(String::as_str)).unwrap();
        let shapes: Vec<String> = values
            .iter()
            .map(|v| dominant_shape(std::iter::once(v.as_str())).unwrap())
            .collect();
        prop_assert!(shapes.contains(&dom));
    }
}
