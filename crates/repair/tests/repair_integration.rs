//! Detect → repair, end to end: the trained ETSB-RNN flags cells, the
//! repairer corrects them, and the table gets measurably cleaner — the
//! paper's conclusion ("the ultimate goal, however, is not only to detect
//! errors but also to correct them") realized.

use etsb_core::config::{ExperimentConfig, ModelKind, SamplerKind, TrainConfig};
use etsb_core::model::AnyModel;
use etsb_core::train::train_model;
use etsb_core::{sampling, EncodedDataset};
use etsb_datasets::{Dataset, GenConfig};
use etsb_repair::{evaluate, Repairer};
use etsb_table::CellFrame;
use etsb_tensor::init::seeded_rng;

/// Train a small detector and return a full-table prediction mask.
fn detect(frame: &CellFrame, data: &EncodedDataset, seed: u64) -> Vec<bool> {
    let cfg = ExperimentConfig {
        model: ModelKind::Tsb,
        sampler: SamplerKind::DiverSet,
        n_label_tuples: 20,
        train: TrainConfig {
            epochs: 25,
            rnn_units: 12,
            head_dim: 12,
            embed_dim: Some(16),
            learning_rate: 2e-3,
            eval_every: 25,
            curve_subsample: 100,
            ..Default::default()
        },
        seed,
    };
    let sample = sampling::diver_set(frame, cfg.n_label_tuples, seed);
    let (train_cells, test_cells) = data.split_by_tuples(&sample);
    let mut rng = seeded_rng(seed);
    let mut model = AnyModel::new(cfg.model, data, &cfg.train, &mut rng);
    let _ = train_model(
        &mut model,
        data,
        &train_cells,
        &test_cells,
        &cfg.train,
        seed,
    );
    let mut mask = vec![false; data.n_cells()];
    for (&cell, p) in test_cells.iter().zip(model.predict(data, &test_cells)) {
        mask[cell] = p;
    }
    for &cell in &train_cells {
        mask[cell] = data.labels[cell];
    }
    mask
}

#[test]
fn detect_and_repair_reduces_hospital_errors() {
    let pair = Dataset::Hospital
        .generate(&GenConfig {
            scale: 0.15,
            seed: 31,
        })
        .expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
    let data = EncodedDataset::from_frame(&frame);
    let mask = detect(&frame, &data, 7);

    let repairer = Repairer::fit(&frame, &mask);
    let proposals = repairer.propose_all(&frame, &mask);
    let eval = evaluate(&frame, &mask, &proposals);

    assert!(!proposals.is_empty(), "repairer should propose fixes");
    assert!(
        eval.errors_after < eval.errors_before,
        "repair should reduce errors: {} -> {}",
        eval.errors_before,
        eval.errors_after
    );
    // x-typos snap back to frequent clean values with high precision.
    assert!(
        eval.repair_precision > 0.5,
        "repair precision {:.2} (correct {} / proposed {})",
        eval.repair_precision,
        eval.correct,
        eval.proposed
    );
}

#[test]
fn ground_truth_mask_gives_high_repair_precision_on_beers() {
    // With a perfect detector, the repairer's own quality is isolated.
    let pair = Dataset::Beers
        .generate(&GenConfig {
            scale: 0.08,
            seed: 32,
        })
        .expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
    let mask: Vec<bool> = frame.cells().iter().map(|c| c.label).collect();

    let repairer = Repairer::fit(&frame, &mask);
    let proposals = repairer.propose_all(&frame, &mask);
    let eval = evaluate(&frame, &mask, &proposals);

    // Beers errors are dominated by invertible formatting (' oz', '%',
    // dropped decimals) plus FD-repairable state swaps.
    assert!(
        eval.proposed as f64 >= eval.flagged as f64 * 0.5,
        "repairer should attempt most flagged cells: {} of {}",
        eval.proposed,
        eval.flagged
    );
    assert!(
        eval.repair_precision > 0.6,
        "repair precision {:.2} on invertible formatting errors",
        eval.repair_precision
    );
    assert!(eval.errors_after < eval.errors_before / 2, "{eval:?}");
}

#[test]
fn repairer_never_touches_unflagged_cells() {
    let pair = Dataset::Rayyan
        .generate(&GenConfig {
            scale: 0.05,
            seed: 33,
        })
        .expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
    let mask: Vec<bool> = frame.cells().iter().map(|c| c.label).collect();
    let repairer = Repairer::fit(&frame, &mask);
    let proposals = repairer.propose_all(&frame, &mask);
    for p in &proposals {
        let idx = frame.cell_index(p.tuple_id, p.attr);
        assert!(mask[idx], "proposal for unflagged cell {p:?}");
    }
}
