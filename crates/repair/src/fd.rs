//! Functional-dependency repair: discover approximate FDs among the
//! cells the detector considers clean, then impute a flagged cell from
//! the majority value of its determining group (Baran-style context
//! repair; also HoloClean's most informative signal).

use etsb_table::CellFrame;
use std::collections::{BTreeMap, HashSet};

/// Discovered dependency `lhs → rhs` with its group majority table.
#[derive(Clone, Debug)]
struct Dependency {
    lhs: usize,
    rhs: usize,
    /// lhs value → majority rhs value.
    majority: BTreeMap<String, String>,
}

/// FD-based repairer, fit on the predicted-clean portion of a frame.
#[derive(Clone, Debug)]
pub struct FdRepairer {
    deps: Vec<Dependency>,
}

impl FdRepairer {
    /// Discover approximate FDs (`support` fraction of groups must agree)
    /// using only cells whose `error_mask` entry is `false`.
    pub fn fit(frame: &CellFrame, error_mask: &[bool], support: f64) -> Self {
        let n_attrs = frame.n_attrs();
        let n_tuples = frame.n_tuples();
        assert_eq!(
            error_mask.len(),
            frame.cells().len(),
            "FdRepairer::fit: mask length"
        );
        let mut deps = Vec::new();
        if n_tuples < 10 {
            return Self { deps };
        }
        for lhs in 0..n_attrs {
            // Key-like and constant columns carry no usable grouping.
            let distinct: HashSet<&str> = (0..n_tuples)
                .map(|t| frame.tuple(t)[lhs].value_x.as_str())
                .collect();
            if distinct.len() > n_tuples / 2 || distinct.len() < 2 {
                continue;
            }
            for rhs in 0..n_attrs {
                if lhs == rhs {
                    continue;
                }
                // Group over tuples where BOTH cells are predicted clean.
                // Ordered maps: the majority vote below must break count
                // ties on the same rhs value in every run.
                let mut groups: BTreeMap<&str, BTreeMap<&str, u32>> = BTreeMap::new();
                let mut used = 0usize;
                for t in 0..n_tuples {
                    if error_mask[frame.cell_index(t, lhs)] || error_mask[frame.cell_index(t, rhs)]
                    {
                        continue;
                    }
                    used += 1;
                    let l = frame.tuple(t)[lhs].value_x.as_str();
                    let r = frame.tuple(t)[rhs].value_x.as_str();
                    *groups.entry(l).or_default().entry(r).or_insert(0) += 1;
                }
                if used < 10 {
                    continue;
                }
                let agree: u64 = groups
                    .values()
                    .map(|c| u64::from(c.values().copied().max().unwrap_or(0)))
                    .sum();
                if (agree as f64) < support * used as f64 {
                    continue;
                }
                // Ties break toward the lexicographically largest rhs
                // value, deterministically, via the ordered map.
                let majority: BTreeMap<String, String> = groups
                    .into_iter()
                    .filter_map(|(l, counts)| {
                        counts
                            .into_iter()
                            .max_by_key(|&(_, c)| c)
                            .map(|(v, _)| (l.to_string(), v.to_string()))
                    })
                    .collect();
                deps.push(Dependency { lhs, rhs, majority });
            }
        }
        Self { deps }
    }

    /// Number of discovered dependencies.
    pub fn n_dependencies(&self) -> usize {
        self.deps.len()
    }

    /// Propose a repair for the cell `(tuple, attr)`: the majority value
    /// of any dependency group determining this attribute, provided the
    /// determining cell is itself clean.
    pub fn propose(
        &self,
        frame: &CellFrame,
        error_mask: &[bool],
        tuple: usize,
        attr: usize,
    ) -> Option<String> {
        for dep in self.deps.iter().filter(|d| d.rhs == attr) {
            if error_mask[frame.cell_index(tuple, dep.lhs)] {
                continue; // the determinant itself is suspect
            }
            let lhs_value = frame.tuple(tuple)[dep.lhs].value_x.as_str();
            if let Some(fix) = dep.majority.get(lhs_value) {
                if fix != &frame.tuple(tuple)[attr].value_x {
                    return Some(fix.clone());
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsb_table::Table;

    /// city → state FD with one corrupted state cell.
    fn setup() -> (CellFrame, Vec<bool>) {
        let mut dirty = Table::with_columns(&["city", "state"]);
        let mut clean = Table::with_columns(&["city", "state"]);
        for i in 0..30 {
            let (c, s) = if i % 2 == 0 {
                ("Rome", "IT")
            } else {
                ("Paris", "FR")
            };
            clean.push_row_strs(&[c, s]);
            if i == 4 {
                dirty.push_row_strs(&[c, "FR"]); // wrong state for Rome
            } else {
                dirty.push_row_strs(&[c, s]);
            }
        }
        let frame = CellFrame::merge(&dirty, &clean).unwrap();
        let mask: Vec<bool> = frame.cells().iter().map(|c| c.label).collect();
        (frame, mask)
    }

    #[test]
    fn discovers_city_state_fd() {
        let (frame, mask) = setup();
        let rep = FdRepairer::fit(&frame, &mask, 0.95);
        assert!(rep.n_dependencies() >= 1);
    }

    #[test]
    fn proposes_majority_value() {
        let (frame, mask) = setup();
        let rep = FdRepairer::fit(&frame, &mask, 0.95);
        let fix = rep.propose(&frame, &mask, 4, 1).expect("repair proposed");
        assert_eq!(fix, "IT");
    }

    #[test]
    fn no_proposal_when_determinant_is_dirty() {
        let (frame, mut mask) = setup();
        // Mark the determinant (city of tuple 4) as suspect too.
        let idx = frame.cell_index(4, 0);
        mask[idx] = true;
        let rep = FdRepairer::fit(&frame, &mask, 0.95);
        assert_eq!(rep.propose(&frame, &mask, 4, 1), None);
    }

    #[test]
    fn tiny_frames_yield_no_dependencies() {
        let mut t = Table::with_columns(&["a", "b"]);
        for i in 0..5 {
            t.push_row(vec![format!("{}", i % 2), "x".to_string()]);
        }
        let frame = CellFrame::merge(&t, &t).unwrap();
        let mask = vec![false; frame.cells().len()];
        assert_eq!(FdRepairer::fit(&frame, &mask, 0.95).n_dependencies(), 0);
    }
}
