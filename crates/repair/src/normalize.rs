//! Format normalization: learn the dominant character-class shape of a
//! column's clean cells and rewrite deviating values toward it.

use std::collections::BTreeMap;

/// Character-class shape with run collapsing: digits → `d`, letters →
/// `a`, whitespace → `_`, other characters verbatim.
pub fn shape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    let mut last: Option<char> = None;
    for ch in value.chars() {
        let class = if ch.is_ascii_digit() {
            'd'
        } else if ch.is_alphabetic() {
            'a'
        } else if ch.is_whitespace() {
            '_'
        } else {
            ch
        };
        if last == Some(class) {
            continue;
        }
        out.push(class);
        last = Some(class);
    }
    out
}

/// Most common shape among `values` (ties resolve lexicographically so
/// the result is deterministic). Returns `None` for an empty iterator.
pub fn dominant_shape<'a>(values: impl Iterator<Item = &'a str>) -> Option<String> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for v in values {
        *counts.entry(shape(v)).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by(|(sa, ca), (sb, cb)| ca.cmp(cb).then(sb.cmp(sa)))
        .map(|(s, _)| s)
}

/// Attempt to rewrite `value` so its shape matches `target`; returns
/// `None` when no rule applies. The rules invert the formatting
/// corruptions catalogued in the paper's §5.1 (ounces `'12.0 oz'`,
/// ABV `'0.061%'`, RatingCount `'379,998'`, RatingValue `'8.0'`,
/// `'Frankie & Johnny'`, ZIP `'1907'`).
pub fn normalize_to_shape(value: &str, target: &str) -> Option<String> {
    if shape(value) == target {
        return None; // already conformant
    }
    let candidates = [
        // Strip a trailing unit / annotation (after space or directly).
        value.split(' ').next().map(str::to_string),
        // Strip trailing non-alphanumeric marks ('0.061%', 'ARCHIE-*').
        Some(
            value
                .trim_end_matches(|c: char| !c.is_alphanumeric())
                .to_string(),
        ),
        // Remove thousands separators.
        Some(value.replace(',', "")),
        // Drop a spurious '.0' decimal.
        value.strip_suffix(".0").map(str::to_string),
        // '&' written for 'and'.
        Some(value.replace(" & ", " and ")),
        // 'and' written for '&'.
        Some(value.replace(" and ", " & ")),
        // Restore one leading zero (ZIP '1907' → '01907').
        Some(format!("0{value}")),
        // Drop one leading zero.
        value.strip_prefix('0').map(str::to_string),
        // Append a '.0' decimal ('45' → '45.0').
        Some(format!("{value}.0")),
    ];
    candidates
        .into_iter()
        .flatten()
        .find(|c| !c.is_empty() && c != value && shape(c) == target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        assert_eq!(shape("12.0 oz"), "d.d_a");
        assert_eq!(shape("379,998"), "d,d");
        assert_eq!(shape("Frankie & Johnny"), "a_&_a");
        assert_eq!(shape(""), "");
    }

    #[test]
    fn dominant_shape_majority() {
        let values = ["12.0", "16.0", "24.0", "12.0 oz"];
        assert_eq!(dominant_shape(values.into_iter()).unwrap(), "d.d");
        assert_eq!(dominant_shape(std::iter::empty()), None);
    }

    #[test]
    fn normalizes_paper_examples() {
        assert_eq!(normalize_to_shape("12.0 oz", "d.d").unwrap(), "12.0");
        assert_eq!(normalize_to_shape("0.061%", "d.d").unwrap(), "0.061");
        assert_eq!(normalize_to_shape("379,998", "d").unwrap(), "379998");
        assert_eq!(normalize_to_shape("8.0", "d").unwrap(), "8");
        assert_eq!(
            normalize_to_shape("Frankie & Johnny", "a_a_a").unwrap(),
            "Frankie and Johnny"
        );
        assert_eq!(
            normalize_to_shape("1907", "dd"), /* same collapsed shape */
            None
        );
        assert_eq!(normalize_to_shape("45", "d.d").unwrap(), "45.0");
    }

    #[test]
    fn conformant_values_untouched() {
        assert_eq!(normalize_to_shape("12.0", "d.d"), None);
    }

    #[test]
    fn no_rule_returns_none() {
        assert_eq!(normalize_to_shape("hello", "d"), None);
    }
}
