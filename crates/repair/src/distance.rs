//! Edit distance with an early-exit bound, used by the typo corrector.

/// Full Levenshtein distance between two strings (by chars).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            curr[j + 1] = sub.min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Levenshtein distance, returning `None` as soon as it provably exceeds
/// `bound` — O(len · bound) instead of O(len²), which is what makes
/// scanning a column's value vocabulary for near matches affordable.
pub fn bounded_levenshtein(a: &str, b: &str, bound: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) > bound {
        return None;
    }
    if a.is_empty() || b.is_empty() {
        let d = a.len().max(b.len());
        return (d <= bound).then_some(d);
    }
    const BIG: usize = usize::MAX / 2;
    let mut prev = vec![BIG; b.len() + 1];
    let mut curr = vec![BIG; b.len() + 1];
    for (j, p) in prev.iter_mut().enumerate().take(bound + 1) {
        *p = j;
    }
    for (i, &ca) in a.iter().enumerate() {
        // Band: only |i - j| <= bound can stay within the bound.
        let lo = (i + 1).saturating_sub(bound);
        let hi = (i + 1 + bound).min(b.len());
        curr.fill(BIG);
        if lo == 0 {
            curr[0] = i + 1;
        }
        let mut row_min = BIG;
        for j in lo.max(1)..=hi {
            let cb = b[j - 1];
            let sub = prev[j - 1] + usize::from(ca != cb);
            let val = sub.min(prev[j] + 1).min(curr[j - 1] + 1);
            curr[j] = val;
            row_min = row_min.min(val);
        }
        if lo == 0 {
            row_min = row_min.min(curr[0]);
        }
        if row_min > bound {
            return None;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let d = prev[b.len()];
    (d <= bound).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("Birmingxam", "Birmingham"), 1);
        assert_eq!(levenshtein("hexrt fxilure", "heart failure"), 2);
    }

    #[test]
    fn bounded_agrees_with_full_within_bound() {
        let pairs = [
            ("kitten", "sitting"),
            ("hexrt", "heart"),
            ("", ""),
            ("abc", ""),
            ("flaw", "lawn"),
            ("12.0 oz", "12.0"),
        ];
        for (a, b) in pairs {
            let full = levenshtein(a, b);
            for bound in 0..6 {
                let got = bounded_levenshtein(a, b, bound);
                if full <= bound {
                    assert_eq!(got, Some(full), "{a:?} vs {b:?} bound {bound}");
                } else {
                    assert_eq!(got, None, "{a:?} vs {b:?} bound {bound}");
                }
            }
        }
    }

    #[test]
    fn bounded_exits_on_length_gap() {
        assert_eq!(bounded_levenshtein("ab", "abcdefgh", 2), None);
    }

    #[test]
    fn unicode_counts_chars_not_bytes() {
        assert_eq!(levenshtein("Zürich", "Zurich"), 1);
        assert_eq!(bounded_levenshtein("Zürich", "Zurich", 1), Some(1));
    }
}
