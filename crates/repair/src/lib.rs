//! # etsb-repair
//!
//! Error *correction* on top of error *detection* — the direction the
//! ETSB-RNN paper's conclusion names as the ultimate goal ("to integrate
//! our approach with the data repair systems of HoloClean and Baran").
//!
//! Given a dirty table and a per-cell error mask (from any detector in
//! this workspace — the ETSB-RNN model, the Raha baseline, or ground
//! truth), the [`Repairer`] proposes a correction for each flagged cell
//! using only information from the dirty data and the *unflagged* cells:
//!
//! 1. **Format normalization** ([`normalize`]) — learn the dominant
//!    surface shape of the column's clean cells and strip the deviation
//!    (unit suffixes like `12.0 oz`, percent signs, thousands separators,
//!    spurious `.0` decimals, `&`/`and` swaps, leading-zero width fixes),
//! 2. **Dependency repair** ([`fd`]) — discover approximate functional
//!    dependencies among clean cells and impute the majority value of
//!    the cell's determining group (Baran-style context repair),
//! 3. **Typo correction** ([`typo`]) — snap to the nearest frequent clean
//!    value of the column within small edit distance,
//! 4. **Imputation** — fall back to the column's majority clean value for
//!    missing values in low-cardinality columns.
//!
//! Every proposal carries the strategy that produced it, and
//! [`evaluate`] scores proposals against a ground-truth table (repair
//! accuracy, and cell correctness before vs after repair).

#![warn(missing_docs)]

mod distance;
mod fd;
mod normalize;
mod repairer;
mod typo;

pub use distance::{bounded_levenshtein, levenshtein};
pub use fd::FdRepairer;
pub use normalize::{dominant_shape, normalize_to_shape};
pub use repairer::{evaluate, Proposal, RepairEvaluation, RepairStrategy, Repairer};
pub use typo::TypoCorrector;
