//! Typo correction: snap a flagged value to the nearest *frequent, clean*
//! value of its column within a small edit distance.

use crate::distance::bounded_levenshtein;
use etsb_table::CellFrame;
use std::collections::BTreeMap;

/// Per-column vocabulary of frequent clean values.
#[derive(Clone, Debug)]
pub struct TypoCorrector {
    /// Per attribute: (value, frequency), sorted by descending frequency.
    vocab: Vec<Vec<(String, u32)>>,
    /// Maximum edit distance to snap across.
    pub max_distance: usize,
    /// Minimum occurrences for a value to be considered a correction
    /// target (singletons are likelier to be typos themselves).
    pub min_frequency: u32,
}

impl TypoCorrector {
    /// Build vocabularies from the predicted-clean cells.
    pub fn fit(frame: &CellFrame, error_mask: &[bool]) -> Self {
        assert_eq!(
            error_mask.len(),
            frame.cells().len(),
            "TypoCorrector::fit: mask length"
        );
        let mut counts: Vec<BTreeMap<&str, u32>> = vec![BTreeMap::new(); frame.n_attrs()];
        for (i, cell) in frame.cells().iter().enumerate() {
            if !error_mask[i] && !cell.value_x.is_empty() {
                *counts[cell.attr].entry(cell.value_x.as_str()).or_insert(0) += 1;
            }
        }
        let vocab = counts
            .into_iter()
            .map(|m| {
                let mut v: Vec<(String, u32)> =
                    m.into_iter().map(|(s, c)| (s.to_string(), c)).collect();
                v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                v
            })
            .collect();
        Self {
            vocab,
            max_distance: 2,
            min_frequency: 2,
        }
    }

    /// Nearest frequent clean value within `max_distance` edits; ties
    /// resolve to the more frequent value. Returns `None` when nothing
    /// qualifies or the best match is the value itself.
    pub fn propose(&self, attr: usize, value: &str) -> Option<String> {
        if value.is_empty() {
            return None;
        }
        let mut best: Option<(&str, usize, u32)> = None;
        for (candidate, freq) in &self.vocab[attr] {
            if *freq < self.min_frequency || candidate == value {
                continue;
            }
            if let Some(d) = bounded_levenshtein(value, candidate, self.max_distance) {
                if d == 0 {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((_, bd, bf)) => d < bd || (d == bd && *freq > bf),
                };
                if better {
                    best = Some((candidate, d, *freq));
                }
            }
        }
        best.map(|(c, _, _)| c.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsb_table::Table;

    fn frame_with_typos() -> (CellFrame, Vec<bool>) {
        let mut dirty = Table::with_columns(&["city"]);
        let mut clean = Table::with_columns(&["city"]);
        for i in 0..40 {
            let c = if i % 2 == 0 {
                "birmingham"
            } else {
                "montgomery"
            };
            clean.push_row_strs(&[c]);
            if i == 6 {
                dirty.push_row_strs(&["birmingxam"]);
            } else if i == 7 {
                dirty.push_row_strs(&["montgomxry"]);
            } else {
                dirty.push_row_strs(&[c]);
            }
        }
        let frame = CellFrame::merge(&dirty, &clean).unwrap();
        let mask: Vec<bool> = frame.cells().iter().map(|c| c.label).collect();
        (frame, mask)
    }

    #[test]
    fn corrects_paper_style_x_typos() {
        let (frame, mask) = frame_with_typos();
        let corrector = TypoCorrector::fit(&frame, &mask);
        assert_eq!(corrector.propose(0, "birmingxam").unwrap(), "birmingham");
        assert_eq!(corrector.propose(0, "montgomxry").unwrap(), "montgomery");
    }

    #[test]
    fn distant_values_are_not_snapped() {
        let (frame, mask) = frame_with_typos();
        let corrector = TypoCorrector::fit(&frame, &mask);
        assert_eq!(corrector.propose(0, "zzzzzzzzzz"), None);
    }

    #[test]
    fn flagged_cells_do_not_enter_the_vocabulary() {
        let (frame, mask) = frame_with_typos();
        let corrector = TypoCorrector::fit(&frame, &mask);
        // The typo'd values were masked out, so they cannot be targets.
        assert!(corrector.vocab[0].iter().all(|(v, _)| !v.contains('x')));
    }

    #[test]
    fn empty_value_yields_none() {
        let (frame, mask) = frame_with_typos();
        let corrector = TypoCorrector::fit(&frame, &mask);
        assert_eq!(corrector.propose(0, ""), None);
    }

    #[test]
    fn ties_prefer_frequent_values() {
        let mut dirty = Table::with_columns(&["v"]);
        for _ in 0..10 {
            dirty.push_row_strs(&["aaaa"]);
        }
        for _ in 0..2 {
            dirty.push_row_strs(&["aaab"]);
        }
        let frame = CellFrame::merge(&dirty, &dirty).unwrap();
        let mask = vec![false; frame.cells().len()];
        let corrector = TypoCorrector::fit(&frame, &mask);
        // "aaac" is distance 1 from both; the frequent one wins.
        assert_eq!(corrector.propose(0, "aaac").unwrap(), "aaaa");
    }
}
