//! The combined repairer and its evaluation harness.

use crate::fd::FdRepairer;
use crate::normalize::{dominant_shape, normalize_to_shape};
use crate::typo::TypoCorrector;
use etsb_table::{CellFrame, Table};
use serde::Serialize;
use std::collections::BTreeMap;

/// Which strategy produced a proposal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum RepairStrategy {
    /// Functional-dependency group majority.
    Dependency,
    /// Shape normalization rule.
    Format,
    /// Edit-distance snap to a frequent clean value.
    Typo,
    /// Column-majority imputation (missing values).
    Imputation,
}

/// One proposed correction.
#[derive(Clone, Debug, Serialize)]
pub struct Proposal {
    /// Tuple id of the repaired cell.
    pub tuple_id: usize,
    /// Attribute index of the repaired cell.
    pub attr: usize,
    /// The dirty value being replaced.
    pub old: String,
    /// The proposed correction.
    pub new: String,
    /// Strategy that produced it.
    pub strategy: RepairStrategy,
}

/// Repairs flagged cells using only dirty data + the error mask.
#[derive(Clone, Debug)]
pub struct Repairer {
    fd: FdRepairer,
    typo: TypoCorrector,
    /// Per-attribute dominant clean shape.
    shapes: Vec<Option<String>>,
    /// Per-attribute majority clean value (for imputation), when the
    /// column is low-cardinality.
    majority: Vec<Option<String>>,
}

impl Repairer {
    /// Fit all strategies on the predicted-clean cells.
    pub fn fit(frame: &CellFrame, error_mask: &[bool]) -> Self {
        assert_eq!(
            error_mask.len(),
            frame.cells().len(),
            "Repairer::fit: mask length"
        );
        let fd = FdRepairer::fit(frame, error_mask, 0.95);
        let typo = TypoCorrector::fit(frame, error_mask);
        let mut shapes = Vec::with_capacity(frame.n_attrs());
        let mut majority = Vec::with_capacity(frame.n_attrs());
        for attr in 0..frame.n_attrs() {
            let clean_values = || {
                (0..frame.n_tuples()).filter_map(move |t| {
                    let idx = frame.cell_index(t, attr);
                    (!error_mask[idx]).then(|| frame.cells()[idx].value_x.as_str())
                })
            };
            shapes.push(dominant_shape(clean_values().filter(|v| !v.is_empty())));
            // Majority imputation only for low-cardinality columns where
            // the mode is actually representative.
            let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
            let mut total = 0usize;
            for v in clean_values().filter(|v| !v.is_empty()) {
                *counts.entry(v).or_insert(0) += 1;
                total += 1;
            }
            // Ordered map: a count tie resolves to the lexicographically
            // largest value in every run, not whichever hashed last.
            let mode = counts.iter().max_by_key(|(_, c)| **c);
            majority.push(match mode {
                Some((v, c)) if total > 0 && *c * 2 > total => Some(v.to_string()),
                _ => None,
            });
        }
        Self {
            fd,
            typo,
            shapes,
            majority,
        }
    }

    /// Number of functional dependencies backing the repairer.
    pub fn n_dependencies(&self) -> usize {
        self.fd.n_dependencies()
    }

    /// Propose corrections for every flagged cell. Strategies are tried
    /// in reliability order: dependency → format → typo → imputation.
    pub fn propose_all(&self, frame: &CellFrame, error_mask: &[bool]) -> Vec<Proposal> {
        let mut proposals = Vec::new();
        for (idx, cell) in frame.cells().iter().enumerate() {
            if !error_mask[idx] {
                continue;
            }
            let missing = cell.value_x.is_empty() || cell.value_x.eq_ignore_ascii_case("nan");
            let fix = self
                .fd
                .propose(frame, error_mask, cell.tuple_id, cell.attr)
                .map(|new| (new, RepairStrategy::Dependency))
                .or_else(|| {
                    if missing {
                        return None; // format/typo rules need characters to work with
                    }
                    self.shapes[cell.attr]
                        .as_deref()
                        .and_then(|shape| normalize_to_shape(&cell.value_x, shape))
                        .map(|new| (new, RepairStrategy::Format))
                })
                .or_else(|| {
                    if missing {
                        return None;
                    }
                    self.typo
                        .propose(cell.attr, &cell.value_x)
                        .map(|new| (new, RepairStrategy::Typo))
                })
                .or_else(|| {
                    if missing {
                        self.majority[cell.attr]
                            .clone()
                            .map(|new| (new, RepairStrategy::Imputation))
                    } else {
                        None
                    }
                });
            if let Some((new, strategy)) = fix {
                proposals.push(Proposal {
                    tuple_id: cell.tuple_id,
                    attr: cell.attr,
                    old: cell.value_x.clone(),
                    new,
                    strategy,
                });
            }
        }
        proposals
    }

    /// Apply proposals to a copy of the dirty table.
    pub fn apply(&self, dirty: &Table, proposals: &[Proposal]) -> Table {
        let mut repaired = dirty.clone();
        for p in proposals {
            repaired.set_cell(p.tuple_id, p.attr, p.new.clone());
        }
        repaired
    }
}

/// Scoring of a repair run against ground truth.
#[derive(Clone, Debug, Serialize)]
pub struct RepairEvaluation {
    /// Cells the mask flagged.
    pub flagged: usize,
    /// Proposals made.
    pub proposed: usize,
    /// Proposals whose new value equals the ground truth.
    pub correct: usize,
    /// `correct / proposed` (1.0 when nothing was proposed).
    pub repair_precision: f64,
    /// Erroneous cells before repair.
    pub errors_before: usize,
    /// Erroneous cells after applying the proposals.
    pub errors_after: usize,
}

/// Evaluate proposals against the clean table. `frame` must be the merge
/// of the dirty table the proposals were computed on and the ground
/// truth.
pub fn evaluate(
    frame: &CellFrame,
    error_mask: &[bool],
    proposals: &[Proposal],
) -> RepairEvaluation {
    let flagged = error_mask.iter().filter(|&&m| m).count();
    let mut correct = 0usize;
    let mut fixed_cells = std::collections::HashSet::new();
    for p in proposals {
        let cell = &frame.cells()[frame.cell_index(p.tuple_id, p.attr)];
        if p.new == cell.value_y {
            correct += 1;
            fixed_cells.insert((p.tuple_id, p.attr));
        } else {
            // A wrong repair of a correct cell *introduces* an error; of a
            // dirty cell it merely fails to fix it.
            fixed_cells.remove(&(p.tuple_id, p.attr));
        }
    }
    let errors_before = frame.cells().iter().filter(|c| c.label).count();
    let mut errors_after = 0usize;
    let proposal_map: std::collections::HashMap<(usize, usize), &Proposal> = proposals
        .iter()
        .map(|p| ((p.tuple_id, p.attr), p))
        .collect();
    for cell in frame.cells() {
        let current = proposal_map
            .get(&(cell.tuple_id, cell.attr))
            .map(|p| p.new.as_str())
            .unwrap_or(cell.value_x.as_str());
        if current != cell.value_y {
            errors_after += 1;
        }
    }
    RepairEvaluation {
        flagged,
        proposed: proposals.len(),
        correct,
        repair_precision: if proposals.is_empty() {
            1.0
        } else {
            correct as f64 / proposals.len() as f64
        },
        errors_before,
        errors_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A table exercising all four strategies: FD violations, formatting,
    /// typos and missing values.
    fn setup() -> (Table, Table) {
        let mut dirty = Table::with_columns(&["city", "state", "ounces"]);
        let mut clean = Table::with_columns(&["city", "state", "ounces"]);
        for i in 0..60 {
            let (c, s) = if i % 2 == 0 {
                ("rome", "IT")
            } else {
                ("paris", "FR")
            };
            clean.push_row_strs(&[c, s, "12.0"]);
            match i {
                3 => dirty.push_row_strs(&[c, "IT", "12.0"]), // VAD: paris/IT
                8 => dirty.push_row_strs(&[c, s, "12.0 oz"]), // format
                11 => dirty.push_row_strs(&["parxs", s, "12.0"]), // typo
                14 => dirty.push_row_strs(&[c, "", "12.0"]),  // missing
                _ => dirty.push_row_strs(&[c, s, "12.0"]),
            }
        }
        (dirty, clean)
    }

    #[test]
    fn repairs_all_four_error_kinds_with_ground_truth_mask() {
        let (dirty, clean) = setup();
        let frame = CellFrame::merge(&dirty, &clean).unwrap();
        let mask: Vec<bool> = frame.cells().iter().map(|c| c.label).collect();
        let repairer = Repairer::fit(&frame, &mask);
        let proposals = repairer.propose_all(&frame, &mask);
        let eval = evaluate(&frame, &mask, &proposals);
        assert_eq!(eval.errors_before, 4);
        assert!(
            eval.correct >= 3,
            "expected most repairs correct: {eval:?}\nproposals: {proposals:#?}"
        );
        assert!(eval.errors_after < eval.errors_before, "{eval:?}");
    }

    /// Single-column tables cannot host FDs, isolating the per-value
    /// strategies (the combined `setup()` table routes almost everything
    /// through the dependency repairer, which is the intended priority).
    fn single_column_case(dirty_val: &str, clean_vals: &[&str]) -> (CellFrame, Vec<bool>) {
        let mut dirty = Table::with_columns(&["v"]);
        let mut clean = Table::with_columns(&["v"]);
        for i in 0..30 {
            let v = clean_vals[i % clean_vals.len()];
            clean.push_row_strs(&[v]);
            if i == 5 {
                dirty.push_row_strs(&[dirty_val]);
            } else {
                dirty.push_row_strs(&[v]);
            }
        }
        let frame = CellFrame::merge(&dirty, &clean).unwrap();
        let mask: Vec<bool> = frame.cells().iter().map(|c| c.label).collect();
        (frame, mask)
    }

    #[test]
    fn format_strategy_attributed() {
        let (frame, mask) = single_column_case("12.0 oz", &["12.0", "16.0", "24.0"]);
        let repairer = Repairer::fit(&frame, &mask);
        let proposals = repairer.propose_all(&frame, &mask);
        assert_eq!(proposals.len(), 1);
        assert_eq!(proposals[0].strategy, RepairStrategy::Format);
        assert_eq!(proposals[0].new, "12.0");
    }

    #[test]
    fn typo_strategy_attributed() {
        let (frame, mask) = single_column_case("parxs", &["paris", "london"]);
        let repairer = Repairer::fit(&frame, &mask);
        let proposals = repairer.propose_all(&frame, &mask);
        assert_eq!(proposals.len(), 1);
        assert_eq!(proposals[0].strategy, RepairStrategy::Typo);
        assert_eq!(proposals[0].new, "paris");
    }

    #[test]
    fn imputation_strategy_attributed() {
        let (frame, mask) = single_column_case("", &["yes", "yes", "yes", "no"]);
        let repairer = Repairer::fit(&frame, &mask);
        let proposals = repairer.propose_all(&frame, &mask);
        assert_eq!(proposals.len(), 1);
        assert_eq!(proposals[0].strategy, RepairStrategy::Imputation);
        assert_eq!(proposals[0].new, "yes");
    }

    #[test]
    fn dependency_strategy_takes_priority() {
        let (dirty, clean) = setup();
        let frame = CellFrame::merge(&dirty, &clean).unwrap();
        let mask: Vec<bool> = frame.cells().iter().map(|c| c.label).collect();
        let repairer = Repairer::fit(&frame, &mask);
        let proposals = repairer.propose_all(&frame, &mask);
        // The city/state table is saturated with dependencies, so the
        // highest-priority strategy handles every flagged cell.
        assert!(proposals
            .iter()
            .all(|p| p.strategy == RepairStrategy::Dependency));
    }

    #[test]
    fn apply_rewrites_only_proposed_cells() {
        let (dirty, clean) = setup();
        let frame = CellFrame::merge(&dirty, &clean).unwrap();
        let mask: Vec<bool> = frame.cells().iter().map(|c| c.label).collect();
        let repairer = Repairer::fit(&frame, &mask);
        let proposals = repairer.propose_all(&frame, &mask);
        let repaired = repairer.apply(&dirty, &proposals);
        assert_eq!(repaired.shape(), dirty.shape());
        let mut changed = 0;
        for r in 0..dirty.n_rows() {
            for c in 0..dirty.n_cols() {
                if repaired.cell(r, c) != dirty.cell(r, c) {
                    changed += 1;
                }
            }
        }
        assert_eq!(changed, proposals.len());
    }

    #[test]
    fn empty_mask_proposes_nothing() {
        let (dirty, clean) = setup();
        let frame = CellFrame::merge(&dirty, &clean).unwrap();
        let mask = vec![false; frame.cells().len()];
        let repairer = Repairer::fit(&frame, &mask);
        let proposals = repairer.propose_all(&frame, &mask);
        assert!(proposals.is_empty());
        let eval = evaluate(&frame, &mask, &proposals);
        assert_eq!(eval.repair_precision, 1.0);
    }
}
