//! `etsb` — command-line interface to the ETSB-RNN error-detection and
//! repair stack.
//!
//! ```text
//! etsb generate --dataset beers --scale 0.1 --dirty d.csv --clean c.csv
//! etsb stats    --dirty d.csv --clean c.csv
//! etsb detect   --dirty d.csv --clean c.csv [--model etsb] [--epochs 120] [--out preds.csv]
//! etsb repair   --dirty d.csv --clean c.csv [--out repaired.csv]
//! ```
//!
//! `--clean` provides the ground truth used to (a) simulate the user's
//! labelling of the 20 sampled tuples and (b) score the result — the same
//! protocol as the paper's experiments.

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    if let Err(e) = etsb_obs::init_from_env() {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }
    if let Err(e) = etsb_obs::registry::init_from_env() {
        eprintln!("error: {e}");
        return ExitCode::from(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "generate" => commands::generate(rest),
        "stats" => commands::stats(rest),
        "detect" => commands::detect(rest),
        "apply" => commands::apply(rest),
        "repair" => commands::repair(rest),
        "serve" => commands::serve(rest),
        "--help" | "-h" | "help" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", commands::USAGE)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}
