//! Subcommand implementations and flag parsing.

use etsb_core::config::{ExperimentConfig, ModelKind, SamplerKind, TrainConfig};
use etsb_core::model::AnyModel;
use etsb_core::persist::{load_detector, save_detector};
use etsb_core::train::train_model;
use etsb_core::{
    sampling, stream_predict, DatasetInfo, EncodedDataset, KernelPolicy, Metrics, PredictCache,
    RunManifest,
};
use etsb_datasets::{Dataset, GenConfig};
use etsb_obs::json::Value;
use etsb_repair::{evaluate, Repairer};
use etsb_serve::engine::DetectService;
use etsb_serve::ServeConfig;
use etsb_table::scan::{scan_stats, CsvSource, FrameScan};
use etsb_table::{csv, CellFrame, Table};
use etsb_tensor::init::seeded_rng;
use std::collections::{HashMap, HashSet};

/// Top-level usage text.
pub const USAGE: &str = "\
etsb — error detection in databases with bidirectional RNNs (EDBT 2022)

commands:
  generate  --dataset NAME [--scale F] [--seed N] --dirty FILE --clean FILE
            synthesize a benchmark dataset pair to CSV
  stats     --dirty FILE --clean FILE
            print Table-2 style statistics for a dataset pair
  detect    --dirty FILE --clean FILE [--model tsb|etsb] [--sampler random|raha|diverset]
            [--tuples N] [--epochs N] [--seed N] [--out FILE] [--save FILE]
            [--manifest FILE] [--fast-math] [--chunk-rows N]
            train the detector and report precision/recall/F1; --manifest
            writes a JSON provenance record of the invocation; --fast-math
            scores test cells with the SIMD inference kernels (training
            stays on the exact bitwise path); --chunk-rows N re-scans the
            pair from disk and streams --out emission in N-row chunks
            with O(chunk) memory, byte-identical to the in-memory writer
            (0 = in-memory); an --out path ending in .jsonl emits one
            JSON object per flagged cell instead of CSV
  apply     --model FILE --dirty FILE [--out FILE]
            apply a saved detector to new dirty data (no ground truth)
  repair    --dirty FILE --clean FILE [--epochs N] [--seed N] [--out FILE]
            detect, then repair flagged cells and report repair quality
  serve     --model FILE [--stdin] [--http ADDR] [--max-batch N]
            [--linger-ms N] [--queue-cells N] [--timeout-ms N] [--cache N]
            [--threshold F] [--fast-math]
            keep a saved detector resident and answer detection requests
            (newline-delimited JSON over stdin/stdout, or HTTP on ADDR);
            concurrent requests coalesce into shared batches with results
            bitwise identical to per-request inference; --fast-math scores
            with the SIMD kernels and stamps provenance.kernel_policy";

/// Parse `--key value` pairs; returns an error on dangling or unknown
/// flags (callers pass the set of known keys).
fn parse_flags(args: &[String], known: &[&str]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let key = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got {flag:?}"))?;
        if !known.contains(&key) {
            return Err(format!(
                "unknown flag --{key} (known: {})",
                known.join(", ")
            ));
        }
        let value = iter
            .next()
            .ok_or_else(|| format!("--{key} requires a value"))?;
        map.insert(key.to_string(), value.clone());
    }
    Ok(map)
}

fn required<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("--{key} is required"))
}

fn parse_or<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for --{key}: {v:?}")),
    }
}

fn load_pair(flags: &HashMap<String, String>) -> Result<(Table, Table, CellFrame), String> {
    let dirty = csv::read_file(required(flags, "dirty")?).map_err(|e| e.to_string())?;
    let clean = csv::read_file(required(flags, "clean")?).map_err(|e| e.to_string())?;
    let frame = CellFrame::merge(&dirty, &clean).map_err(|e| e.to_string())?;
    Ok((dirty, clean, frame))
}

/// `etsb generate`.
pub fn generate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["dataset", "scale", "seed", "dirty", "clean"])?;
    let name = required(&flags, "dataset")?;
    let dataset = Dataset::parse(name).ok_or_else(|| {
        format!(
            "unknown dataset {name:?} (expected one of {})",
            Dataset::ALL.map(|d| d.name().to_lowercase()).join(", ")
        )
    })?;
    let cfg = GenConfig {
        scale: parse_or(&flags, "scale", 1.0)?,
        seed: parse_or(&flags, "seed", 42u64)?,
    };
    let pair = dataset
        .generate(&cfg)
        .map_err(|e| format!("generating {dataset}: {e}"))?;
    csv::write_file(&pair.dirty, required(&flags, "dirty")?).map_err(|e| e.to_string())?;
    csv::write_file(&pair.clean, required(&flags, "clean")?).map_err(|e| e.to_string())?;
    println!(
        "generated {dataset}: {} rows x {} cols (scale {}, seed {})",
        pair.dirty.n_rows(),
        pair.dirty.n_cols(),
        cfg.scale,
        cfg.seed
    );
    Ok(())
}

/// `etsb stats`.
pub fn stats(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["dirty", "clean"])?;
    let (_, _, frame) = load_pair(&flags)?;
    let s = etsb_table::stats::DatasetStats::of(&frame);
    println!("{s}");
    println!(
        "value dictionary: {} characters; attribute dictionary: {} attributes",
        frame.distinct_chars(),
        frame.n_attrs()
    );
    Ok(())
}

/// Everything `run_detection` produces: the encoding, the full-table
/// prediction mask (ground truth on labelled tuples, model output
/// elsewhere), its metrics, the trained model, the resolved config and
/// the labelled tuple ids.
type Detection = (
    EncodedDataset,
    Vec<bool>,
    Metrics,
    AnyModel,
    ExperimentConfig,
    Vec<usize>,
);

/// Shared detection path; returns the frame, encoding, the full-table
/// prediction mask (ground truth on labelled tuples, model output
/// elsewhere) and the labelled tuple ids.
fn run_detection(
    frame: &CellFrame,
    flags: &HashMap<String, String>,
    policy: KernelPolicy,
) -> Result<Detection, String> {
    let model_kind = match flags.get("model").map(String::as_str) {
        None | Some("etsb") => ModelKind::Etsb,
        Some("tsb") => ModelKind::Tsb,
        Some(other) => return Err(format!("unknown model {other:?} (tsb|etsb)")),
    };
    let sampler = match flags.get("sampler").map(String::as_str) {
        None | Some("diverset") => SamplerKind::DiverSet,
        Some("random") => SamplerKind::Random,
        Some("raha") => SamplerKind::Raha,
        Some(other) => return Err(format!("unknown sampler {other:?} (random|raha|diverset)")),
    };
    let cfg = ExperimentConfig {
        model: model_kind,
        sampler,
        n_label_tuples: parse_or(flags, "tuples", 20usize)?,
        train: TrainConfig {
            epochs: parse_or(flags, "epochs", 120usize)?,
            eval_every: 20,
            ..Default::default()
        },
        seed: parse_or(flags, "seed", 42u64)?,
    };
    let data = EncodedDataset::from_frame(frame);
    let sample = sampling::select(cfg.sampler, frame, cfg.n_label_tuples, cfg.seed);
    eprintln!("labelling tuples {sample:?}");
    let (train_cells, test_cells) = data.split_by_tuples(&sample);
    let mut model = AnyModel::new(cfg.model, &data, &cfg.train, &mut seeded_rng(cfg.seed));
    eprintln!(
        "training {} for {} epochs ({} weights)...",
        cfg.model.name(),
        cfg.train.epochs,
        model.n_weights()
    );
    let history = train_model(
        &mut model,
        &data,
        &train_cells,
        &test_cells,
        &cfg.train,
        cfg.seed,
    );
    eprintln!("best epoch {}", history.best_epoch);

    let preds = model.predict_with(&data, &test_cells, policy);
    let labels = data.labels_of(&test_cells);
    let metrics = Metrics::from_predictions(&preds, &labels);

    let mut mask = vec![false; data.n_cells()];
    for (&cell, &p) in test_cells.iter().zip(&preds) {
        mask[cell] = p;
    }
    for &cell in &train_cells {
        mask[cell] = data.labels[cell];
    }
    Ok((data, mask, metrics, model, cfg, sample))
}

/// Output format of `--out`, chosen by extension (`.jsonl` → JSONL,
/// anything else → the legacy CSV layout).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EmitFormat {
    /// `tuple_id,attribute,value,flagged` CSV rows.
    Csv,
    /// One JSON object per flagged cell.
    Jsonl,
}

impl EmitFormat {
    fn of(path: &str) -> EmitFormat {
        if path.ends_with(".jsonl") {
            EmitFormat::Jsonl
        } else {
            EmitFormat::Csv
        }
    }

    fn header(self) -> &'static str {
        match self {
            EmitFormat::Csv => "tuple_id,attribute,value,flagged\n",
            EmitFormat::Jsonl => "",
        }
    }

    /// Append one flagged cell. Both the in-memory and the streaming
    /// writers go through here, so their output is identical by
    /// construction.
    fn push_line(self, out: &mut String, tuple_id: usize, attr: &str, value: &str) {
        match self {
            EmitFormat::Csv => {
                out.push_str(&format!("{tuple_id},{attr},{value:?},1\n"));
            }
            EmitFormat::Jsonl => {
                let line = Value::obj([
                    ("tuple_id".to_string(), Value::from(tuple_id)),
                    ("attribute".to_string(), Value::from(attr)),
                    ("value".to_string(), Value::from(value)),
                    ("flagged".to_string(), Value::from(true)),
                ]);
                out.push_str(&line.to_json());
                out.push('\n');
            }
        }
    }
}

/// Streaming `--out` writer: re-scan the dataset pair from disk and emit
/// flagged cells chunk-at-a-time through the trained model, so the
/// emission stage holds O(`chunk_rows` × attrs) cells resident instead
/// of the whole table. The mask semantics match the in-memory writer
/// exactly — ground truth on labelled tuples, model output elsewhere —
/// and the bytes written are identical for every chunk size.
fn stream_flagged(
    out_path: &str,
    flags: &HashMap<String, String>,
    model: &AnyModel,
    data: &EncodedDataset,
    train_tuples: &[usize],
    chunk_rows: usize,
    policy: KernelPolicy,
) -> Result<(), String> {
    use std::io::Write;
    let mut source = CsvSource::open(
        required(flags, "dirty")?,
        Some(std::path::Path::new(required(flags, "clean")?)),
    )
    .map_err(|e| e.to_string())?;
    // Pass 1: per-attribute maxima (the global length_norm denominators).
    // The character dictionary is the trained model's, not this pass's.
    let (stats, _) = scan_stats(&mut source).map_err(|e| e.to_string())?;
    let mut scan = FrameScan::new(source, stats.max_len, chunk_rows);
    let columns: Vec<String> = scan.columns().to_vec();
    let train: HashSet<usize> = train_tuples.iter().copied().collect();
    let format = EmitFormat::of(out_path);
    let file = std::fs::File::create(out_path).map_err(|e| e.to_string())?;
    let mut writer = std::io::BufWriter::new(file);
    writer
        .write_all(format.header().as_bytes())
        .map_err(|e| e.to_string())?;
    // Dedups repeated values across chunk boundaries; bitwise neutral.
    let mut cache = PredictCache::new(1 << 14);
    let mut line = String::new();
    let outcome = stream_predict(
        model,
        &data.char_index,
        &data.attr_index,
        &mut scan,
        &mut cache,
        policy,
        |chunk| {
            line.clear();
            for (i, cell) in chunk.frame.cells().iter().enumerate() {
                let flag = if train.contains(&cell.tuple_id) {
                    cell.label
                } else {
                    chunk.preds[i]
                };
                if flag {
                    format.push_line(&mut line, cell.tuple_id, &columns[cell.attr], &cell.value_x);
                }
            }
            writer.write_all(line.as_bytes()).map_err(|e| e.to_string())
        },
    )
    .map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())?;
    eprintln!(
        "streamed {} rows ({} cells) in chunks of {chunk_rows}: peak {} B chunk + {} B encoded",
        outcome.n_rows, outcome.n_cells, outcome.peak_chunk_bytes, outcome.peak_encoded_bytes
    );
    Ok(())
}

/// `etsb detect`.
pub fn detect(args: &[String]) -> Result<(), String> {
    // `--fast-math` is a bare switch; strip it before key/value parsing.
    let mut fast_math = false;
    let args: Vec<String> = args
        .iter()
        .filter(|a| {
            if a.as_str() == "--fast-math" {
                fast_math = true;
                false
            } else {
                true
            }
        })
        .cloned()
        .collect();
    let flags = parse_flags(
        &args,
        &[
            "dirty",
            "clean",
            "model",
            "sampler",
            "tuples",
            "epochs",
            "seed",
            "out",
            "save",
            "manifest",
            "chunk-rows",
        ],
    )?;
    let policy = if fast_math {
        KernelPolicy::FastMath
    } else {
        KernelPolicy::Exact
    };
    let chunk_rows: usize = parse_or(&flags, "chunk-rows", 0)?;
    let (_, _, frame) = load_pair(&flags)?;
    let (data, mask, metrics, model, cfg, sample) = run_detection(&frame, &flags, policy)?;
    if let Some(path) = flags.get("manifest") {
        let info = DatasetInfo::from_shape(
            required(&flags, "dirty")?,
            (frame.n_tuples(), frame.n_attrs()),
        );
        let manifest = RunManifest::new(&cfg, 1, vec![info]).with_chunk_rows(chunk_rows);
        manifest.write(path).map_err(|e| e.to_string())?;
        println!("wrote run manifest to {path}");
    }
    if let Some(path) = flags.get("save") {
        let bytes = save_detector(&model, cfg.model, &cfg.train, &data);
        std::fs::write(path, bytes).map_err(|e| e.to_string())?;
        println!("saved trained detector to {path}");
    }
    println!(
        "precision {:.3}  recall {:.3}  F1 {:.3}  (tp {} fp {} fn {})",
        metrics.precision, metrics.recall, metrics.f1, metrics.tp, metrics.fp, metrics.fn_
    );
    if let Some(out) = flags.get("out") {
        if chunk_rows > 0 {
            stream_flagged(out, &flags, &model, &data, &sample, chunk_rows, policy)?;
        } else {
            let format = EmitFormat::of(out);
            let mut text = String::from(format.header());
            for (i, cell) in frame.cells().iter().enumerate() {
                if mask[i] {
                    format.push_line(
                        &mut text,
                        cell.tuple_id,
                        &frame.attrs()[cell.attr],
                        &cell.value_x,
                    );
                }
            }
            std::fs::write(out, text).map_err(|e| e.to_string())?;
        }
        println!("wrote flagged cells to {out}");
    }
    Ok(())
}

/// `etsb apply`.
pub fn apply(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["model", "dirty", "out"])?;
    // etsb: allow(no-whole-file-read) -- model checkpoints are bounded.
    let bytes = std::fs::read(required(&flags, "model")?).map_err(|e| e.to_string())?;
    let detector = load_detector(&bytes).map_err(|e| e.to_string())?;
    let dirty = csv::read_file(required(&flags, "dirty")?).map_err(|e| e.to_string())?;
    let mask = detector.apply(&dirty).map_err(|e| e.to_string())?;
    let flagged = mask.iter().filter(|&&m| m).count();
    println!(
        "{} detector over {} attributes: flagged {flagged} of {} cells",
        detector.kind.name(),
        detector.attr_index.len(),
        mask.len()
    );
    if let Some(out) = flags.get("out") {
        let n_cols = dirty.n_cols();
        let mut csv_text = String::from(
            "tuple_id,attribute,value,flagged
",
        );
        for (i, &m) in mask.iter().enumerate() {
            if m {
                let (r, c) = (i / n_cols, i % n_cols);
                csv_text.push_str(&format!(
                    "{r},{},{:?},1
",
                    dirty.columns()[c],
                    dirty.cell(r, c)
                ));
            }
        }
        std::fs::write(out, csv_text).map_err(|e| e.to_string())?;
        println!("wrote flagged cells to {out}");
    }
    Ok(())
}

/// `etsb serve`.
pub fn serve(args: &[String]) -> Result<(), String> {
    // `--stdin` and `--fast-math` are bare switches; strip them before
    // key/value parsing.
    let mut stdin_mode = false;
    let mut fast_math = false;
    let args: Vec<String> = args
        .iter()
        .filter(|a| match a.as_str() {
            "--stdin" => {
                stdin_mode = true;
                false
            }
            "--fast-math" => {
                fast_math = true;
                false
            }
            _ => true,
        })
        .cloned()
        .collect();
    let flags = parse_flags(
        &args,
        &[
            "model",
            "http",
            "max-batch",
            "linger-ms",
            "queue-cells",
            "timeout-ms",
            "cache",
            "threshold",
        ],
    )?;
    let defaults = ServeConfig::default();
    let cfg = ServeConfig {
        max_batch_cells: parse_or(&flags, "max-batch", defaults.max_batch_cells)?,
        linger: std::time::Duration::from_millis(parse_or(
            &flags,
            "linger-ms",
            defaults.linger.as_millis() as u64,
        )?),
        queue_capacity_cells: parse_or(&flags, "queue-cells", defaults.queue_capacity_cells)?,
        request_timeout: std::time::Duration::from_millis(parse_or(
            &flags,
            "timeout-ms",
            defaults.request_timeout.as_millis() as u64,
        )?),
        cache_capacity: parse_or(&flags, "cache", defaults.cache_capacity)?,
        prob_threshold: parse_or(&flags, "threshold", defaults.prob_threshold)?,
        fast_math,
    };
    // etsb: allow(no-whole-file-read) -- model checkpoints are bounded.
    let bytes = std::fs::read(required(&flags, "model")?).map_err(|e| e.to_string())?;
    let detector = load_detector(&bytes).map_err(|e| e.to_string())?;
    eprintln!(
        "serving {} detector over {} attributes (batch {} cells, cache {}, kernels {})",
        detector.kind.name(),
        detector.attr_index.len(),
        cfg.max_batch_cells,
        cfg.cache_capacity,
        if cfg.fast_math { "fast-math" } else { "exact" }
    );

    let http_addr = flags.get("http").cloned();
    if http_addr.is_some() && stdin_mode {
        return Err("pick one front end: --stdin or --http ADDR".to_string());
    }
    let mut service = DetectService::start(detector, cfg);
    if let Some(addr) = http_addr {
        let listener = std::net::TcpListener::bind(&addr).map_err(|e| e.to_string())?;
        let bound = listener.local_addr().map_err(|e| e.to_string())?;
        eprintln!("listening on http://{bound} (POST /detect, GET /healthz, GET /metrics)");
        // Runs until the process is terminated.
        let stop = std::sync::atomic::AtomicBool::new(false);
        etsb_serve::http::run(&service, listener, &stop).map_err(|e| e.to_string())?;
    } else {
        let stdin = std::io::stdin();
        etsb_serve::stdio::run(&service, stdin.lock(), std::io::stdout())
            .map_err(|e| e.to_string())?;
    }
    service.shutdown();
    let m = service.metrics();
    eprintln!(
        "served {} request(s) in {} batch(es): {} cells admitted, cache {}/{} hit/miss, \
         {} timeout(s), {} overload(s)",
        m.requests,
        m.batches,
        m.admitted_cells,
        m.cache.hits,
        m.cache.misses,
        m.timeouts,
        m.overloaded
    );
    Ok(())
}

/// `etsb repair`.
pub fn repair(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["dirty", "clean", "epochs", "seed", "out"])?;
    let (dirty, _, frame) = load_pair(&flags)?;
    // Repair quality is compared against exact-path baselines; keep it
    // on the bitwise kernels.
    let (_, mask, metrics, _, _, _) = run_detection(&frame, &flags, KernelPolicy::Exact)?;
    println!("detection F1 {:.3}", metrics.f1);

    let repairer = Repairer::fit(&frame, &mask);
    let proposals = repairer.propose_all(&frame, &mask);
    let eval = evaluate(&frame, &mask, &proposals);
    println!(
        "repairs: {} proposed, {} correct (precision {:.3}); errors {} -> {}",
        eval.proposed, eval.correct, eval.repair_precision, eval.errors_before, eval.errors_after
    );
    if let Some(out) = flags.get("out") {
        let repaired = repairer.apply(&dirty, &proposals);
        csv::write_file(&repaired, out).map_err(|e| e.to_string())?;
        println!("wrote repaired table to {out}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[(&str, &str)]) -> Vec<String> {
        pairs
            .iter()
            .flat_map(|(k, v)| [format!("--{k}"), v.to_string()])
            .collect()
    }

    #[test]
    fn parse_flags_happy_path() {
        let args = flags(&[("dataset", "beers"), ("scale", "0.1")]);
        let map = parse_flags(&args, &["dataset", "scale"]).unwrap();
        assert_eq!(map["dataset"], "beers");
        assert_eq!(map["scale"], "0.1");
    }

    #[test]
    fn parse_flags_rejects_unknown_and_dangling() {
        assert!(parse_flags(&flags(&[("bogus", "1")]), &["dataset"]).is_err());
        assert!(parse_flags(&["--dataset".to_string()], &["dataset"]).is_err());
        assert!(parse_flags(&["dataset".to_string()], &["dataset"]).is_err());
    }

    #[test]
    fn parse_or_defaults_and_errors() {
        let map = parse_flags(&flags(&[("scale", "abc")]), &["scale"]).unwrap();
        assert!(parse_or::<f64>(&map, "scale", 1.0).is_err());
        assert_eq!(parse_or::<f64>(&map, "missing", 2.5).unwrap(), 2.5);
    }

    #[test]
    fn generate_round_trips_through_files() {
        let dir = std::env::temp_dir();
        let d = dir.join("etsb_cli_test_dirty.csv");
        let c = dir.join("etsb_cli_test_clean.csv");
        let args = flags(&[
            ("dataset", "rayyan"),
            ("scale", "0.03"),
            ("seed", "5"),
            ("dirty", d.to_str().unwrap()),
            ("clean", c.to_str().unwrap()),
        ]);
        generate(&args).unwrap();
        let dirty = csv::read_file(&d).unwrap();
        let clean = csv::read_file(&c).unwrap();
        assert_eq!(dirty.shape(), clean.shape());
        assert_eq!(dirty.n_cols(), 10);
        std::fs::remove_file(d).ok();
        std::fs::remove_file(c).ok();
    }

    #[test]
    fn emit_format_is_chosen_by_extension_and_lines_are_stable() {
        assert_eq!(EmitFormat::of("out.csv"), EmitFormat::Csv);
        assert_eq!(EmitFormat::of("out"), EmitFormat::Csv);
        assert_eq!(EmitFormat::of("out.jsonl"), EmitFormat::Jsonl);

        let mut csv_text = String::from(EmitFormat::Csv.header());
        EmitFormat::Csv.push_line(&mut csv_text, 3, "zip", "a\"b");
        assert_eq!(
            csv_text,
            "tuple_id,attribute,value,flagged\n3,zip,\"a\\\"b\",1\n"
        );

        let mut jsonl = String::from(EmitFormat::Jsonl.header());
        EmitFormat::Jsonl.push_line(&mut jsonl, 3, "zip", "ok");
        assert_eq!(
            jsonl,
            "{\"attribute\":\"zip\",\"flagged\":true,\"tuple_id\":3,\"value\":\"ok\"}\n"
        );
    }

    #[test]
    fn generate_rejects_unknown_dataset() {
        let args = flags(&[
            ("dataset", "nope"),
            ("dirty", "/tmp/x"),
            ("clean", "/tmp/y"),
        ]);
        assert!(generate(&args).is_err());
    }
}
