//! Fixture corpus for the checker: every rule must fire on its seeded
//! violation file and stay silent on the clean file.
//!
//! The fixture sources live in `fixtures/` (excluded from workspace
//! scans) and are scanned under synthetic library-crate paths so the
//! path-based rule routing applies.

use etsb_check::{check_tree, reconcile, scan_source, Baseline, Finding, Rule};

fn scan(fixture: &str, rel: &str) -> Vec<Finding> {
    scan_source(rel, fixture)
}

fn rules_of(findings: &[Finding]) -> Vec<Rule> {
    let mut rules: Vec<Rule> = findings.iter().map(|f| f.rule).collect();
    rules.sort();
    rules.dedup();
    rules
}

#[test]
fn no_unwrap_fixture_reports_every_panic_macro() {
    let findings = scan(
        include_str!("../fixtures/no_unwrap_violation.rs"),
        "crates/core/src/fixture.rs",
    );
    let unwraps: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::NoUnwrap)
        .collect();
    // unwrap, expect, panic!, todo!, unimplemented!, unreachable! — one each.
    assert_eq!(unwraps.len(), 6, "findings: {findings:?}");
    // The unwrap inside #[cfg(test)] is exempt.
    assert!(
        unwraps.iter().all(|f| f.line < 24),
        "test code flagged: {unwraps:?}"
    );
}

#[test]
fn rng_fixture_reports_thread_rng_and_from_entropy_even_in_tests() {
    let findings = scan(
        include_str!("../fixtures/rng_violation.rs"),
        "crates/datasets/src/fixture.rs",
    );
    let rng: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::NoUnseededRng)
        .collect();
    assert_eq!(rng.len(), 2, "findings: {findings:?}");
    assert!(rng.iter().any(|f| f.snippet.contains("thread_rng")));
    assert!(rng.iter().any(|f| f.snippet.contains("from_entropy")));
}

#[test]
fn shape_fixture_reports_only_the_unasserted_op() {
    let findings = scan(
        include_str!("../fixtures/shape_violation.rs"),
        "crates/tensor/src/fixture.rs",
    );
    let shapes: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::ShapeAssert)
        .collect();
    assert_eq!(shapes.len(), 1, "findings: {findings:?}");
    assert!(
        shapes[0].snippet.contains("bad_add"),
        "wrong fn: {:?}",
        shapes[0]
    );
}

#[test]
fn doc_fixture_reports_only_undocumented_pub_items() {
    let findings = scan(
        include_str!("../fixtures/doc_violation.rs"),
        "crates/tensor/src/fixture.rs",
    );
    let docs: Vec<_> = findings.iter().filter(|f| f.rule == Rule::DocPub).collect();
    assert_eq!(docs.len(), 2, "findings: {findings:?}");
    assert!(docs.iter().any(|f| f.snippet.contains("undocumented_fn")));
    assert!(docs.iter().any(|f| f.snippet.contains("Undocumented")));
}

#[test]
fn print_fixture_reports_every_stdio_macro() {
    let findings = scan(
        include_str!("../fixtures/print_violation.rs"),
        "crates/core/src/fixture.rs",
    );
    let prints: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::NoPrint)
        .collect();
    // println!, eprintln!, print!, eprint! — one each; the allow-shielded
    // and #[cfg(test)] sites are exempt.
    assert_eq!(prints.len(), 4, "findings: {findings:?}");
    assert!(
        prints.iter().all(|f| f.line < 12),
        "exempt site flagged: {prints:?}"
    );
    // The same source in a binary crate is out of scope entirely.
    let findings = scan(
        include_str!("../fixtures/print_violation.rs"),
        "crates/cli/src/fixture.rs",
    );
    assert!(
        findings.iter().all(|f| f.rule != Rule::NoPrint),
        "no-print fired outside the library crates: {findings:?}"
    );
}

#[test]
fn clean_fixture_has_zero_false_positives() {
    // Scanned under a path where every rule applies (tensor: unwrap +
    // rng + shapes + docs + hash + float + into + unsafe).
    let findings = scan(
        include_str!("../fixtures/clean.rs"),
        "crates/tensor/src/fixture.rs",
    );
    assert!(findings.is_empty(), "false positives: {findings:?}");
}

#[test]
fn hash_iter_fixture_reports_each_order_leak() {
    let findings = scan(
        include_str!("../fixtures/hash_iter_violation.rs"),
        "crates/raha/src/fixture.rs",
    );
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::HashIterOrder)
        .collect();
    // Direct `.iter()`, a rustfmt-split `.values()` chain, and a
    // `for .. in` loop; the entry-only fn, the annotated sum, and the
    // #[cfg(test)] module stay silent.
    let lines: Vec<usize> = hits.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![8, 14, 24], "findings: {findings:?}");
    assert_eq!(
        findings.len(),
        hits.len(),
        "other rules fired: {findings:?}"
    );
    // Outside the result-affecting crates the rule is out of scope.
    let findings = scan(
        include_str!("../fixtures/hash_iter_violation.rs"),
        "crates/cli/src/fixture.rs",
    );
    assert!(
        findings.iter().all(|f| f.rule != Rule::HashIterOrder),
        "hash-iter-order fired outside the library crates: {findings:?}"
    );
}

#[test]
fn float_reduce_fixture_reports_ad_hoc_reductions() {
    let findings = scan(
        include_str!("../fixtures/float_reduce_violation.rs"),
        "crates/nn/src/fixture.rs",
    );
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::FloatReduceOrder)
        .collect();
    // sum::<f32>, float-init fold, mul_add; the lattice fold, integer
    // fold, and annotated accumulation stay silent.
    assert_eq!(hits.len(), 3, "findings: {findings:?}");
    assert!(hits.iter().any(|f| f.snippet.contains("sum::<f32>")));
    assert!(hits.iter().any(|f| f.snippet.contains("fold(0.0")));
    assert!(hits.iter().any(|f| f.snippet.contains("mul_add")));
    // The mul_add site additionally trips fast-math-confinement (the
    // two rules deliberately overlap on FMA); nothing else fires.
    assert!(
        findings
            .iter()
            .all(|f| f.rule == Rule::FloatReduceOrder || f.rule == Rule::FastMathConfinement),
        "other rules fired: {findings:?}"
    );
    // The same source inside a blessed kernel module is exempt.
    let findings = scan(
        include_str!("../fixtures/float_reduce_violation.rs"),
        "crates/tensor/src/ops.rs",
    );
    assert!(
        findings.iter().all(|f| f.rule != Rule::FloatReduceOrder),
        "float-reduce-order fired in a blessed kernel file: {findings:?}"
    );
}

#[test]
fn fast_math_fixture_reports_each_escaped_primitive() {
    // Scanned under a non-library crate to show the rule's scope is the
    // whole workspace, not just the float-checked crates.
    let findings = scan(
        include_str!("../fixtures/fast_math_violation.rs"),
        "crates/cli/src/fixture.rs",
    );
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::FastMathConfinement)
        .collect();
    // mul_add, std::arch, core::arch, #[target_feature(..)] — one each;
    // the allow-annotated mul_add stays silent.
    assert_eq!(hits.len(), 4, "findings: {findings:?}");
    assert!(hits.iter().any(|f| f.snippet.contains("mul_add")));
    assert!(hits.iter().any(|f| f.snippet.contains("std::arch")));
    assert!(hits.iter().any(|f| f.snippet.contains("core::arch")));
    assert!(hits.iter().any(|f| f.snippet.contains("target_feature")));
    assert_eq!(
        findings.len(),
        hits.len(),
        "other rules fired: {findings:?}"
    );
    // The same source inside the blessed SIMD directory is exempt.
    let findings = scan(
        include_str!("../fixtures/fast_math_violation.rs"),
        "crates/tensor/src/simd/fixture.rs",
    );
    assert!(
        findings.iter().all(|f| f.rule != Rule::FastMathConfinement),
        "fast-math-confinement fired inside the blessed directory: {findings:?}"
    );
}

#[test]
fn into_fixture_reports_alloc_and_missing_assert() {
    let findings = scan(
        include_str!("../fixtures/into_violation.rs"),
        "crates/tensor/src/fixture.rs",
    );
    let allocs: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::IntoNoAlloc)
        .collect();
    // The temp vec and the clone inside bad_axpy_into.
    assert_eq!(allocs.len(), 2, "findings: {findings:?}");
    assert!(allocs.iter().all(|f| f.snippet.contains("bad_axpy_into")));
    let asserts: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::IntoShapeAssert)
        .collect();
    assert_eq!(asserts.len(), 1, "findings: {findings:?}");
    assert!(asserts[0].snippet.contains("bad_scale_into"));
    // The compliant, annotated, private, and #[cfg(test)] kernels are
    // silent, and no other rule fires.
    assert_eq!(findings.len(), 3, "findings: {findings:?}");
}

#[test]
fn unsafe_fixture_reports_unjustified_unsafe() {
    let findings = scan(
        include_str!("../fixtures/unsafe_violation.rs"),
        "crates/tensor/src/fixture.rs",
    );
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::UnsafeSafetyComment)
        .collect();
    // Bare block, unsafe fn, and the uncommented unsafe impl; the
    // SAFETY-commented, same-line, and allow-annotated sites pass.
    let lines: Vec<usize> = hits.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![6, 10, 43], "findings: {findings:?}");
    assert_eq!(
        findings.len(),
        hits.len(),
        "other rules fired: {findings:?}"
    );
}

#[test]
fn whole_file_read_fixture_reports_each_slurp() {
    let findings = scan(
        include_str!("../fixtures/whole_file_read_violation.rs"),
        "crates/table/src/fixture.rs",
    );
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::NoWholeFileRead)
        .collect();
    // fs::read_to_string, fs::read, and the Read::read_to_string reader
    // form; the allow-annotated checkpoint and the #[cfg(test)] read
    // stay silent.
    let lines: Vec<usize> = hits.iter().map(|f| f.line).collect();
    assert_eq!(lines, vec![7, 12, 15], "findings: {findings:?}");
    assert_eq!(
        findings.len(),
        hits.len(),
        "other rules fired: {findings:?}"
    );
    // The CLI is on the data path too.
    let findings = scan(
        include_str!("../fixtures/whole_file_read_violation.rs"),
        "crates/cli/src/fixture.rs",
    );
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.rule == Rule::NoWholeFileRead)
            .count(),
        3,
        "findings: {findings:?}"
    );
    // Dev tooling that reads its own bounded reports is out of scope.
    let findings = scan(
        include_str!("../fixtures/whole_file_read_violation.rs"),
        "crates/bench/src/bin/fixture.rs",
    );
    assert!(
        findings.iter().all(|f| f.rule != Rule::NoWholeFileRead),
        "no-whole-file-read fired outside the data path: {findings:?}"
    );
}

#[test]
fn every_rule_has_explain_docs_and_round_trips() {
    for rule in Rule::all() {
        let doc = rule.explain();
        assert!(
            doc.starts_with(&format!("{} ({})", rule.name(), rule.severity().name())),
            "explain for {} must open with its name and severity: {doc:?}",
            rule.name()
        );
        assert!(
            doc.contains("Contract:") && doc.contains("Fix:"),
            "explain for {} must state the contract and the fix",
            rule.name()
        );
        assert_eq!(
            Rule::from_name(rule.name()),
            Some(rule),
            "from_name round-trip"
        );
    }
}

#[test]
fn violation_fixtures_fail_check_tree_against_an_empty_baseline() {
    for (fixture, rel) in [
        (
            include_str!("../fixtures/no_unwrap_violation.rs"),
            "crates/core/src/f.rs",
        ),
        (
            include_str!("../fixtures/rng_violation.rs"),
            "crates/core/src/f.rs",
        ),
        (
            include_str!("../fixtures/shape_violation.rs"),
            "crates/tensor/src/f.rs",
        ),
        (
            include_str!("../fixtures/doc_violation.rs"),
            "crates/tensor/src/f.rs",
        ),
        (
            include_str!("../fixtures/print_violation.rs"),
            "crates/core/src/f.rs",
        ),
        (
            include_str!("../fixtures/hash_iter_violation.rs"),
            "crates/raha/src/f.rs",
        ),
        (
            include_str!("../fixtures/float_reduce_violation.rs"),
            "crates/nn/src/f.rs",
        ),
        (
            include_str!("../fixtures/fast_math_violation.rs"),
            "crates/cli/src/f.rs",
        ),
        (
            include_str!("../fixtures/into_violation.rs"),
            "crates/tensor/src/f.rs",
        ),
        (
            include_str!("../fixtures/unsafe_violation.rs"),
            "crates/tensor/src/f.rs",
        ),
        (
            include_str!("../fixtures/whole_file_read_violation.rs"),
            "crates/table/src/f.rs",
        ),
    ] {
        let sources = vec![(rel.to_string(), fixture.to_string())];
        let report = check_tree(&sources, &Baseline::default());
        assert!(!report.is_clean(), "fixture {rel} passed unexpectedly");
    }
}

#[test]
fn baseline_absorbs_debt_but_rejects_growth() {
    let source = include_str!("../fixtures/no_unwrap_violation.rs");
    let findings: Vec<Finding> = scan(source, "crates/core/src/f.rs")
        .into_iter()
        .filter(|f| f.rule == Rule::NoUnwrap)
        .collect();
    let n = findings.len();

    // Budget exactly matching the debt: clean.
    let mut exact = Baseline::default();
    for _ in 0..n {
        exact.bump("no-unwrap", "crates/core/src/f.rs");
    }
    let report = reconcile(findings.clone(), &exact);
    assert!(report.is_clean());
    assert_eq!(report.baselined.len(), n);

    // One-too-small budget: the whole group becomes violations (ratchet).
    let mut small = Baseline::default();
    for _ in 0..n - 1 {
        small.bump("no-unwrap", "crates/core/src/f.rs");
    }
    let report = reconcile(findings.clone(), &small);
    assert!(!report.is_clean());

    // Over-generous budget: clean, but the slack is reported.
    let mut large = exact.clone();
    large.bump("no-unwrap", "crates/core/src/f.rs");
    let report = reconcile(findings, &large);
    assert!(report.is_clean());
    assert_eq!(report.ratchet_slack.len(), 1);
}

#[test]
fn allow_annotations_are_rule_specific() {
    let source = r#"
pub fn f(x: Option<u32>) -> u32 {
    // etsb: allow(no-unseeded-rng) -- wrong rule, must not suppress no-unwrap.
    x.unwrap()
}
"#;
    let findings = scan(source, "crates/core/src/f.rs");
    assert_eq!(
        findings.iter().filter(|f| f.rule == Rule::NoUnwrap).count(),
        1
    );
}

#[test]
fn rules_only_apply_to_their_crates() {
    let source = "pub fn undocumented() { let x: Option<u32> = None; x.unwrap(); }\n";
    // cli is not a library crate and not doc-checked: nothing fires
    // except the rng rule's scope (which has no rng use here).
    let findings = scan(source, "crates/cli/src/f.rs");
    assert!(findings.is_empty(), "findings: {findings:?}");
    // In core, no-unwrap fires; doc-pub fires too (core is doc-checked).
    let findings = scan(source, "crates/core/src/f.rs");
    assert_eq!(rules_of(&findings), vec![Rule::NoUnwrap, Rule::DocPub]);
}
