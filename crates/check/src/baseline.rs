//! The debt baseline: a machine-readable record of pre-existing rule
//! violations, so `etsb-check` can gate *new* debt while old debt is
//! paid down incrementally.
//!
//! Format — one entry per line, sorted, `#` comments ignored:
//!
//! ```text
//! <rule-name> <count> <workspace-relative-path>
//! ```
//!
//! The ratchet: a (rule, file) pair may never exceed its recorded count.
//! When the current count drops below the baseline, the checker reports
//! the slack so the file can be regenerated (`--update-baseline`),
//! locking the progress in.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Parsed baseline: budgets per (rule, file).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    budgets: BTreeMap<(String, String), usize>,
}

/// A malformed baseline line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the baseline file.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "baseline line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl Baseline {
    /// Parse baseline text.
    pub fn parse(text: &str) -> Result<Baseline, ParseError> {
        let mut budgets = BTreeMap::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, ' ');
            let (rule, count, path) = match (parts.next(), parts.next(), parts.next()) {
                (Some(r), Some(c), Some(p)) => (r, c, p),
                _ => {
                    return Err(ParseError {
                        line: i + 1,
                        message: format!("expected `<rule> <count> <path>`, got `{line}`"),
                    })
                }
            };
            if crate::Rule::from_name(rule).is_none() {
                return Err(ParseError {
                    line: i + 1,
                    message: format!("unknown rule `{rule}`"),
                });
            }
            let count: usize = count.parse().map_err(|_| ParseError {
                line: i + 1,
                message: format!("bad count `{count}`"),
            })?;
            budgets.insert((rule.to_string(), path.trim().to_string()), count);
        }
        Ok(Baseline { budgets })
    }

    /// Load from a file; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Baseline::parse(&text).map_err(|e| e.to_string()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(format!("reading {}: {e}", path.display())),
        }
    }

    /// Allowed count for a (rule, file); zero if absent.
    pub fn budget(&self, rule: &str, file: &str) -> usize {
        self.budgets
            .get(&(rule.to_string(), file.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Add one to a (rule, file) budget (used when regenerating).
    pub fn bump(&mut self, rule: &str, file: &str) {
        *self
            .budgets
            .entry((rule.to_string(), file.to_string()))
            .or_insert(0) += 1;
    }

    /// All entries as (rule, file, count).
    pub fn entries(&self) -> Vec<(String, String, usize)> {
        self.budgets
            .iter()
            .map(|((r, f), &c)| (r.clone(), f.clone(), c))
            .collect()
    }

    /// Total budgeted sites for one rule.
    pub fn total(&self, rule: &str) -> usize {
        self.budgets
            .iter()
            .filter(|((r, _), _)| r == rule)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Serialize in the canonical sorted format.
    pub fn to_text(&self) -> String {
        let mut out = String::from(
            "# etsb-check debt baseline. One `<rule> <count> <path>` entry per line.\n\
             # Counts may only ratchet down: regenerate with `cargo run -p etsb-check -- \
             --update-baseline`.\n",
        );
        for ((rule, file), count) in &self.budgets {
            out.push_str(&format!("{rule} {count} {file}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::Baseline;

    #[test]
    fn round_trips_entries() {
        let mut b = Baseline::default();
        b.bump("no-unwrap", "crates/core/src/train.rs");
        b.bump("no-unwrap", "crates/core/src/train.rs");
        b.bump("doc-pub", "crates/tensor/src/ops.rs");
        let parsed = Baseline::parse(&b.to_text()).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.budget("no-unwrap", "crates/core/src/train.rs"), 2);
        assert_eq!(parsed.budget("no-unwrap", "crates/core/src/other.rs"), 0);
        assert_eq!(parsed.total("no-unwrap"), 2);
    }

    #[test]
    fn rejects_unknown_rules_and_bad_counts() {
        assert!(Baseline::parse("bogus-rule 3 some/file.rs").is_err());
        assert!(Baseline::parse("no-unwrap many some/file.rs").is_err());
        assert!(Baseline::parse("no-unwrap 3").is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let b = Baseline::parse("# header\n\nno-unwrap 1 a.rs\n").unwrap();
        assert_eq!(b.budget("no-unwrap", "a.rs"), 1);
    }
}
