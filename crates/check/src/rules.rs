//! The rule passes. Each pass walks the stripped source (comments and
//! string contents blanked — see [`crate::strip`]) so token matches are
//! real code, while allow-annotations are read from the raw source.

use crate::{Finding, Rule};
use std::collections::HashSet;

/// Per-line sets of rules disabled by `// etsb: allow(<rule>, ...)`.
/// An annotation applies to its own line and to the line below it (so a
/// comment-only line can shield the statement that follows).
pub fn collect_allows(source: &str) -> Vec<HashSet<Rule>> {
    let mut allows: Vec<HashSet<Rule>> = vec![HashSet::new(); source.lines().count()];
    for (i, line) in source.lines().enumerate() {
        let Some(comment) = line.split("//").nth(1).map(|c| line_comment_tail(line, c)) else {
            continue;
        };
        let Some(idx) = comment.find("etsb: allow(") else {
            continue;
        };
        let args = &comment[idx + "etsb: allow(".len()..];
        let Some(close) = args.find(')') else {
            continue;
        };
        for name in args[..close].split(',') {
            if let Some(rule) = Rule::from_name(name.trim()) {
                allows[i].insert(rule);
            }
        }
    }
    allows
}

/// The annotation must sit in a `//` comment; return everything after
/// the first `//` of the raw line.
fn line_comment_tail<'a>(line: &'a str, _after: &str) -> &'a str {
    match line.find("//") {
        Some(pos) => &line[pos..],
        None => "",
    }
}

/// Whether the finding at `line` (0-based) is shielded by an allow for
/// `rule` on the same or the preceding line.
fn allowed(allows: &[HashSet<Rule>], line: usize, rule: Rule) -> bool {
    allows.get(line).is_some_and(|s| s.contains(&rule))
        || (line > 0 && allows.get(line - 1).is_some_and(|s| s.contains(&rule)))
}

/// Mark lines that belong to `#[cfg(test)]`-gated items or `#[test]`
/// functions: the no-unwrap / shape-assert / doc-pub rules skip them.
pub fn test_code_lines(_source: &str, stripped: &str) -> Vec<bool> {
    let lines: Vec<&str> = stripped.lines().collect();
    let mut in_test = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let t = lines[i].trim_start();
        if t.starts_with("#[cfg(test)]") || t.starts_with("#[test]") {
            let end = item_end(&lines, i);
            for flag in in_test.iter_mut().take(end + 1).skip(i) {
                *flag = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    in_test
}

/// Index of the last line of the item starting at (or just after) the
/// attribute on line `start`: scans to the `;` of a bodiless item or the
/// matching `}` of its block.
fn item_end(lines: &[&str], start: usize) -> usize {
    let mut depth = 0usize;
    let mut seen_open = false;
    for (j, line) in lines.iter().enumerate().skip(start) {
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    seen_open = true;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if seen_open && depth == 0 {
                        return j;
                    }
                }
                ';' if !seen_open && depth == 0 && j > start => return j,
                _ => {}
            }
        }
        // `#[cfg(test)] use foo;` on a single line.
        if j == start && !seen_open && line.contains(';') {
            return j;
        }
    }
    lines.len().saturating_sub(1)
}

/// Tokens forbidden in non-test library-crate code, with the matcher
/// used for each.
const PANIC_TOKENS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Rule `no-unwrap`: panicking calls in non-test library code.
pub fn check_no_unwrap(
    rel: &str,
    source: &str,
    stripped: &str,
    test_lines: &[bool],
    allows: &[HashSet<Rule>],
    findings: &mut Vec<Finding>,
) {
    for (i, line) in stripped.lines().enumerate() {
        if test_lines.get(i).copied().unwrap_or(false) || allowed(allows, i, Rule::NoUnwrap) {
            continue;
        }
        for token in PANIC_TOKENS {
            for _ in 0..count_token(line, token) {
                findings.push(Finding {
                    rule: Rule::NoUnwrap,
                    file: rel.to_string(),
                    line: i + 1,
                    snippet: raw_line(source, i),
                });
            }
        }
    }
}

/// Count non-overlapping occurrences of `token`, requiring that the
/// match is not part of a longer identifier (so `.unwrap_or()` does not
/// match `.unwrap`-style prefixes — exact tokens above already encode
/// the closing delimiter, this guards the leading edge).
fn count_token(line: &str, token: &str) -> usize {
    let mut n = 0;
    let mut from = 0;
    while let Some(pos) = line[from..].find(token) {
        let abs = from + pos;
        let prev_ok = token.starts_with('.')
            || abs == 0
            || !line[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if prev_ok {
            n += 1;
        }
        from = abs + token.len();
    }
    n
}

/// Stdio macros forbidden in non-test library-crate code.
const PRINT_TOKENS: [&str; 4] = ["println!(", "eprintln!(", "print!(", "eprint!("];

/// Rule `no-print`: libraries must not write to the process's stdio —
/// they report through return values and the `etsb-obs` tracing layer.
pub fn check_no_print(
    rel: &str,
    source: &str,
    stripped: &str,
    test_lines: &[bool],
    allows: &[HashSet<Rule>],
    findings: &mut Vec<Finding>,
) {
    for (i, line) in stripped.lines().enumerate() {
        if test_lines.get(i).copied().unwrap_or(false) || allowed(allows, i, Rule::NoPrint) {
            continue;
        }
        for token in PRINT_TOKENS {
            for _ in 0..count_token(line, token) {
                findings.push(Finding {
                    rule: Rule::NoPrint,
                    file: rel.to_string(),
                    line: i + 1,
                    snippet: raw_line(source, i),
                });
            }
        }
    }
}

/// Rule `no-unseeded-rng`: all randomness must flow from an explicit
/// seed; `thread_rng()` / `from_entropy()` make runs unrepeatable.
pub fn check_no_unseeded_rng(
    rel: &str,
    source: &str,
    stripped: &str,
    allows: &[HashSet<Rule>],
    findings: &mut Vec<Finding>,
) {
    for (i, line) in stripped.lines().enumerate() {
        if allowed(allows, i, Rule::NoUnseededRng) {
            continue;
        }
        for token in ["thread_rng(", "from_entropy("] {
            for _ in 0..count_token(line, token) {
                findings.push(Finding {
                    rule: Rule::NoUnseededRng,
                    file: rel.to_string(),
                    line: i + 1,
                    snippet: raw_line(source, i),
                });
            }
        }
    }
}

/// One parsed function in a shape-checked crate.
struct FnInfo {
    name: String,
    sig_line: usize,
    body_start: usize,
    body_end: usize,
    tensor_operands: usize,
}

/// Rule `shape-assert`: a function that consumes two or more tensor-like
/// operands (`Matrix`, `&[f32]`, `Vec<f32>`, or a `Matrix` receiver)
/// must carry a shape assertion whose message names the function
/// (`"<name>: ..."`), so a mismatch panics with actionable context.
pub fn check_shape_asserts(
    rel: &str,
    source: &str,
    stripped: &str,
    test_lines: &[bool],
    allows: &[HashSet<Rule>],
    findings: &mut Vec<Finding>,
) {
    let raw_lines: Vec<&str> = source.lines().collect();
    for f in parse_fns(stripped) {
        if f.tensor_operands < 2
            || test_lines.get(f.sig_line).copied().unwrap_or(false)
            || allowed(allows, f.sig_line, Rule::ShapeAssert)
        {
            continue;
        }
        let body = raw_lines[f.body_start..=f.body_end.min(raw_lines.len() - 1)].join("\n");
        let names_op = body.contains(&format!("{}:", f.name));
        let has_assert = body.contains("assert");
        // Delegation pattern: the op passes its own name as a string
        // literal to a shared checked kernel (e.g. `zip_with(other,
        // "add", ..)`), which formats it into the assertion message.
        let delegates = body.contains(&format!("\"{}\"", f.name));
        if !((has_assert && names_op) || delegates) {
            findings.push(Finding {
                rule: Rule::ShapeAssert,
                file: rel.to_string(),
                line: f.sig_line + 1,
                snippet: format!(
                    "fn {} takes {} tensor operands but has no shape assertion naming it",
                    f.name, f.tensor_operands
                ),
            });
        }
    }
}

/// Parse function signatures and body spans from stripped source,
/// tracking `impl Matrix` receivers.
fn parse_fns(stripped: &str) -> Vec<FnInfo> {
    let lines: Vec<&str> = stripped.lines().collect();
    let mut out = Vec::new();
    let mut impl_stack: Vec<(usize, bool)> = Vec::new(); // (close_depth, is_matrix)
    let mut depth = 0usize;
    let mut i = 0;
    while i < lines.len() {
        let t = lines[i].trim_start();
        if t.starts_with("impl ") || t.starts_with("impl<") {
            let is_matrix = impl_target(t) == Some("Matrix".to_string());
            impl_stack.push((depth, is_matrix));
        }
        if let Some(fn_col) = fn_keyword_pos(t) {
            let name: String = t[fn_col + 3..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            // Collect the signature until its opening `{` (or `;` for a
            // trait method declaration).
            let mut sig = String::new();
            let mut j = i;
            let mut body_start = None;
            while j < lines.len() {
                let line = lines[j];
                if let Some(brace) = sig_terminator(line, &sig) {
                    sig.push_str(&line[..brace]);
                    if line.as_bytes().get(brace) == Some(&b'{') {
                        body_start = Some(j);
                    }
                    break;
                }
                sig.push_str(line);
                sig.push(' ');
                j += 1;
            }
            if let Some(start) = body_start {
                let end = item_end(&lines, start);
                let in_matrix_impl = impl_stack.last().is_some_and(|&(_, m)| m);
                out.push(FnInfo {
                    tensor_operands: tensor_operands(&sig, in_matrix_impl),
                    name,
                    sig_line: i,
                    body_start: start,
                    body_end: end,
                });
                // Functions may contain nested closures but not nested
                // `fn` items in this workspace; skip past the signature
                // only, so inner `impl` blocks still register.
            }
        }
        depth += lines[i].matches('{').count();
        depth = depth.saturating_sub(lines[i].matches('}').count());
        while let Some(&(open_depth, _)) = impl_stack.last() {
            if depth <= open_depth && lines[i].contains('}') {
                impl_stack.pop();
            } else {
                break;
            }
        }
        i += 1;
    }
    out
}

/// Column of the `fn ` keyword on a trimmed line, if the line declares a
/// function (`fn`, `pub fn`, `pub(crate) fn`, `const fn`, `unsafe fn`).
fn fn_keyword_pos(t: &str) -> Option<usize> {
    if t.starts_with("fn ") {
        return Some(0);
    }
    for prefix in [
        "pub fn ",
        "pub(crate) fn ",
        "pub(super) fn ",
        "const fn ",
        "pub const fn ",
        "unsafe fn ",
    ] {
        if t.starts_with(prefix) {
            return Some(prefix.len() - 3);
        }
    }
    None
}

/// Position in `line` where the signature ends: the opening `{` or a
/// terminating `;`, at paren depth 0 relative to `so_far`.
fn sig_terminator(line: &str, so_far: &str) -> Option<usize> {
    let mut depth = so_far.matches('(').count() as isize - so_far.matches(')').count() as isize;
    for (k, c) in line.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth -= 1,
            '{' | ';' if depth <= 0 => return Some(k),
            _ => {}
        }
    }
    None
}

/// The self-type of an `impl` line: `impl Matrix {` → `Matrix`,
/// `impl Trait for Matrix {` → `Matrix`.
fn impl_target(t: &str) -> Option<String> {
    let mut rest = t.strip_prefix("impl")?;
    if rest.starts_with('<') {
        let mut depth = 0isize;
        let mut after = rest.len();
        for (k, c) in rest.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        after = k + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &rest[after..];
    }
    let rest = rest.trim_start();
    let rest = match rest.find(" for ") {
        Some(pos) => &rest[pos + 5..],
        None => rest,
    };
    let name: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Count tensor-like operands in a signature's parameter list.
fn tensor_operands(sig: &str, in_matrix_impl: bool) -> usize {
    let params = match (sig.find('('), sig.rfind(')')) {
        (Some(open), Some(close)) if close > open => &sig[open + 1..close],
        _ => return 0,
    };
    let mut n = 0;
    for param in split_params(params) {
        let p = param.trim();
        if p == "self" || p == "&self" || p == "&mut self" {
            if in_matrix_impl {
                n += 1;
            }
            continue;
        }
        let ty = p.split(':').nth(1).unwrap_or("").trim();
        let base = ty.trim_start_matches('&').trim_start_matches("mut ").trim();
        if base.starts_with("Matrix")
            || base.starts_with("[f32]")
            || base.starts_with("Vec<f32>")
            || base.starts_with("[f32;")
        {
            n += 1;
        }
    }
    n
}

/// Split a parameter list at top-level commas (angle brackets, brackets
/// and parens nest).
fn split_params(params: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0isize;
    let mut start = 0;
    for (k, c) in params.char_indices() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth -= 1,
            ',' if depth == 0 => {
                out.push(&params[start..k]);
                start = k + 1;
            }
            _ => {}
        }
    }
    out.push(&params[start..]);
    out
}

/// Item keywords that require documentation when `pub`.
const DOC_ITEMS: [&str; 8] = [
    "fn", "struct", "enum", "trait", "mod", "const", "static", "type",
];

/// Rule `doc-pub`: public items in the API crates must carry docs.
pub fn check_doc_pub(
    rel: &str,
    source: &str,
    stripped: &str,
    test_lines: &[bool],
    allows: &[HashSet<Rule>],
    findings: &mut Vec<Finding>,
) {
    let raw_lines: Vec<&str> = source.lines().collect();
    let stripped_lines: Vec<&str> = stripped.lines().collect();
    let attr_lines = attribute_lines(&stripped_lines);
    for (i, line) in stripped_lines.iter().enumerate() {
        if test_lines.get(i).copied().unwrap_or(false) || allowed(allows, i, Rule::DocPub) {
            continue;
        }
        let t = line.trim_start();
        let Some(rest) = t.strip_prefix("pub ") else {
            continue;
        };
        let word = rest
            .trim_start_matches("unsafe ")
            .trim_start_matches("const ")
            .trim_start_matches("async ")
            .split_whitespace()
            .next()
            .unwrap_or("");
        if !DOC_ITEMS.contains(&word) {
            continue;
        }
        // `pub const fn` keeps `fn` as the item; `pub const NAME` keeps
        // `const`. Both forms land in DOC_ITEMS, so either way this is a
        // documentable public item.
        if !has_doc_above(&raw_lines, &attr_lines, i) {
            let name = rest
                .split(['(', '<', '{', ':'])
                .next()
                .unwrap_or(rest)
                .trim()
                .trim_end_matches(';');
            findings.push(Finding {
                rule: Rule::DocPub,
                file: rel.to_string(),
                line: i + 1,
                snippet: format!("undocumented public item: pub {name}"),
            });
        }
    }
}

/// Mark lines occupied by (possibly multi-line) outer attributes.
fn attribute_lines(stripped_lines: &[&str]) -> Vec<bool> {
    let mut flags = vec![false; stripped_lines.len()];
    let mut i = 0;
    while i < stripped_lines.len() {
        let t = stripped_lines[i].trim_start();
        if t.starts_with("#[") || t.starts_with("#![") {
            let mut depth = 0isize;
            let mut j = i;
            'outer: while j < stripped_lines.len() {
                for c in stripped_lines[j].chars() {
                    match c {
                        '[' => depth += 1,
                        ']' => {
                            depth -= 1;
                            if depth == 0 {
                                break 'outer;
                            }
                        }
                        _ => {}
                    }
                }
                j += 1;
            }
            for flag in flags.iter_mut().take(j + 1).skip(i) {
                *flag = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    flags
}

/// Whether the item starting at line `i` has a `///` or `#[doc` line
/// directly above it (attributes between docs and item are fine).
fn has_doc_above(raw_lines: &[&str], attr_lines: &[bool], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = raw_lines[j].trim_start();
        if attr_lines.get(j).copied().unwrap_or(false) {
            if t.contains("#[doc") {
                return true;
            }
            continue;
        }
        if t.starts_with("///") || t.starts_with("//!") {
            return true;
        }
        // Plain comments are transparent to the parser: a doc comment
        // further up still attaches to the item through them.
        if t.starts_with("//") {
            continue;
        }
        return false;
    }
    false
}

/// The raw source line at 0-based index `i`, trimmed for reporting.
fn raw_line(source: &str, i: usize) -> String {
    source.lines().nth(i).unwrap_or("").trim().to_string()
}
