//! The rule passes. Each pass walks the stripped source (comments and
//! string contents blanked — see [`crate::strip`]) so token matches are
//! real code, while allow-annotations are read from the raw source.
//! Body-aware rules (`shape-assert`, `into-no-alloc`,
//! `into-shape-assert`, `hash-iter-order`) reason over the function
//! spans extracted by [`crate::fnmap`].

use crate::fnmap::{function_spans, item_end};
use crate::{Finding, Rule};
use std::collections::HashSet;

/// Per-line sets of rules disabled by `// etsb: allow(<rule>, ...)`.
/// An annotation applies to its own line and to the line below it (so a
/// comment-only line can shield the statement that follows).
pub fn collect_allows(source: &str) -> Vec<HashSet<Rule>> {
    let mut allows: Vec<HashSet<Rule>> = vec![HashSet::new(); source.lines().count()];
    for (i, line) in source.lines().enumerate() {
        let Some(comment) = line.split("//").nth(1).map(|c| line_comment_tail(line, c)) else {
            continue;
        };
        let Some(idx) = comment.find("etsb: allow(") else {
            continue;
        };
        let args = &comment[idx + "etsb: allow(".len()..];
        let Some(close) = args.find(')') else {
            continue;
        };
        for name in args[..close].split(',') {
            if let Some(rule) = Rule::from_name(name.trim()) {
                allows[i].insert(rule);
            }
        }
    }
    allows
}

/// The annotation must sit in a `//` comment; return everything after
/// the first `//` of the raw line.
fn line_comment_tail<'a>(line: &'a str, _after: &str) -> &'a str {
    match line.find("//") {
        Some(pos) => &line[pos..],
        None => "",
    }
}

/// Whether the finding at `line` (0-based) is shielded by an allow for
/// `rule` on the same or the preceding line.
fn allowed(allows: &[HashSet<Rule>], line: usize, rule: Rule) -> bool {
    allows.get(line).is_some_and(|s| s.contains(&rule))
        || (line > 0 && allows.get(line - 1).is_some_and(|s| s.contains(&rule)))
}

/// Mark lines that belong to `#[cfg(test)]`-gated items or `#[test]`
/// functions: the no-unwrap / shape-assert / doc-pub rules skip them.
pub fn test_code_lines(_source: &str, stripped: &str) -> Vec<bool> {
    let lines: Vec<&str> = stripped.lines().collect();
    let mut in_test = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let t = lines[i].trim_start();
        if t.starts_with("#[cfg(test)]") || t.starts_with("#[test]") {
            let end = item_end(&lines, i);
            for flag in in_test.iter_mut().take(end + 1).skip(i) {
                *flag = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    in_test
}

/// Tokens forbidden in non-test library-crate code, with the matcher
/// used for each.
const PANIC_TOKENS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Rule `no-unwrap`: panicking calls in non-test library code.
pub fn check_no_unwrap(
    rel: &str,
    source: &str,
    stripped: &str,
    test_lines: &[bool],
    allows: &[HashSet<Rule>],
    findings: &mut Vec<Finding>,
) {
    for (i, line) in stripped.lines().enumerate() {
        if test_lines.get(i).copied().unwrap_or(false) || allowed(allows, i, Rule::NoUnwrap) {
            continue;
        }
        for token in PANIC_TOKENS {
            for _ in 0..count_token(line, token) {
                findings.push(Finding {
                    rule: Rule::NoUnwrap,
                    file: rel.to_string(),
                    line: i + 1,
                    snippet: raw_line(source, i),
                });
            }
        }
    }
}

/// Count non-overlapping occurrences of `token`, requiring that the
/// match is not part of a longer identifier (so `.unwrap_or()` does not
/// match `.unwrap`-style prefixes — exact tokens above already encode
/// the closing delimiter, this guards the leading edge).
fn count_token(line: &str, token: &str) -> usize {
    let mut n = 0;
    let mut from = 0;
    while let Some(pos) = line[from..].find(token) {
        let abs = from + pos;
        let prev_ok = token.starts_with('.')
            || abs == 0
            || !line[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if prev_ok {
            n += 1;
        }
        from = abs + token.len();
    }
    n
}

/// Stdio macros forbidden in non-test library-crate code.
const PRINT_TOKENS: [&str; 4] = ["println!(", "eprintln!(", "print!(", "eprint!("];

/// Rule `no-print`: libraries must not write to the process's stdio —
/// they report through return values and the `etsb-obs` tracing layer.
pub fn check_no_print(
    rel: &str,
    source: &str,
    stripped: &str,
    test_lines: &[bool],
    allows: &[HashSet<Rule>],
    findings: &mut Vec<Finding>,
) {
    for (i, line) in stripped.lines().enumerate() {
        if test_lines.get(i).copied().unwrap_or(false) || allowed(allows, i, Rule::NoPrint) {
            continue;
        }
        for token in PRINT_TOKENS {
            for _ in 0..count_token(line, token) {
                findings.push(Finding {
                    rule: Rule::NoPrint,
                    file: rel.to_string(),
                    line: i + 1,
                    snippet: raw_line(source, i),
                });
            }
        }
    }
}

/// Whole-file read APIs forbidden on the data path (`no-whole-file-read`).
const WHOLE_READ_TOKENS: [&str; 2] = ["read_to_string(", "fs::read("];

/// Rule `no-whole-file-read`: the data path streams inputs through
/// `BufRead` so peak memory is O(chunk); a `read_to_string` / `fs::read`
/// is an O(file) allocation that undoes the bound on large tables.
/// Bounded reads (model checkpoints, validation-tool reports) carry
/// allow annotations; test code is exempt.
pub fn check_no_whole_file_read(
    rel: &str,
    source: &str,
    stripped: &str,
    test_lines: &[bool],
    allows: &[HashSet<Rule>],
    findings: &mut Vec<Finding>,
) {
    for (i, line) in stripped.lines().enumerate() {
        if test_lines.get(i).copied().unwrap_or(false) || allowed(allows, i, Rule::NoWholeFileRead)
        {
            continue;
        }
        for token in WHOLE_READ_TOKENS {
            for _ in 0..count_token(line, token) {
                findings.push(Finding {
                    rule: Rule::NoWholeFileRead,
                    file: rel.to_string(),
                    line: i + 1,
                    snippet: raw_line(source, i),
                });
            }
        }
    }
}

/// Rule `no-unseeded-rng`: all randomness must flow from an explicit
/// seed; `thread_rng()` / `from_entropy()` make runs unrepeatable.
pub fn check_no_unseeded_rng(
    rel: &str,
    source: &str,
    stripped: &str,
    allows: &[HashSet<Rule>],
    findings: &mut Vec<Finding>,
) {
    for (i, line) in stripped.lines().enumerate() {
        if allowed(allows, i, Rule::NoUnseededRng) {
            continue;
        }
        for token in ["thread_rng(", "from_entropy("] {
            for _ in 0..count_token(line, token) {
                findings.push(Finding {
                    rule: Rule::NoUnseededRng,
                    file: rel.to_string(),
                    line: i + 1,
                    snippet: raw_line(source, i),
                });
            }
        }
    }
}

/// Rule `shape-assert`: a function that consumes two or more tensor-like
/// operands (`Matrix`, `&[f32]`, `Vec<f32>`, or a `Matrix` receiver)
/// must carry a shape assertion whose message names the function
/// (`"<name>: ..."`), so a mismatch panics with actionable context.
pub fn check_shape_asserts(
    rel: &str,
    source: &str,
    stripped: &str,
    test_lines: &[bool],
    allows: &[HashSet<Rule>],
    findings: &mut Vec<Finding>,
) {
    let raw_lines: Vec<&str> = source.lines().collect();
    for f in function_spans(stripped) {
        let in_matrix_impl = f.impl_self.as_deref() == Some("Matrix");
        let operands = tensor_operands(&f.sig, in_matrix_impl);
        if operands < 2
            || test_lines.get(f.sig_line).copied().unwrap_or(false)
            || allowed(allows, f.sig_line, Rule::ShapeAssert)
        {
            continue;
        }
        let body = raw_lines[f.body_start..=f.body_end.min(raw_lines.len() - 1)].join("\n");
        let names_op = body.contains(&format!("{}:", f.name));
        let has_assert = body.contains("assert");
        // Delegation pattern: the op passes its own name as a string
        // literal to a shared checked kernel (e.g. `zip_with(other,
        // "add", ..)`), which formats it into the assertion message.
        let delegates = body.contains(&format!("\"{}\"", f.name));
        if !((has_assert && names_op) || delegates) {
            findings.push(Finding {
                rule: Rule::ShapeAssert,
                file: rel.to_string(),
                line: f.sig_line + 1,
                snippet: format!(
                    "fn {} takes {} tensor operands but has no shape assertion naming it",
                    f.name, operands
                ),
            });
        }
    }
}

/// Count tensor-like operands in a signature's parameter list.
fn tensor_operands(sig: &str, in_matrix_impl: bool) -> usize {
    let params = match (sig.find('('), sig.rfind(')')) {
        (Some(open), Some(close)) if close > open => &sig[open + 1..close],
        _ => return 0,
    };
    let mut n = 0;
    for param in split_params(params) {
        let p = param.trim();
        if p == "self" || p == "&self" || p == "&mut self" {
            if in_matrix_impl {
                n += 1;
            }
            continue;
        }
        let ty = p.split(':').nth(1).unwrap_or("").trim();
        let base = ty.trim_start_matches('&').trim_start_matches("mut ").trim();
        if base.starts_with("Matrix")
            || base.starts_with("[f32]")
            || base.starts_with("Vec<f32>")
            || base.starts_with("[f32;")
        {
            n += 1;
        }
    }
    n
}

/// Split a parameter list at top-level commas (angle brackets, brackets
/// and parens nest).
fn split_params(params: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0isize;
    let mut start = 0;
    for (k, c) in params.char_indices() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth -= 1,
            ',' if depth == 0 => {
                out.push(&params[start..k]);
                start = k + 1;
            }
            _ => {}
        }
    }
    out.push(&params[start..]);
    out
}

/// Item keywords that require documentation when `pub`.
const DOC_ITEMS: [&str; 8] = [
    "fn", "struct", "enum", "trait", "mod", "const", "static", "type",
];

/// Rule `doc-pub`: public items in the API crates must carry docs.
pub fn check_doc_pub(
    rel: &str,
    source: &str,
    stripped: &str,
    test_lines: &[bool],
    allows: &[HashSet<Rule>],
    findings: &mut Vec<Finding>,
) {
    let raw_lines: Vec<&str> = source.lines().collect();
    let stripped_lines: Vec<&str> = stripped.lines().collect();
    let attr_lines = attribute_lines(&stripped_lines);
    for (i, line) in stripped_lines.iter().enumerate() {
        if test_lines.get(i).copied().unwrap_or(false) || allowed(allows, i, Rule::DocPub) {
            continue;
        }
        let t = line.trim_start();
        let Some(rest) = t.strip_prefix("pub ") else {
            continue;
        };
        let word = rest
            .trim_start_matches("unsafe ")
            .trim_start_matches("const ")
            .trim_start_matches("async ")
            .split_whitespace()
            .next()
            .unwrap_or("");
        if !DOC_ITEMS.contains(&word) {
            continue;
        }
        // `pub const fn` keeps `fn` as the item; `pub const NAME` keeps
        // `const`. Both forms land in DOC_ITEMS, so either way this is a
        // documentable public item.
        if !has_doc_above(&raw_lines, &attr_lines, i) {
            let name = rest
                .split(['(', '<', '{', ':'])
                .next()
                .unwrap_or(rest)
                .trim()
                .trim_end_matches(';');
            findings.push(Finding {
                rule: Rule::DocPub,
                file: rel.to_string(),
                line: i + 1,
                snippet: format!("undocumented public item: pub {name}"),
            });
        }
    }
}

/// Mark lines occupied by (possibly multi-line) outer attributes.
fn attribute_lines(stripped_lines: &[&str]) -> Vec<bool> {
    let mut flags = vec![false; stripped_lines.len()];
    let mut i = 0;
    while i < stripped_lines.len() {
        let t = stripped_lines[i].trim_start();
        if t.starts_with("#[") || t.starts_with("#![") {
            let mut depth = 0isize;
            let mut j = i;
            'outer: while j < stripped_lines.len() {
                for c in stripped_lines[j].chars() {
                    match c {
                        '[' => depth += 1,
                        ']' => {
                            depth -= 1;
                            if depth == 0 {
                                break 'outer;
                            }
                        }
                        _ => {}
                    }
                }
                j += 1;
            }
            for flag in flags.iter_mut().take(j + 1).skip(i) {
                *flag = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    flags
}

/// Whether the item starting at line `i` has a `///` or `#[doc` line
/// directly above it (attributes between docs and item are fine).
fn has_doc_above(raw_lines: &[&str], attr_lines: &[bool], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = raw_lines[j].trim_start();
        if attr_lines.get(j).copied().unwrap_or(false) {
            if t.contains("#[doc") {
                return true;
            }
            continue;
        }
        if t.starts_with("///") || t.starts_with("//!") {
            return true;
        }
        // Plain comments are transparent to the parser: a doc comment
        // further up still attaches to the item through them.
        if t.starts_with("//") {
            continue;
        }
        return false;
    }
    false
}

// ---------------------------------------------------------------------
// hash-iter-order
// ---------------------------------------------------------------------

/// Methods that yield a hash container's elements in unspecified order.
const HASH_ITER_METHODS: [&str; 7] = [
    ".iter()",
    ".iter_mut()",
    ".into_iter()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
];

/// Identifiers declared with hash-container types in one file.
#[derive(Debug, Default)]
struct HashIdents {
    /// Declared directly as `HashMap`/`HashSet` (possibly behind `&`):
    /// any element-yielding method call leaks iteration order.
    direct: HashSet<String>,
    /// Declared as a container *of* hash containers (`Vec<HashMap<..>>`):
    /// only indexed access followed by iteration leaks order.
    nested: HashSet<String>,
}

/// Collect identifiers whose declared type (or constructor) names a std
/// hash container: `let m: HashMap<..>`, `let m = HashMap::new()`,
/// struct fields and fn params `m: &mut HashSet<..>`, and nested forms
/// like `counts: Vec<HashMap<..>>`.
fn collect_hash_idents(stripped: &str) -> HashIdents {
    let mut out = HashIdents::default();
    for line in stripped.lines() {
        let t = line.trim_start();
        if t.starts_with("use ") {
            continue;
        }
        for token in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(pos) = line[from..].find(token) {
                let abs = from + pos;
                from = abs + token.len();
                // Token boundaries: not part of a longer identifier, and
                // actually used as a type/constructor (`<`, `::`, `>`,
                // `,`, `)` or end follow it).
                if line[..abs]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    continue;
                }
                let after = line[abs + token.len()..].chars().next();
                if after.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                    continue;
                }
                let Some((ident, sep, sep_pos)) = declared_ident(&line[..abs]) else {
                    continue;
                };
                if ident.is_empty() {
                    continue;
                }
                let type_prefix = line[sep_pos + 1..abs].trim();
                let direct = sep == '='
                    || type_prefix
                        .trim_start_matches('&')
                        .trim_start_matches("'static")
                        .trim_start_matches("mut")
                        .trim()
                        .trim_start_matches("std::collections::")
                        .is_empty();
                if direct {
                    out.direct.insert(ident);
                } else {
                    out.nested.insert(ident);
                }
            }
        }
    }
    out
}

/// The identifier being declared left of a hash-type occurrence: walk
/// back from the end of `before` to the nearest `:` (type ascription;
/// `::` paths don't count) or `=` (constructor binding; `==`/`=>`/`<=`
/// etc. don't count), then take the identifier preceding it.
fn declared_ident(before: &str) -> Option<(String, char, usize)> {
    let bytes = before.as_bytes();
    let mut k = bytes.len();
    while k > 0 {
        k -= 1;
        match bytes[k] {
            b':' => {
                let part_of_path =
                    (k > 0 && bytes[k - 1] == b':') || bytes.get(k + 1).copied() == Some(b':');
                if part_of_path {
                    // Skip the whole `::`.
                    if k > 0 && bytes[k - 1] == b':' {
                        k -= 1;
                    }
                    continue;
                }
                let ident = trailing_ident(&before[..k]);
                return Some((ident, ':', k));
            }
            b'=' => {
                let prev = if k > 0 { bytes[k - 1] } else { b' ' };
                let next = bytes.get(k + 1).copied().unwrap_or(b' ');
                if matches!(
                    prev,
                    b'=' | b'!'
                        | b'<'
                        | b'>'
                        | b'+'
                        | b'-'
                        | b'*'
                        | b'/'
                        | b'%'
                        | b'&'
                        | b'|'
                        | b'^'
                ) || matches!(next, b'=' | b'>')
                {
                    continue;
                }
                let ident = trailing_ident(&before[..k]);
                return Some((ident, '=', k));
            }
            _ => {}
        }
    }
    None
}

/// The trailing identifier of `s`, after trimming whitespace and
/// `&`/`mut` qualifiers.
fn trailing_ident(s: &str) -> String {
    let s = s.trim_end();
    let ident: String = s
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    ident
}

/// Byte offset of each line start, for mapping match positions to lines.
fn line_offsets(text: &str) -> Vec<usize> {
    let mut offsets = vec![0usize];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            offsets.push(i + 1);
        }
    }
    offsets
}

/// 0-based line of byte position `pos`.
fn line_of(offsets: &[usize], pos: usize) -> usize {
    match offsets.binary_search(&pos) {
        Ok(i) => i,
        Err(i) => i - 1,
    }
}

/// Rule `hash-iter-order`: iteration over `std` `HashMap`/`HashSet` in
/// result-affecting library code. Hash iteration order is unspecified
/// and differs between runs, so any value it feeds — a majority vote, a
/// float accumulation, an output row order — silently breaks the
/// bitwise-reproducibility contract. Use `BTreeMap`/`BTreeSet`, sort
/// before consuming, or justify with an allow when the consumer is
/// provably order-insensitive (e.g. an integer sum).
pub fn check_hash_iter_order(
    rel: &str,
    source: &str,
    stripped: &str,
    test_lines: &[bool],
    allows: &[HashSet<Rule>],
    findings: &mut Vec<Finding>,
) {
    let idents = collect_hash_idents(stripped);
    if idents.direct.is_empty() && idents.nested.is_empty() {
        return;
    }
    let offsets = line_offsets(stripped);
    let mut hits: Vec<usize> = Vec::new(); // 0-based lines

    for (name, nested) in idents
        .direct
        .iter()
        .map(|n| (n, false))
        .chain(idents.nested.iter().map(|n| (n, true)))
    {
        let mut from = 0;
        while let Some(pos) = stripped[from..].find(name.as_str()) {
            let abs = from + pos;
            from = abs + name.len();
            // Word boundaries around the identifier.
            if stripped[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                continue;
            }
            let mut rest = &stripped[abs + name.len()..];
            if rest
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                continue;
            }
            if nested {
                // Require an index expression: `counts[attr].iter()`.
                let Some(r) = skip_index_expr(rest) else {
                    continue;
                };
                rest = r;
            }
            // Allow rustfmt-split method chains: the iterating method may
            // start on the next line.
            let trimmed = rest.trim_start();
            let method_pos = stripped.len() - trimmed.len();
            if HASH_ITER_METHODS.iter().any(|m| trimmed.starts_with(m)) {
                hits.push(line_of(&offsets, method_pos));
                continue;
            }
            // `for x in map {` / `for x in &map {` — iteration without a
            // method call.
            if !nested && is_for_in_target(&stripped[..abs], rest) {
                hits.push(line_of(&offsets, abs));
            }
        }
    }

    hits.sort_unstable();
    hits.dedup();
    for i in hits {
        if test_lines.get(i).copied().unwrap_or(false) || allowed(allows, i, Rule::HashIterOrder) {
            continue;
        }
        findings.push(Finding {
            rule: Rule::HashIterOrder,
            file: rel.to_string(),
            line: i + 1,
            snippet: raw_line(source, i),
        });
    }
}

/// If `rest` opens an index expression `[...]`, return the text after
/// the matching `]`.
fn skip_index_expr(rest: &str) -> Option<&str> {
    if !rest.starts_with('[') {
        return None;
    }
    let mut depth = 0isize;
    for (k, c) in rest.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[k + 1..]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Whether an identifier occurrence is the target of a `for .. in`
/// loop: preceded by `in` (with optional `&`/`&mut`), followed by a
/// block opener or end of expression.
fn is_for_in_target(before: &str, rest: &str) -> bool {
    let next_ok = matches!(rest.trim_start().chars().next(), Some('{') | None);
    if !next_ok {
        return false;
    }
    let b = before.trim_end();
    let b = b
        .strip_suffix("&mut")
        .map(str::trim_end)
        .or_else(|| b.strip_suffix('&').map(str::trim_end))
        .unwrap_or(b);
    b.ends_with(" in") || b.ends_with("\nin")
}

// ---------------------------------------------------------------------
// float-reduce-order
// ---------------------------------------------------------------------

/// Explicitly floating-point reduction tokens.
const FLOAT_REDUCE_TOKENS: [&str; 5] = [
    ".sum::<f32>()",
    ".sum::<f64>()",
    ".product::<f32>()",
    ".product::<f64>()",
    ".mul_add(",
];

/// Order-insensitive float reductions carved out of the rule: min/max
/// form a lattice, so iteration order cannot change the result (modulo
/// NaN, which the `sanitize` feature traps separately).
const LATTICE_TOKENS: [&str; 4] = ["::max", "::min", ".max(", ".min("];

/// Rule `float-reduce-order`: order-sensitive float reductions outside
/// the blessed kernel modules. Float addition does not associate, so the
/// bitwise-determinism contract requires every result-affecting
/// reduction to run through the pinned ascending-k kernels in
/// `etsb-tensor` — an ad-hoc `.sum::<f32>()` or float `fold` elsewhere
/// is one refactor away from a silently different answer.
pub fn check_float_reduce_order(
    rel: &str,
    source: &str,
    stripped: &str,
    test_lines: &[bool],
    allows: &[HashSet<Rule>],
    findings: &mut Vec<Finding>,
) {
    let lines: Vec<&str> = stripped.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if test_lines.get(i).copied().unwrap_or(false) || allowed(allows, i, Rule::FloatReduceOrder)
        {
            continue;
        }
        let mut hit = false;
        for token in FLOAT_REDUCE_TOKENS {
            if count_token(line, token) > 0 {
                hit = true;
            }
        }
        // `.fold(` with a float-literal or float-constant init is a
        // float reduction; min/max folds are order-insensitive.
        if !hit {
            let mut from = 0;
            while let Some(pos) = line[from..].find(".fold(") {
                let abs = from + pos;
                from = abs + ".fold(".len();
                let arg = line[abs + ".fold(".len()..].trim_start();
                if float_init(arg) {
                    // Check this line and the next for a lattice op.
                    let window = format!("{}\n{}", line, lines.get(i + 1).unwrap_or(&""));
                    if !LATTICE_TOKENS.iter().any(|t| window.contains(t)) {
                        hit = true;
                    }
                }
            }
        }
        if hit {
            findings.push(Finding {
                rule: Rule::FloatReduceOrder,
                file: rel.to_string(),
                line: i + 1,
                snippet: raw_line(source, i),
            });
        }
    }
}

/// Whether a `fold` init expression looks like a float: `0.0`, `-1.5`,
/// `0.0_f32`, `f32::INFINITY`, `f64::MIN`, ...
fn float_init(arg: &str) -> bool {
    let arg = arg.strip_prefix('-').unwrap_or(arg);
    if arg.starts_with("f32::") || arg.starts_with("f64::") {
        return true;
    }
    let digits: usize = arg.chars().take_while(|c| c.is_ascii_digit()).count();
    digits > 0 && arg[digits..].starts_with('.')
}

// ---------------------------------------------------------------------
// fast-math-confinement
// ---------------------------------------------------------------------

/// Fast-math primitives that must stay inside the blessed SIMD kernel
/// directory: fused multiply-add (one rounding where the exact contract
/// requires two), direct architecture intrinsics, and per-function
/// codegen overrides.
const FAST_MATH_TOKENS: [&str; 4] = [".mul_add(", "std::arch", "core::arch", "target_feature("];

/// Rule `fast-math-confinement`: `mul_add`, `std::arch`/`core::arch`
/// intrinsics and `#[target_feature]` are only permitted inside
/// `crates/tensor/src/simd/` (the path gate lives in
/// [`crate::SIMD_BLESSED_PREFIX`]; this pass runs on every other file,
/// test code included — a fused reference value in a test can mask the
/// very divergence the exact path forbids).
pub fn check_fast_math_confinement(
    rel: &str,
    source: &str,
    stripped: &str,
    allows: &[HashSet<Rule>],
    findings: &mut Vec<Finding>,
) {
    for (i, line) in stripped.lines().enumerate() {
        if allowed(allows, i, Rule::FastMathConfinement) {
            continue;
        }
        for token in FAST_MATH_TOKENS {
            for _ in 0..count_token(line, token) {
                findings.push(Finding {
                    rule: Rule::FastMathConfinement,
                    file: rel.to_string(),
                    line: i + 1,
                    snippet: raw_line(source, i),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// into-no-alloc / into-shape-assert
// ---------------------------------------------------------------------

/// Tokens that allocate; forbidden in `_into` kernel bodies. The
/// workspace pattern is `out.resize_zeroed(..)` over pooled buffers —
/// amortized to zero once warm — so anything constructing fresh heap
/// storage inside a kernel defeats the design.
const ALLOC_TOKENS: [&str; 14] = [
    "Vec::new(",
    "Vec::with_capacity(",
    "vec![",
    ".to_vec()",
    ".collect()",
    ".collect::<",
    "Matrix::zeros(",
    "Matrix::new(",
    "Matrix::full(",
    "String::new(",
    "format!(",
    ".to_string()",
    "Box::new(",
    ".clone()",
];

/// Rule `into-no-alloc`: `_into` kernels must not allocate. This is the
/// static twin of the counting-allocator regression test — the runtime
/// test proves the steady state is allocation-free, this rule stops an
/// edit from re-introducing a per-call allocation that the test's warmup
/// might mask.
pub fn check_into_no_alloc(
    rel: &str,
    source: &str,
    stripped: &str,
    test_lines: &[bool],
    allows: &[HashSet<Rule>],
    findings: &mut Vec<Finding>,
) {
    let lines: Vec<&str> = stripped.lines().collect();
    for f in function_spans(stripped) {
        if !f.name.ends_with("_into") || test_lines.get(f.sig_line).copied().unwrap_or(false) {
            continue;
        }
        let end = f.body_end.min(lines.len().saturating_sub(1));
        for (i, line) in lines.iter().enumerate().take(end + 1).skip(f.body_start) {
            if allowed(allows, i, Rule::IntoNoAlloc) {
                continue;
            }
            for token in ALLOC_TOKENS {
                for _ in 0..count_token(line, token) {
                    findings.push(Finding {
                        rule: Rule::IntoNoAlloc,
                        file: rel.to_string(),
                        line: i + 1,
                        snippet: format!("fn {}: {}", f.name, raw_line(source, i)),
                    });
                }
            }
        }
    }
}

/// How many leading body lines `into-shape-assert` scans for an assert.
const INTO_ASSERT_WINDOW: usize = 10;

/// Rule `into-shape-assert`: every public `_into` kernel must open with
/// a shape assertion. `_into` kernels write through caller-provided
/// buffers; a silent shape mismatch corrupts memory layouts instead of
/// panicking with context, so the precondition must be checked before
/// any arithmetic runs.
pub fn check_into_shape_assert(
    rel: &str,
    _source: &str,
    stripped: &str,
    test_lines: &[bool],
    allows: &[HashSet<Rule>],
    findings: &mut Vec<Finding>,
) {
    let lines: Vec<&str> = stripped.lines().collect();
    for f in function_spans(stripped) {
        if !f.name.ends_with("_into")
            || !f.is_pub
            || test_lines.get(f.sig_line).copied().unwrap_or(false)
            || allowed(allows, f.sig_line, Rule::IntoShapeAssert)
        {
            continue;
        }
        let end = f
            .body_end
            .min(f.body_start + INTO_ASSERT_WINDOW)
            .min(lines.len().saturating_sub(1));
        let opens_with_assert = (f.body_start..=end).any(|i| lines[i].contains("assert"));
        if !opens_with_assert {
            findings.push(Finding {
                rule: Rule::IntoShapeAssert,
                file: rel.to_string(),
                line: f.sig_line + 1,
                snippet: format!(
                    "pub fn {} writes through caller buffers but opens without a shape assert",
                    f.name
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// unsafe-safety-comment
// ---------------------------------------------------------------------

/// Rule `unsafe-safety-comment`: every `unsafe` block, fn, or impl must
/// be justified by a `// SAFETY:` comment on the same line or directly
/// above it (attributes and blank lines are transparent).
pub fn check_unsafe_safety_comment(
    rel: &str,
    source: &str,
    stripped: &str,
    allows: &[HashSet<Rule>],
    findings: &mut Vec<Finding>,
) {
    let raw_lines: Vec<&str> = source.lines().collect();
    for (i, line) in stripped.lines().enumerate() {
        if allowed(allows, i, Rule::UnsafeSafetyComment) {
            continue;
        }
        let mut from = 0;
        let mut flagged = false;
        while let Some(pos) = line[from..].find("unsafe") {
            let abs = from + pos;
            from = abs + "unsafe".len();
            if flagged {
                break;
            }
            // Word boundaries: `unsafe_code` in a lint attribute is not
            // the keyword.
            if line[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                continue;
            }
            let after = line[abs + "unsafe".len()..].trim_start();
            if after
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
                && !after.starts_with("fn ")
                && !after.starts_with("impl ")
                && !after.starts_with("impl<")
                && !after.starts_with("trait ")
            {
                continue;
            }
            if !after.starts_with('{')
                && !after.starts_with("fn ")
                && !after.starts_with("impl ")
                && !after.starts_with("impl<")
                && !after.starts_with("trait ")
                && !after.is_empty()
            {
                continue;
            }
            if !has_safety_comment(&raw_lines, i) {
                flagged = true;
                findings.push(Finding {
                    rule: Rule::UnsafeSafetyComment,
                    file: rel.to_string(),
                    line: i + 1,
                    snippet: raw_line(source, i),
                });
            }
        }
    }
}

/// Whether the `unsafe` on raw line `i` is covered by a `SAFETY:`
/// comment: same line, or in the comment block directly above (blank
/// lines and attributes are transparent).
fn has_safety_comment(raw_lines: &[&str], i: usize) -> bool {
    if raw_lines.get(i).is_some_and(|l| l.contains("SAFETY:")) {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = raw_lines[j].trim_start();
        if t.is_empty() || t.starts_with("#[") || t.starts_with("#![") {
            continue;
        }
        if t.starts_with("//") {
            if t.contains("SAFETY:") {
                return true;
            }
            continue;
        }
        return false;
    }
    false
}

/// The raw source line at 0-based index `i`, trimmed for reporting.
fn raw_line(source: &str, i: usize) -> String {
    source.lines().nth(i).unwrap_or("").trim().to_string()
}
