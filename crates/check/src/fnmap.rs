//! Function-span extraction: the lightweight "body layer" the semantic
//! rules reason over.
//!
//! [`function_spans`] walks stripped source (see [`crate::strip`]) and
//! returns one [`FnSpan`] per function with a body: its name, full
//! signature text, visibility, the enclosing `impl` self-type, and the
//! line span of its body. Rules use the spans to ask questions like
//! "does this `_into` kernel allocate?" or "which identifiers declared
//! in this body have hash-container types?" without a real parser —
//! precise enough for this rustfmt-formatted workspace, simple enough to
//! audit by reading one file.

/// One function with a body, located in stripped source.
#[derive(Clone, Debug)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// Signature text from the `fn` keyword up to the opening `{`
    /// (newlines collapsed to spaces).
    pub sig: String,
    /// Whether the declaration carries any `pub` qualifier
    /// (`pub`, `pub(crate)`, `pub(super)`).
    pub is_pub: bool,
    /// 0-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 0-based line holding the body's opening `{`.
    pub body_start: usize,
    /// 0-based line holding the body's closing `}` (inclusive).
    pub body_end: usize,
    /// Self-type of the enclosing `impl` block, if any
    /// (`impl Matrix` and `impl Trait for Matrix` both yield `Matrix`).
    pub impl_self: Option<String>,
}

/// Parse function signatures and body spans from stripped source.
/// Trait-method declarations without bodies are skipped.
pub fn function_spans(stripped: &str) -> Vec<FnSpan> {
    let lines: Vec<&str> = stripped.lines().collect();
    let mut out = Vec::new();
    let mut impl_stack: Vec<(usize, Option<String>)> = Vec::new(); // (open depth, self-type)
    let mut depth = 0usize;
    let mut i = 0;
    while i < lines.len() {
        let t = lines[i].trim_start();
        if t.starts_with("impl ") || t.starts_with("impl<") {
            impl_stack.push((depth, impl_target(t)));
        }
        if let Some(fn_col) = fn_keyword_pos(t) {
            let name: String = t[fn_col + 3..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            // Collect the signature until its opening `{` (or `;` for a
            // bodiless trait-method declaration).
            let mut sig = String::new();
            let mut j = i;
            let mut body_start = None;
            while j < lines.len() {
                let line = lines[j];
                if let Some(brace) = sig_terminator(line, &sig) {
                    sig.push_str(&line[..brace]);
                    if line.as_bytes().get(brace) == Some(&b'{') {
                        body_start = Some(j);
                    }
                    break;
                }
                sig.push_str(line);
                sig.push(' ');
                j += 1;
            }
            if let Some(start) = body_start {
                let end = item_end(&lines, start);
                out.push(FnSpan {
                    name,
                    is_pub: t.starts_with("pub"),
                    sig,
                    sig_line: i,
                    body_start: start,
                    body_end: end,
                    impl_self: impl_stack.last().and_then(|(_, s)| s.clone()),
                });
                // Functions may contain nested closures but not nested
                // `fn` items in this workspace; advance past the
                // signature only, so inner `impl` blocks still register.
            }
        }
        depth += lines[i].matches('{').count();
        depth = depth.saturating_sub(lines[i].matches('}').count());
        while let Some(&(open_depth, _)) = impl_stack.last() {
            if depth <= open_depth && lines[i].contains('}') {
                impl_stack.pop();
            } else {
                break;
            }
        }
        i += 1;
    }
    out
}

/// Index of the last line of the item starting at (or just after) the
/// attribute on line `start`: scans to the `;` of a bodiless item or the
/// matching `}` of its block.
pub fn item_end(lines: &[&str], start: usize) -> usize {
    let mut depth = 0usize;
    let mut seen_open = false;
    for (j, line) in lines.iter().enumerate().skip(start) {
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    seen_open = true;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if seen_open && depth == 0 {
                        return j;
                    }
                }
                ';' if !seen_open && depth == 0 && j > start => return j,
                _ => {}
            }
        }
        // `#[cfg(test)] use foo;` on a single line.
        if j == start && !seen_open && line.contains(';') {
            return j;
        }
    }
    lines.len().saturating_sub(1)
}

/// Column of the `fn ` keyword on a trimmed line, if the line declares a
/// function (`fn`, `pub fn`, `pub(crate) fn`, `const fn`, `unsafe fn`).
pub fn fn_keyword_pos(t: &str) -> Option<usize> {
    if t.starts_with("fn ") {
        return Some(0);
    }
    for prefix in [
        "pub fn ",
        "pub(crate) fn ",
        "pub(super) fn ",
        "const fn ",
        "pub const fn ",
        "unsafe fn ",
        "pub unsafe fn ",
        "pub(crate) unsafe fn ",
        "pub const unsafe fn ",
    ] {
        if t.starts_with(prefix) {
            return Some(prefix.len() - 3);
        }
    }
    None
}

/// Position in `line` where the signature ends: the opening `{` or a
/// terminating `;`, at paren depth 0 relative to `so_far`.
fn sig_terminator(line: &str, so_far: &str) -> Option<usize> {
    let mut depth = so_far.matches('(').count() as isize - so_far.matches(')').count() as isize;
    for (k, c) in line.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth -= 1,
            '{' | ';' if depth <= 0 => return Some(k),
            _ => {}
        }
    }
    None
}

/// The self-type of an `impl` line: `impl Matrix {` → `Matrix`,
/// `impl Trait for Matrix {` → `Matrix`.
fn impl_target(t: &str) -> Option<String> {
    let mut rest = t.strip_prefix("impl")?;
    if rest.starts_with('<') {
        let mut depth = 0isize;
        let mut after = rest.len();
        for (k, c) in rest.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        after = k + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &rest[after..];
    }
    let rest = rest.trim_start();
    let rest = match rest.find(" for ") {
        Some(pos) => &rest[pos + 5..],
        None => rest,
    };
    let name: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

#[cfg(test)]
mod tests {
    use super::function_spans;

    #[test]
    fn extracts_names_visibility_and_spans() {
        let src = "\
impl Matrix {
    pub fn add(&self, other: &Matrix) -> Matrix {
        body();
    }

    fn helper(x: usize) -> usize {
        x + 1
    }
}

pub fn free_standing() {
    work();
}
";
        let spans = function_spans(src);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "add");
        assert!(spans[0].is_pub);
        assert_eq!(spans[0].impl_self.as_deref(), Some("Matrix"));
        assert_eq!((spans[0].body_start, spans[0].body_end), (1, 3));
        assert_eq!(spans[1].name, "helper");
        assert!(!spans[1].is_pub);
        assert_eq!(spans[2].name, "free_standing");
        assert!(spans[2].is_pub);
        assert_eq!(spans[2].impl_self, None);
    }

    #[test]
    fn multi_line_signatures_and_trait_declarations() {
        let src = "\
trait T {
    fn declared_only(&self) -> usize;
}
pub fn long_sig(
    a: usize,
    b: usize,
) -> usize {
    a + b
}
";
        let spans = function_spans(src);
        assert_eq!(spans.len(), 1, "bodiless declaration must be skipped");
        assert_eq!(spans[0].name, "long_sig");
        assert!(spans[0].sig.contains("a: usize"));
        assert!(spans[0].sig.contains("b: usize"));
    }
}
