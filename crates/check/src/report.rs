//! Machine-readable report emission and validation for CI.
//!
//! `--json` serializes a [`Report`] through the workspace's own JSON
//! layer (`etsb-obs`), and `--validate-json` re-parses a written report
//! against the schema below — mirroring the `BENCH_hotpath.json`
//! emit-then-validate gate so a malformed report fails the pipeline
//! instead of being silently mis-read by a dashboard.
//!
//! Schema (version 1):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "tool": "etsb-check",
//!   "files_scanned": 120,
//!   "clean": true,
//!   "rules": [
//!     {"rule": "no-unwrap", "severity": "high",
//!      "violations": 0, "baselined": 0}
//!   ],
//!   "violations":  [{"rule": "...", "severity": "...", "file": "...",
//!                    "line": 1, "snippet": "..."}],
//!   "baselined":   [ ...same shape... ],
//!   "ratchet_slack": [{"rule": "...", "file": "...",
//!                      "current": 1, "budget": 2}],
//!   "stale_entries": [{"rule": "...", "file": "..."}]
//! }
//! ```

use crate::{Finding, Report, Rule};
use etsb_obs::json::{parse, Value};

/// Schema version stamped into every report.
pub const SCHEMA_VERSION: u64 = 1;

fn finding_value(f: &Finding) -> Value {
    Value::obj([
        ("rule".to_string(), Value::from(f.rule.name())),
        (
            "severity".to_string(),
            Value::from(f.rule.severity().name()),
        ),
        ("file".to_string(), Value::from(f.file.as_str())),
        ("line".to_string(), Value::from(f.line)),
        ("snippet".to_string(), Value::from(f.snippet.as_str())),
    ])
}

/// Serialize a report (plus the scanned-file count) to schema-v1 JSON.
pub fn json_report(report: &Report, files_scanned: usize) -> String {
    let per_rule: Vec<Value> = Rule::all()
        .iter()
        .map(|r| {
            let v = report.violations.iter().filter(|f| f.rule == *r).count();
            let b = report.baselined.iter().filter(|f| f.rule == *r).count();
            Value::obj([
                ("rule".to_string(), Value::from(r.name())),
                ("severity".to_string(), Value::from(r.severity().name())),
                ("violations".to_string(), Value::from(v)),
                ("baselined".to_string(), Value::from(b)),
            ])
        })
        .collect();
    Value::obj([
        ("schema_version".to_string(), Value::from(SCHEMA_VERSION)),
        ("tool".to_string(), Value::from("etsb-check")),
        ("files_scanned".to_string(), Value::from(files_scanned)),
        ("clean".to_string(), Value::from(report.is_clean())),
        ("rules".to_string(), Value::Arr(per_rule)),
        (
            "violations".to_string(),
            Value::Arr(report.violations.iter().map(finding_value).collect()),
        ),
        (
            "baselined".to_string(),
            Value::Arr(report.baselined.iter().map(finding_value).collect()),
        ),
        (
            "ratchet_slack".to_string(),
            Value::Arr(
                report
                    .ratchet_slack
                    .iter()
                    .map(|(rule, file, current, budget)| {
                        Value::obj([
                            ("rule".to_string(), Value::from(rule.as_str())),
                            ("file".to_string(), Value::from(file.as_str())),
                            ("current".to_string(), Value::from(*current)),
                            ("budget".to_string(), Value::from(*budget)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "stale_entries".to_string(),
            Value::Arr(
                report
                    .stale_entries
                    .iter()
                    .map(|(rule, file)| {
                        Value::obj([
                            ("rule".to_string(), Value::from(rule.as_str())),
                            ("file".to_string(), Value::from(file.as_str())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .to_json()
}

fn require<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing key `{key}`"))
}

fn require_count(v: &Value, key: &str) -> Result<u64, String> {
    let n = require(v, key)?
        .as_f64()
        .ok_or_else(|| format!("`{key}` is not a number"))?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("`{key}` is not a non-negative integer"));
    }
    Ok(n as u64)
}

fn require_arr<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
    match require(v, key)? {
        Value::Arr(items) => Ok(items),
        _ => Err(format!("`{key}` is not an array")),
    }
}

fn known_rule(v: &Value, ctx: &str) -> Result<Rule, String> {
    let name = require(v, "rule")?
        .as_str()
        .ok_or_else(|| format!("{ctx}: `rule` is not a string"))?;
    Rule::from_name(name).ok_or_else(|| format!("{ctx}: unknown rule `{name}`"))
}

fn check_finding(v: &Value, ctx: &str) -> Result<Rule, String> {
    let rule = known_rule(v, ctx)?;
    let sev = require(v, "severity")?
        .as_str()
        .ok_or_else(|| format!("{ctx}: `severity` is not a string"))?;
    if sev != rule.severity().name() {
        return Err(format!(
            "{ctx}: severity `{sev}` does not match rule `{}` (expected `{}`)",
            rule.name(),
            rule.severity().name()
        ));
    }
    require(v, "file")?
        .as_str()
        .ok_or_else(|| format!("{ctx}: `file` is not a string"))?;
    let line = require_count(v, "line").map_err(|e| format!("{ctx}: {e}"))?;
    if line == 0 {
        return Err(format!("{ctx}: `line` must be 1-based"));
    }
    require(v, "snippet")?
        .as_str()
        .ok_or_else(|| format!("{ctx}: `snippet` is not a string"))?;
    Ok(rule)
}

/// Validate a schema-v1 report document. Returns a one-line summary on
/// success, a description of the first problem on failure.
pub fn validate_json_report(text: &str) -> Result<String, String> {
    let doc = parse(text).map_err(|e| e.to_string())?;
    let version = require_count(&doc, "schema_version")?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} unsupported (expected {SCHEMA_VERSION})"
        ));
    }
    let tool = require(&doc, "tool")?
        .as_str()
        .ok_or("`tool` is not a string")?;
    if tool != "etsb-check" {
        return Err(format!("unexpected tool `{tool}`"));
    }
    let files = require_count(&doc, "files_scanned")?;
    if files == 0 {
        return Err("files_scanned is 0 — an empty scan must not pass CI".to_string());
    }
    let clean = match require(&doc, "clean")? {
        Value::Bool(b) => *b,
        _ => return Err("`clean` is not a boolean".to_string()),
    };

    let rules = require_arr(&doc, "rules")?;
    if rules.len() != Rule::all().len() {
        return Err(format!(
            "`rules` has {} entries, expected one per registered rule ({})",
            rules.len(),
            Rule::all().len()
        ));
    }
    let mut rule_violations = 0u64;
    for (i, entry) in rules.iter().enumerate() {
        let ctx = format!("rules[{i}]");
        let rule = known_rule(entry, &ctx)?;
        let sev = require(entry, "severity")?
            .as_str()
            .ok_or_else(|| format!("{ctx}: `severity` is not a string"))?;
        if sev != rule.severity().name() {
            return Err(format!("{ctx}: severity mismatch for `{}`", rule.name()));
        }
        rule_violations += require_count(entry, "violations").map_err(|e| format!("{ctx}: {e}"))?;
        require_count(entry, "baselined").map_err(|e| format!("{ctx}: {e}"))?;
    }

    let violations = require_arr(&doc, "violations")?;
    for (i, v) in violations.iter().enumerate() {
        check_finding(v, &format!("violations[{i}]"))?;
    }
    let baselined = require_arr(&doc, "baselined")?;
    for (i, v) in baselined.iter().enumerate() {
        check_finding(v, &format!("baselined[{i}]"))?;
    }
    if rule_violations != violations.len() as u64 {
        return Err(format!(
            "per-rule violation counts sum to {rule_violations} but `violations` lists {}",
            violations.len()
        ));
    }
    if clean != violations.is_empty() {
        return Err("`clean` contradicts the `violations` array".to_string());
    }

    for (i, entry) in require_arr(&doc, "ratchet_slack")?.iter().enumerate() {
        let ctx = format!("ratchet_slack[{i}]");
        known_rule(entry, &ctx)?;
        require(entry, "file")?
            .as_str()
            .ok_or_else(|| format!("{ctx}: `file` is not a string"))?;
        let current = require_count(entry, "current").map_err(|e| format!("{ctx}: {e}"))?;
        let budget = require_count(entry, "budget").map_err(|e| format!("{ctx}: {e}"))?;
        if current >= budget {
            return Err(format!(
                "{ctx}: current {current} is not below budget {budget}"
            ));
        }
    }
    for (i, entry) in require_arr(&doc, "stale_entries")?.iter().enumerate() {
        let ctx = format!("stale_entries[{i}]");
        known_rule(entry, &ctx)?;
        require(entry, "file")?
            .as_str()
            .ok_or_else(|| format!("{ctx}: `file` is not a string"))?;
    }

    Ok(format!(
        "valid etsb-check report: {} files, {} violation(s), {} baselined, clean={clean}",
        files,
        violations.len(),
        baselined.len(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        Report {
            violations: vec![Finding {
                rule: Rule::HashIterOrder,
                file: "crates/core/src/x.rs".to_string(),
                line: 12,
                snippet: "for (k, v) in map {".to_string(),
            }],
            baselined: vec![Finding {
                rule: Rule::NoUnwrap,
                file: "crates/raha/src/y.rs".to_string(),
                line: 3,
                snippet: "x.unwrap()".to_string(),
            }],
            ratchet_slack: vec![(
                "no-unwrap".to_string(),
                "crates/raha/src/y.rs".to_string(),
                1,
                2,
            )],
            stale_entries: vec![(
                "no-print".to_string(),
                "crates/core/src/gone.rs".to_string(),
            )],
        }
    }

    #[test]
    fn report_round_trips_through_validation() {
        let text = json_report(&sample_report(), 42);
        let summary = validate_json_report(&text).expect("valid");
        assert!(summary.contains("42 files"), "{summary}");
        assert!(summary.contains("1 violation(s)"), "{summary}");
        assert!(summary.contains("clean=false"), "{summary}");
    }

    #[test]
    fn clean_report_validates() {
        let text = json_report(&Report::default(), 7);
        let summary = validate_json_report(&text).expect("valid");
        assert!(summary.contains("clean=true"), "{summary}");
    }

    #[test]
    fn rejects_tampered_reports() {
        let text = json_report(&sample_report(), 42);
        for (from, to, why) in [
            ("\"schema_version\":1", "\"schema_version\":2", "version"),
            ("\"clean\":false", "\"clean\":true", "clean flag"),
            ("\"files_scanned\":42", "\"files_scanned\":0", "empty scan"),
            (
                "\"rule\":\"hash-iter-order\",\"severity\":\"critical\",\"snippet\"",
                "\"rule\":\"hash-iter-order\",\"severity\":\"style\",\"snippet\"",
                "severity mismatch",
            ),
        ] {
            let bad = text.replace(from, to);
            assert_ne!(bad, text, "replacement `{from}` did not apply");
            assert!(validate_json_report(&bad).is_err(), "accepted bad {why}");
        }
        assert!(validate_json_report("{not json").is_err());
    }

    #[test]
    fn rejects_unknown_rule_names() {
        let text = json_report(&sample_report(), 42).replace("hash-iter-order", "mystery-rule");
        let err = validate_json_report(&text).expect_err("must reject");
        assert!(err.contains("mystery-rule"), "{err}");
    }
}
