//! Comment and string-literal stripping.
//!
//! The rule passes match on tokens like `.unwrap()` or `panic!(`; to
//! avoid false positives from prose and test fixtures embedded in
//! strings, they run over a "stripped" view of the source in which
//! comments and literal contents are blanked out (replaced by spaces so
//! line/column numbers survive).

/// Blank out comments, string literals and char literals, preserving the
/// line structure. Handles `//`, `/* ... */` (nested), `"..."` with
/// escapes, raw strings `r"..."` / `r#"..."#`, and char literals —
/// enough for rustfmt-formatted workspace code.
pub fn strip_comments_and_strings(source: &str) -> String {
    #[derive(PartialEq)]
    enum Mode {
        Code,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let mut out = String::with_capacity(source.len());
    let chars: Vec<char> = source.chars().collect();
    let mut mode = Mode::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match mode {
            Mode::Code => match (c, next) {
                ('/', Some('/')) => {
                    mode = Mode::LineComment;
                    out.push_str("  ");
                    i += 2;
                }
                ('/', Some('*')) => {
                    mode = Mode::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                }
                ('"', _) => {
                    mode = Mode::Str;
                    out.push('"');
                    i += 1;
                }
                ('r', Some('"' | '#')) if !prev_ident(&chars, i) => {
                    // Raw string: count the hashes after `r`.
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        mode = Mode::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        out.pop();
                        out.push('"');
                        i = j + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                // Char literal vs. lifetime: a lifetime is `'ident`
                // not followed by a closing quote.
                ('\'', _) if is_char_literal(&chars, i) => {
                    mode = Mode::Char;
                    out.push('\'');
                    i += 1;
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            Mode::LineComment => {
                if c == '\n' {
                    mode = Mode::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            Mode::BlockComment(depth) => match (c, next) {
                ('*', Some('/')) => {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                }
                ('/', Some('*')) => {
                    mode = Mode::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                }
                ('\n', _) => {
                    out.push('\n');
                    i += 1;
                }
                _ => {
                    out.push(' ');
                    i += 1;
                }
            },
            Mode::Str => match (c, next) {
                ('\\', Some(_)) => {
                    out.push_str("  ");
                    i += 2;
                }
                ('"', _) => {
                    mode = Mode::Code;
                    out.push('"');
                    i += 1;
                }
                ('\n', _) => {
                    out.push('\n');
                    i += 1;
                }
                _ => {
                    out.push(' ');
                    i += 1;
                }
            },
            Mode::RawStr(hashes) => {
                if c == '"' && (0..hashes).all(|k| chars.get(i + 1 + k) == Some(&'#')) {
                    mode = Mode::Code;
                    out.push('"');
                    for _ in 0..hashes {
                        out.push(' ');
                    }
                    i += 1 + hashes;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            Mode::Char => match (c, next) {
                ('\\', Some(_)) => {
                    out.push_str("  ");
                    i += 2;
                }
                ('\'', _) => {
                    mode = Mode::Code;
                    out.push('\'');
                    i += 1;
                }
                _ => {
                    out.push(' ');
                    i += 1;
                }
            },
        }
    }
    out
}

/// Whether the char before position `i` continues an identifier (so the
/// `r` at `i` is part of a name like `attr`, not a raw-string prefix).
fn prev_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Heuristic: `'` at `i` starts a char literal (vs. a lifetime) if a
/// closing `'` appears within the next few characters.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::strip_comments_and_strings;

    #[test]
    fn strips_line_and_block_comments() {
        let s = "let x = 1; // unwrap() here is prose\n/* panic!() */ let y = 2;";
        let out = strip_comments_and_strings(s);
        assert!(!out.contains("unwrap"));
        assert!(!out.contains("panic"));
        assert!(out.contains("let x = 1;"));
        assert!(out.contains("let y = 2;"));
    }

    #[test]
    fn strips_string_contents_but_keeps_quotes() {
        let s = r#"let m = "call .unwrap() now"; m.unwrap();"#;
        let out = strip_comments_and_strings(s);
        assert_eq!(out.matches(".unwrap()").count(), 1);
        assert!(out.contains('"'));
    }

    #[test]
    fn handles_escapes_and_chars_and_lifetimes() {
        let s = r#"let q = '"'; let e = "a\"b.unwrap()"; fn f<'a>(x: &'a str) {}"#;
        let out = strip_comments_and_strings(s);
        assert!(!out.contains(".unwrap()"));
        assert!(out.contains("fn f<'a>(x: &'a str) {}"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let s = r##"let r = r#"panic!("inside")"#; done();"##;
        let out = strip_comments_and_strings(s);
        assert!(!out.contains("panic"));
        assert!(out.contains("done();"));
    }

    #[test]
    fn preserves_line_count() {
        let s = "a\n/* multi\nline\ncomment */\nb\n";
        let out = strip_comments_and_strings(s);
        assert_eq!(s.lines().count(), out.lines().count());
    }
}
