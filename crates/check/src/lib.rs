//! `etsb-check`: a dependency-light, source-level static-analysis pass
//! over the workspace — an *invariant auditor* for the contracts that
//! keep the paper's 10-repetition evaluation protocol reproducible, the
//! bitwise-determinism guarantee intact, and the library crates
//! panic-free on malformed input.
//!
//! Enforced rules (each with an `// etsb: allow(<rule>)` escape hatch
//! and an `--explain <rule>` doc entry):
//!
//! * **`no-unwrap`** — no `unwrap()` / `expect()` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` in the non-test code of
//!   library crates. Existing debt lives in a machine-readable baseline
//!   file and may only ratchet down.
//! * **`no-unseeded-rng`** — no `thread_rng()` / `from_entropy()`
//!   anywhere; every generator must derive from
//!   `SeedableRng::seed_from_u64`.
//! * **`shape-assert`** — every two-operand tensor/NN op in
//!   `crates/tensor` and `crates/nn` must carry a shape assertion whose
//!   message names the op (`"op_name: ..."` convention), so mismatches
//!   panic with actionable context.
//! * **`doc-pub`** — public items in `etsb-core` and `etsb-tensor` must
//!   have doc comments.
//! * **`no-print`** — no `println!` / `eprintln!` / `print!` /
//!   `eprint!` in the non-test code of library crates: libraries report
//!   through return values and the `etsb-obs` tracing layer, never by
//!   writing to the process's stdio directly.
//! * **`hash-iter-order`** — no iteration over `std`
//!   `HashMap`/`HashSet` in result-affecting library code; hash order is
//!   unspecified per process, so it must never reach losses,
//!   predictions, manifests or CSV output.
//! * **`float-reduce-order`** — no order-sensitive float reductions
//!   (`.sum::<f32>()`, float `fold`s, `mul_add`) outside the blessed
//!   kernels in `etsb-tensor`; the bitwise contract pins reduction
//!   order in exactly one place.
//! * **`fast-math-confinement`** — `mul_add`, `std::arch`/`core::arch`
//!   intrinsics and `#[target_feature]` only inside the
//!   `crates/tensor/src/simd/` kernel set; fused-multiply-add rounding
//!   must never leak into the exact bitwise paths.
//! * **`into-no-alloc`** — `_into` kernel bodies must not allocate
//!   (static twin of the counting-allocator regression test).
//! * **`into-shape-assert`** — public `_into` kernels must open with a
//!   shape assertion before writing through caller-provided buffers.
//! * **`unsafe-safety-comment`** — every `unsafe` block, fn or impl
//!   needs a `// SAFETY:` justification.
//! * **`no-whole-file-read`** — no `read_to_string` / `fs::read` in the
//!   non-test code of library crates or the CLI: the data path streams
//!   through `BufRead` so peak memory stays O(chunk), and a whole-file
//!   read is one large input away from undoing that. Blessed sites
//!   (bounded model checkpoints, validation tools) carry allow
//!   annotations.
//!
//! The analysis is line-oriented over comment- and string-stripped
//! source, with a lightweight function-span layer ([`fnmap`]) for the
//! body-aware rules. It is intentionally heuristic — precise enough for
//! this workspace's house style (enforced by `rustfmt`), simple enough
//! to audit by reading one file per concern.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod baseline;
pub mod fnmap;
pub mod report;
mod rules;
mod strip;

pub use baseline::Baseline;
pub use report::{json_report, validate_json_report};
pub use strip::strip_comments_and_strings;

/// Library crates in which panicking paths are forbidden (`no-unwrap`).
pub const LIBRARY_CRATES: [&str; 8] = [
    "tensor", "nn", "table", "datasets", "raha", "core", "repair", "serve",
];

/// Crates whose two-operand numeric ops must carry shape assertions.
pub const SHAPE_CHECKED_CRATES: [&str; 2] = ["tensor", "nn"];

/// Crates whose public items must be documented.
pub const DOC_CHECKED_CRATES: [&str; 2] = ["core", "tensor"];

/// Crates in which direct stdio output is forbidden (`no-print`) — the
/// library crates. Binaries (`cli`, `bench`, `check`) and the obs sinks
/// (whose job is writing to stderr) stay exempt.
pub const PRINT_CHECKED_CRATES: [&str; 8] = LIBRARY_CRATES;

/// Crates in which hash-container iteration is forbidden
/// (`hash-iter-order`) — everything whose output can reach losses,
/// predictions, manifests or CSV rows.
pub const HASH_CHECKED_CRATES: [&str; 8] = LIBRARY_CRATES;

/// Crates whose float reductions must run through the blessed kernels
/// (`float-reduce-order`).
pub const FLOAT_CHECKED_CRATES: [&str; 3] = ["tensor", "nn", "core"];

/// The blessed kernel modules: the only files allowed to spell out raw
/// float reductions, because they are where the ascending-k order is
/// pinned and tested.
pub const FLOAT_BLESSED_FILES: [&str; 2] =
    ["crates/tensor/src/matrix.rs", "crates/tensor/src/ops.rs"];

/// The opt-in FastMath kernel set: the only directory allowed to use
/// `mul_add`, `std::arch`/`core::arch` intrinsics and
/// `#[target_feature]` (`fast-math-confinement`), and — like
/// [`FLOAT_BLESSED_FILES`] — exempt from `float-reduce-order`, because
/// its reduction orders are pinned and equivalence-tested there.
pub const SIMD_BLESSED_PREFIX: &str = "crates/tensor/src/simd/";

/// Crates whose `_into` kernels are audited (`into-no-alloc`,
/// `into-shape-assert`).
pub const INTO_CHECKED_CRATES: [&str; 2] = SHAPE_CHECKED_CRATES;

/// How serious a rule violation is. Severity does not change gating —
/// every violation fails the check — it is reporting metadata for the
/// JSON report and the `--explain` docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Violates a load-bearing contract of the reproduction — bitwise
    /// reproducibility (results can silently differ between runs) or
    /// O(chunk) streaming memory (one large input away from OOM).
    Critical,
    /// Violates a robustness or kernel contract: panics without context,
    /// hidden allocation, unjustified `unsafe`.
    High,
    /// Violates house style: documentation and stdio discipline.
    Style,
}

impl Severity {
    /// Lower-case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Critical => "critical",
            Severity::High => "high",
            Severity::Style => "style",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One invariant enforced by the checker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Panicking call in non-test library-crate code.
    NoUnwrap,
    /// Randomness not derived from an explicit seed.
    NoUnseededRng,
    /// Two-operand tensor/NN op without an op-naming shape assertion.
    ShapeAssert,
    /// Public item without a doc comment.
    DocPub,
    /// Direct stdio output in non-test library-crate code.
    NoPrint,
    /// Iteration over a std hash container in result-affecting code.
    HashIterOrder,
    /// Order-sensitive float reduction outside the blessed kernels.
    FloatReduceOrder,
    /// Fast-math primitive (`mul_add`, arch intrinsics,
    /// `#[target_feature]`) outside `crates/tensor/src/simd/`.
    FastMathConfinement,
    /// Allocation inside an `_into` kernel body.
    IntoNoAlloc,
    /// Public `_into` kernel without an opening shape assertion.
    IntoShapeAssert,
    /// `unsafe` without a `// SAFETY:` justification.
    UnsafeSafetyComment,
    /// Whole-file read (`read_to_string` / `fs::read`) on the data path.
    NoWholeFileRead,
}

impl Rule {
    /// The rule's name as written in `// etsb: allow(<name>)` and in the
    /// baseline file.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no-unwrap",
            Rule::NoUnseededRng => "no-unseeded-rng",
            Rule::ShapeAssert => "shape-assert",
            Rule::DocPub => "doc-pub",
            Rule::NoPrint => "no-print",
            Rule::HashIterOrder => "hash-iter-order",
            Rule::FloatReduceOrder => "float-reduce-order",
            Rule::FastMathConfinement => "fast-math-confinement",
            Rule::IntoNoAlloc => "into-no-alloc",
            Rule::IntoShapeAssert => "into-shape-assert",
            Rule::UnsafeSafetyComment => "unsafe-safety-comment",
            Rule::NoWholeFileRead => "no-whole-file-read",
        }
    }

    /// Parse a rule name; used by the allow-annotation parser.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::all().into_iter().find(|r| r.name() == name)
    }

    /// All rules, in report order.
    pub fn all() -> [Rule; 12] {
        [
            Rule::NoUnwrap,
            Rule::NoUnseededRng,
            Rule::ShapeAssert,
            Rule::DocPub,
            Rule::NoPrint,
            Rule::HashIterOrder,
            Rule::FloatReduceOrder,
            Rule::FastMathConfinement,
            Rule::IntoNoAlloc,
            Rule::IntoShapeAssert,
            Rule::UnsafeSafetyComment,
            Rule::NoWholeFileRead,
        ]
    }

    /// The rule's severity class.
    pub fn severity(self) -> Severity {
        match self {
            Rule::NoUnseededRng
            | Rule::HashIterOrder
            | Rule::FloatReduceOrder
            | Rule::FastMathConfinement
            | Rule::NoWholeFileRead => Severity::Critical,
            Rule::NoUnwrap
            | Rule::ShapeAssert
            | Rule::IntoNoAlloc
            | Rule::IntoShapeAssert
            | Rule::UnsafeSafetyComment => Severity::High,
            Rule::DocPub | Rule::NoPrint => Severity::Style,
        }
    }

    /// Long-form documentation shown by `--explain <rule>`: the contract
    /// the rule guards, the runtime test it twins, how to fix a hit, and
    /// when an allow annotation is legitimate.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::NoUnwrap => {
                "no-unwrap (high)\n\
                 Contract: library crates must not panic on malformed input; errors\n\
                 flow through Result so the CLI can report them with context.\n\
                 Twin runtime check: the CSV/Dataset error-path tests in etsb-table\n\
                 and etsb-datasets.\n\
                 Fix: return Result, restructure so the invariant is expressed in\n\
                 the types (let-else, unwrap_or, match), or prove the invariant\n\
                 locally and use an allow annotation with the proof in the comment.\n\
                 Allow when: the panic is unreachable by construction and the\n\
                 comment says why."
            }
            Rule::NoUnseededRng => {
                "no-unseeded-rng (critical)\n\
                 Contract: every random draw derives from an explicit seed, so the\n\
                 paper's 10-repetition protocol is exactly repeatable.\n\
                 Twin runtime check: the determinism suite (same seed => bitwise\n\
                 identical losses and predictions).\n\
                 Fix: plumb a seed and use SeedableRng::seed_from_u64.\n\
                 Allow when: never in this workspace; entropy-seeded RNGs have no\n\
                 legitimate use here."
            }
            Rule::ShapeAssert => {
                "shape-assert (high)\n\
                 Contract: a two-operand tensor/NN op must validate operand shapes\n\
                 and panic with a message naming the op, so a mismatch points at\n\
                 the call site instead of an index-out-of-bounds deep in a kernel.\n\
                 Twin runtime check: the shape-mismatch panic tests in etsb-tensor.\n\
                 Fix: open the op with assert_eq!(.., \"op_name: ..\") or delegate\n\
                 to a shared checked kernel passing the op name as a literal.\n\
                 Allow when: the op provably has no shape precondition (e.g. a\n\
                 reshape into a resizable sink)."
            }
            Rule::DocPub => {
                "doc-pub (style)\n\
                 Contract: the public API of the core and tensor crates is the\n\
                 reproduction's reference surface; every public item carries docs.\n\
                 Twin runtime check: none (documentation is not executable).\n\
                 Fix: write a /// doc comment saying what the item guarantees.\n\
                 Allow when: the item is a trivial re-export shim pending removal."
            }
            Rule::NoPrint => {
                "no-print (style)\n\
                 Contract: library crates never write to the process stdio; all\n\
                 reporting flows through return values and the etsb-obs tracing\n\
                 layer, so the CLI owns the terminal.\n\
                 Twin runtime check: trace_lint validates the structured stream\n\
                 that replaces ad-hoc prints.\n\
                 Fix: return the value, or emit a trace event.\n\
                 Allow when: never in library code; put output in the binaries."
            }
            Rule::HashIterOrder => {
                "hash-iter-order (critical)\n\
                 Contract: batched/parallel/workspace execution stays bitwise\n\
                 identical to the per-sample reference (DESIGN.md section 4.1).\n\
                 std HashMap/HashSet iteration order is unspecified and differs\n\
                 between instances even in one process, so any iteration in\n\
                 result-affecting code can silently reorder a reduction, a\n\
                 majority vote, or an output row.\n\
                 Twin runtime check: the detector double-run determinism test in\n\
                 etsb-raha and the cross-worker determinism suite in etsb-core.\n\
                 Fix: use BTreeMap/BTreeSet, or collect and sort by a unique key\n\
                 before consuming.\n\
                 Allow when: the consumer is provably order-insensitive — an\n\
                 integer/saturating sum, a min/max lattice fold, or an\n\
                 iterate-then-sort-by-unique-key pattern — and the comment says so."
            }
            Rule::FloatReduceOrder => {
                "float-reduce-order (critical)\n\
                 Contract: float addition does not associate, so the bitwise\n\
                 determinism story requires every result-affecting reduction to\n\
                 run through the pinned ascending-k kernels in etsb-tensor\n\
                 (matrix.rs / ops.rs). An ad-hoc .sum::<f32>() or float fold\n\
                 elsewhere is one refactor (chunking, parallelism, SIMD) away\n\
                 from a silently different answer; mul_add contracts rounding\n\
                 differently than mul-then-add and is forbidden outside kernels.\n\
                 Twin runtime check: the batched-vs-per-sample bitwise equality\n\
                 tests and the ETSB_WORKERS determinism suite.\n\
                 Fix: route the reduction through an etsb-tensor kernel, or make\n\
                 the accumulation order explicit and pinned.\n\
                 Allow when: the reduction order is pinned by construction (e.g.\n\
                 a sequential f64 accumulation over an already-ordered Vec) and\n\
                 the comment says so."
            }
            Rule::FastMathConfinement => {
                "fast-math-confinement (critical)\n\
                 Contract: fused multiply-add rounds once where mul-then-add\n\
                 rounds twice, so any mul_add, std::arch/core::arch intrinsic\n\
                 or #[target_feature] override outside the opt-in kernel set in\n\
                 crates/tensor/src/simd/ silently changes bits on the exact\n\
                 path. The FastMath kernels are reachable only through an\n\
                 explicit KernelPolicy::FastMath, and their numerics are\n\
                 guarded by the epsilon-equivalence suite — nowhere else may\n\
                 spell these primitives.\n\
                 Twin runtime check: the fast-math equivalence suite in\n\
                 etsb-core and the portable-vs-AVX2 bitwise identity tests in\n\
                 etsb-tensor.\n\
                 Fix: move the kernel into crates/tensor/src/simd/ behind the\n\
                 KernelPolicy dispatch, or use plain mul-then-add arithmetic.\n\
                 Allow when: the value never reaches a result (e.g. a test's\n\
                 reference tolerance computation) and the comment says so."
            }
            Rule::IntoNoAlloc => {
                "into-no-alloc (high)\n\
                 Contract: _into kernels write into caller-provided buffers and\n\
                 must be allocation-free in steady state — that is the point of\n\
                 the workspace buffer pool.\n\
                 Twin runtime check: the counting-allocator regression test in\n\
                 etsb-nn (alloc_regression.rs), which proves the warmed hot path\n\
                 performs zero allocations.\n\
                 Fix: take scratch space from the Workspace, or resize the\n\
                 caller's buffer with resize_zeroed (amortized to zero).\n\
                 Allow when: the allocation is genuinely one-time setup (e.g.\n\
                 building a static lookup table on first call) and the comment\n\
                 explains the amortization."
            }
            Rule::IntoShapeAssert => {
                "into-shape-assert (high)\n\
                 Contract: a public _into kernel writes through buffers it does\n\
                 not own; a shape mismatch must panic with context before any\n\
                 arithmetic runs, not corrupt a downstream layout.\n\
                 Twin runtime check: the kernel shape-mismatch panic tests in\n\
                 etsb-tensor.\n\
                 Fix: open the body with assert_eq! / assert! on every operand\n\
                 dimension, message naming the kernel.\n\
                 Allow when: the kernel resizes its sink to fit (reshape-style)\n\
                 and therefore has no shape precondition."
            }
            Rule::UnsafeSafetyComment => {
                "unsafe-safety-comment (high)\n\
                 Contract: the workspace denies unsafe_code by default; where a\n\
                 file opts in (allocator shims in tests, future SIMD kernels),\n\
                 every unsafe block/fn/impl carries a // SAFETY: comment stating\n\
                 the invariant that makes it sound.\n\
                 Twin runtime check: none — soundness arguments are exactly the\n\
                 part the compiler and tests cannot see, which is why the\n\
                 comment is mandatory.\n\
                 Fix: write // SAFETY: <why this cannot exhibit UB> directly\n\
                 above (or on) the unsafe line.\n\
                 Allow when: never — if it is sound, the argument can be written\n\
                 down."
            }
            Rule::NoWholeFileRead => {
                "no-whole-file-read (critical)\n\
                 Contract: the data path scales to tables larger than memory by\n\
                 streaming through BufRead (DESIGN.md section 16); peak residency\n\
                 is O(chunk_rows x attrs), independent of row count. A\n\
                 read_to_string or fs::read of an input file re-introduces an\n\
                 O(file) allocation that silently undoes that bound the day a\n\
                 table outgrows RAM.\n\
                 Twin runtime check: the stream_bench gauge assertion (peak\n\
                 resident bytes identical across row counts) and the\n\
                 streaming-vs-in-memory equality suite.\n\
                 Fix: open a BufReader and parse incrementally (CsvReader /\n\
                 read_table), or stream through a RowSource.\n\
                 Allow when: the file is bounded by construction — a model\n\
                 checkpoint, a config, a validation tool's report — and the\n\
                 comment says so."
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Violated rule.
    pub rule: Rule,
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Trimmed source line (or item name) for the report.
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.snippet
        )
    }
}

/// Result of checking a workspace tree against a baseline.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Hard violations: not covered by an allow annotation and over the
    /// baseline budget for their (rule, file).
    pub violations: Vec<Finding>,
    /// Findings absorbed by the baseline (pre-existing debt).
    pub baselined: Vec<Finding>,
    /// (rule, file) entries whose current count is below the baseline:
    /// the baseline should be regenerated to lock in the progress.
    pub ratchet_slack: Vec<(String, String, usize, usize)>,
    /// (rule, file) baseline entries for files that no longer produce
    /// findings at all (also regeneration candidates).
    pub stale_entries: Vec<(String, String)>,
}

impl Report {
    /// Whether the tree passes the check.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Scan one source file. `rel` is the workspace-relative path (used for
/// crate attribution and reports).
pub fn scan_source(rel: &str, source: &str) -> Vec<Finding> {
    let ctx = FileContext::classify(rel);
    let stripped = strip_comments_and_strings(source);
    let allows = rules::collect_allows(source);
    let test_lines = rules::test_code_lines(source, &stripped);
    let mut findings = Vec::new();
    if ctx.check_unwrap {
        rules::check_no_unwrap(rel, source, &stripped, &test_lines, &allows, &mut findings);
    }
    if ctx.check_rng {
        rules::check_no_unseeded_rng(rel, source, &stripped, &allows, &mut findings);
    }
    if ctx.check_shapes {
        rules::check_shape_asserts(rel, source, &stripped, &test_lines, &allows, &mut findings);
    }
    if ctx.check_docs {
        rules::check_doc_pub(rel, source, &stripped, &test_lines, &allows, &mut findings);
    }
    if ctx.check_print {
        rules::check_no_print(rel, source, &stripped, &test_lines, &allows, &mut findings);
    }
    if ctx.check_hash {
        rules::check_hash_iter_order(rel, source, &stripped, &test_lines, &allows, &mut findings);
    }
    if ctx.check_float {
        rules::check_float_reduce_order(
            rel,
            source,
            &stripped,
            &test_lines,
            &allows,
            &mut findings,
        );
    }
    if ctx.check_fast_math {
        rules::check_fast_math_confinement(rel, source, &stripped, &allows, &mut findings);
    }
    if ctx.check_into {
        rules::check_into_no_alloc(rel, source, &stripped, &test_lines, &allows, &mut findings);
        rules::check_into_shape_assert(rel, source, &stripped, &test_lines, &allows, &mut findings);
    }
    if ctx.check_unsafe {
        rules::check_unsafe_safety_comment(rel, source, &stripped, &allows, &mut findings);
    }
    if ctx.check_whole_read {
        rules::check_no_whole_file_read(
            rel,
            source,
            &stripped,
            &test_lines,
            &allows,
            &mut findings,
        );
    }
    findings
}

/// Which rules apply to a file, derived from its workspace-relative path.
struct FileContext {
    check_unwrap: bool,
    check_rng: bool,
    check_shapes: bool,
    check_docs: bool,
    check_print: bool,
    check_hash: bool,
    check_float: bool,
    check_fast_math: bool,
    check_into: bool,
    check_unsafe: bool,
    check_whole_read: bool,
}

impl FileContext {
    fn classify(rel: &str) -> FileContext {
        let rel = rel.replace('\\', "/");
        let in_crate_src =
            |krate: &str| rel.starts_with(&format!("crates/{krate}/src/")) && rel.ends_with(".rs");
        let lib_src = LIBRARY_CRATES.iter().any(|c| in_crate_src(c));
        // Seeded-randomness and unsafe-justification discipline cover
        // everything that can run in an experiment: library code,
        // binaries, integration tests and examples — a stray
        // `thread_rng()` in a test breaks the 10-repetition protocol just
        // as surely as one in `train.rs`, and an unjustified `unsafe` in
        // a test allocator is exactly where UB likes to hide.
        let broad_scope =
            rel.starts_with("crates/") || rel.starts_with("tests/") || rel.starts_with("examples/");
        FileContext {
            check_unwrap: lib_src,
            check_rng: broad_scope && rel.ends_with(".rs"),
            check_shapes: SHAPE_CHECKED_CRATES.iter().any(|c| in_crate_src(c)),
            check_docs: DOC_CHECKED_CRATES.iter().any(|c| in_crate_src(c)),
            check_print: PRINT_CHECKED_CRATES.iter().any(|c| in_crate_src(c)),
            check_hash: HASH_CHECKED_CRATES.iter().any(|c| in_crate_src(c)),
            check_float: FLOAT_CHECKED_CRATES.iter().any(|c| in_crate_src(c))
                && !FLOAT_BLESSED_FILES.contains(&rel.as_str())
                && !rel.starts_with(SIMD_BLESSED_PREFIX),
            // Fast-math primitives are confined everywhere a float can
            // reach a result — library code, binaries, tests — except
            // the blessed SIMD kernel directory itself.
            check_fast_math: broad_scope
                && rel.ends_with(".rs")
                && !rel.starts_with(SIMD_BLESSED_PREFIX),
            check_into: INTO_CHECKED_CRATES.iter().any(|c| in_crate_src(c)),
            check_unsafe: broad_scope && rel.ends_with(".rs"),
            // Whole-file reads are confined wherever the data path runs:
            // library crates and the CLI. Dev tooling (check, bench,
            // obs lint bins) reads its own bounded reports and stays
            // out of scope.
            check_whole_read: lib_src || in_crate_src("cli"),
        }
    }
}

/// Recursively collect the workspace `.rs` files subject to checking:
/// everything under `crates/`, `tests/` and `examples/`, excluding
/// `vendor/` (offline dependency stubs), `target/` and the checker's own
/// fixture corpus.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            collect_rs(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let source = std::fs::read_to_string(&path)?;
            out.push((rel, source));
        }
    }
    Ok(())
}

/// Scan a whole tree and reconcile the findings against `baseline`.
pub fn check_tree(sources: &[(String, String)], baseline: &Baseline) -> Report {
    let mut findings: Vec<Finding> = Vec::new();
    for (rel, source) in sources {
        findings.extend(scan_source(rel, source));
    }
    reconcile(findings, baseline)
}

/// Split findings into hard violations and baselined debt, and compute
/// the ratchet bookkeeping.
pub fn reconcile(findings: Vec<Finding>, baseline: &Baseline) -> Report {
    let mut report = Report::default();
    let mut counts: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
    for f in findings {
        counts
            .entry((f.rule.name().to_string(), f.file.clone()))
            .or_default()
            .push(f);
    }
    for ((rule, file), group) in &counts {
        let budget = baseline.budget(rule, file);
        let current = group.len();
        if current > budget {
            // Everything beyond the budget is a hard violation; report
            // the whole group so the offending sites are all visible.
            report.violations.extend(group.iter().cloned());
        } else {
            report.baselined.extend(group.iter().cloned());
            if current < budget {
                report
                    .ratchet_slack
                    .push((rule.clone(), file.clone(), current, budget));
            }
        }
    }
    for (rule, file, budget) in baseline.entries() {
        if budget > 0 && !counts.contains_key(&(rule.clone(), file.clone())) {
            report.stale_entries.push((rule, file));
        }
    }
    report
}

/// Regenerate baseline contents from a finding set: one entry per
/// (rule, file) with the current count.
pub fn baseline_from_findings(findings: &[Finding]) -> Baseline {
    let mut b = Baseline::default();
    for f in findings {
        b.bump(f.rule.name(), &f.file);
    }
    b
}

/// Locate the workspace root: walk up from `start` to the first
/// directory holding a `Cargo.toml` with a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
