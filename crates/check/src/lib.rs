//! `etsb-check`: a dependency-light, source-level static-analysis pass
//! over the workspace, enforcing the project invariants that keep the
//! paper's 10-repetition evaluation protocol reproducible and the
//! library crates panic-free on malformed input.
//!
//! Enforced rules (each with an `// etsb: allow(<rule>)` escape hatch):
//!
//! * **`no-unwrap`** — no `unwrap()` / `expect()` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` in the non-test code of
//!   library crates. Existing debt lives in a machine-readable baseline
//!   file and may only ratchet down.
//! * **`no-unseeded-rng`** — no `thread_rng()` / `from_entropy()`
//!   anywhere; every generator must derive from
//!   `SeedableRng::seed_from_u64`.
//! * **`shape-assert`** — every two-operand tensor/NN op in
//!   `crates/tensor` and `crates/nn` must carry a shape assertion whose
//!   message names the op (`"op_name: ..."` convention), so mismatches
//!   panic with actionable context.
//! * **`doc-pub`** — public items in `etsb-core` and `etsb-tensor` must
//!   have doc comments.
//! * **`no-print`** — no `println!` / `eprintln!` / `print!` /
//!   `eprint!` in the non-test code of library crates: libraries report
//!   through return values and the `etsb-obs` tracing layer, never by
//!   writing to the process's stdio directly.
//!
//! The analysis is line-oriented over comment- and string-stripped
//! source. It is intentionally heuristic — precise enough for this
//! workspace's house style (enforced by `rustfmt`), simple enough to
//! audit by reading one file.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod baseline;
mod rules;
mod strip;

pub use baseline::Baseline;
pub use strip::strip_comments_and_strings;

/// Library crates in which panicking paths are forbidden (`no-unwrap`).
pub const LIBRARY_CRATES: [&str; 7] = [
    "tensor", "nn", "table", "datasets", "raha", "core", "repair",
];

/// Crates whose two-operand numeric ops must carry shape assertions.
pub const SHAPE_CHECKED_CRATES: [&str; 2] = ["tensor", "nn"];

/// Crates whose public items must be documented.
pub const DOC_CHECKED_CRATES: [&str; 2] = ["core", "tensor"];

/// Crates in which direct stdio output is forbidden (`no-print`) — the
/// library crates. Binaries (`cli`, `bench`, `check`) and the obs sinks
/// (whose job is writing to stderr) stay exempt.
pub const PRINT_CHECKED_CRATES: [&str; 7] = LIBRARY_CRATES;

/// One invariant enforced by the checker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Panicking call in non-test library-crate code.
    NoUnwrap,
    /// Randomness not derived from an explicit seed.
    NoUnseededRng,
    /// Two-operand tensor/NN op without an op-naming shape assertion.
    ShapeAssert,
    /// Public item without a doc comment.
    DocPub,
    /// Direct stdio output in non-test library-crate code.
    NoPrint,
}

impl Rule {
    /// The rule's name as written in `// etsb: allow(<name>)` and in the
    /// baseline file.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoUnwrap => "no-unwrap",
            Rule::NoUnseededRng => "no-unseeded-rng",
            Rule::ShapeAssert => "shape-assert",
            Rule::DocPub => "doc-pub",
            Rule::NoPrint => "no-print",
        }
    }

    /// Parse a rule name; used by the allow-annotation parser.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "no-unwrap" => Some(Rule::NoUnwrap),
            "no-unseeded-rng" => Some(Rule::NoUnseededRng),
            "shape-assert" => Some(Rule::ShapeAssert),
            "doc-pub" => Some(Rule::DocPub),
            "no-print" => Some(Rule::NoPrint),
            _ => None,
        }
    }

    /// All rules, in report order.
    pub fn all() -> [Rule; 5] {
        [
            Rule::NoUnwrap,
            Rule::NoUnseededRng,
            Rule::ShapeAssert,
            Rule::DocPub,
            Rule::NoPrint,
        ]
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Violated rule.
    pub rule: Rule,
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Trimmed source line (or item name) for the report.
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.snippet
        )
    }
}

/// Result of checking a workspace tree against a baseline.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Hard violations: not covered by an allow annotation and over the
    /// baseline budget for their (rule, file).
    pub violations: Vec<Finding>,
    /// Findings absorbed by the baseline (pre-existing debt).
    pub baselined: Vec<Finding>,
    /// (rule, file) entries whose current count is below the baseline:
    /// the baseline should be regenerated to lock in the progress.
    pub ratchet_slack: Vec<(String, String, usize, usize)>,
    /// (rule, file) baseline entries for files that no longer produce
    /// findings at all (also regeneration candidates).
    pub stale_entries: Vec<(String, String)>,
}

impl Report {
    /// Whether the tree passes the check.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Scan one source file. `rel` is the workspace-relative path (used for
/// crate attribution and reports).
pub fn scan_source(rel: &str, source: &str) -> Vec<Finding> {
    let ctx = FileContext::classify(rel);
    let stripped = strip_comments_and_strings(source);
    let allows = rules::collect_allows(source);
    let test_lines = rules::test_code_lines(source, &stripped);
    let mut findings = Vec::new();
    if ctx.check_unwrap {
        rules::check_no_unwrap(rel, source, &stripped, &test_lines, &allows, &mut findings);
    }
    if ctx.check_rng {
        rules::check_no_unseeded_rng(rel, source, &stripped, &allows, &mut findings);
    }
    if ctx.check_shapes {
        rules::check_shape_asserts(rel, source, &stripped, &test_lines, &allows, &mut findings);
    }
    if ctx.check_docs {
        rules::check_doc_pub(rel, source, &stripped, &test_lines, &allows, &mut findings);
    }
    if ctx.check_print {
        rules::check_no_print(rel, source, &stripped, &test_lines, &allows, &mut findings);
    }
    findings
}

/// Which rules apply to a file, derived from its workspace-relative path.
struct FileContext {
    check_unwrap: bool,
    check_rng: bool,
    check_shapes: bool,
    check_docs: bool,
    check_print: bool,
}

impl FileContext {
    fn classify(rel: &str) -> FileContext {
        let rel = rel.replace('\\', "/");
        let in_crate_src =
            |krate: &str| rel.starts_with(&format!("crates/{krate}/src/")) && rel.ends_with(".rs");
        let lib_src = LIBRARY_CRATES.iter().any(|c| in_crate_src(c));
        // Seeded-randomness discipline covers everything that can run in
        // an experiment: library code, binaries, integration tests and
        // examples — a stray `thread_rng()` in a test breaks the
        // 10-repetition protocol just as surely as one in `train.rs`.
        let rng_scope =
            rel.starts_with("crates/") || rel.starts_with("tests/") || rel.starts_with("examples/");
        FileContext {
            check_unwrap: lib_src,
            check_rng: rng_scope && rel.ends_with(".rs"),
            check_shapes: SHAPE_CHECKED_CRATES.iter().any(|c| in_crate_src(c)),
            check_docs: DOC_CHECKED_CRATES.iter().any(|c| in_crate_src(c)),
            check_print: PRINT_CHECKED_CRATES.iter().any(|c| in_crate_src(c)),
        }
    }
}

/// Recursively collect the workspace `.rs` files subject to checking:
/// everything under `crates/`, `tests/` and `examples/`, excluding
/// `vendor/` (offline dependency stubs), `target/` and the checker's own
/// fixture corpus.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            collect_rs(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let source = std::fs::read_to_string(&path)?;
            out.push((rel, source));
        }
    }
    Ok(())
}

/// Scan a whole tree and reconcile the findings against `baseline`.
pub fn check_tree(sources: &[(String, String)], baseline: &Baseline) -> Report {
    let mut findings: Vec<Finding> = Vec::new();
    for (rel, source) in sources {
        findings.extend(scan_source(rel, source));
    }
    reconcile(findings, baseline)
}

/// Split findings into hard violations and baselined debt, and compute
/// the ratchet bookkeeping.
pub fn reconcile(findings: Vec<Finding>, baseline: &Baseline) -> Report {
    let mut report = Report::default();
    let mut counts: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
    for f in findings {
        counts
            .entry((f.rule.name().to_string(), f.file.clone()))
            .or_default()
            .push(f);
    }
    for ((rule, file), group) in &counts {
        let budget = baseline.budget(rule, file);
        let current = group.len();
        if current > budget {
            // Everything beyond the budget is a hard violation; report
            // the whole group so the offending sites are all visible.
            report.violations.extend(group.iter().cloned());
        } else {
            report.baselined.extend(group.iter().cloned());
            if current < budget {
                report
                    .ratchet_slack
                    .push((rule.clone(), file.clone(), current, budget));
            }
        }
    }
    for (rule, file, budget) in baseline.entries() {
        if budget > 0 && !counts.contains_key(&(rule.clone(), file.clone())) {
            report.stale_entries.push((rule, file));
        }
    }
    report
}

/// Regenerate baseline contents from a finding set: one entry per
/// (rule, file) with the current count.
pub fn baseline_from_findings(findings: &[Finding]) -> Baseline {
    let mut b = Baseline::default();
    for f in findings {
        b.bump(f.rule.name(), &f.file);
    }
    b
}

/// Locate the workspace root: walk up from `start` to the first
/// directory holding a `Cargo.toml` with a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
