//! CLI for the workspace invariant auditor.
//!
//! ```text
//! cargo run -p etsb-check                   # check, gated by the baseline
//! cargo run -p etsb-check -- --update-baseline
//! cargo run -p etsb-check -- --root DIR --baseline FILE
//! cargo run -p etsb-check -- --list-baselined
//! cargo run -p etsb-check -- --explain hash-iter-order
//! cargo run -p etsb-check -- --json report.json        # CI report
//! cargo run -p etsb-check -- --validate-json report.json
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use etsb_check::{
    baseline_from_findings, check_tree, find_workspace_root, json_report, validate_json_report,
    Baseline, Rule,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    update_baseline: bool,
    list_baselined: bool,
    json: Option<PathBuf>,
    validate_json: Option<PathBuf>,
    explain: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        baseline: None,
        update_baseline: false,
        list_baselined: false,
        json: None,
        validate_json: None,
        explain: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(
                    it.next().ok_or("--root requires a directory argument")?,
                ));
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(
                    it.next().ok_or("--baseline requires a file argument")?,
                ));
            }
            "--update-baseline" => args.update_baseline = true,
            "--list-baselined" => args.list_baselined = true,
            "--json" => {
                args.json = Some(PathBuf::from(
                    it.next().ok_or("--json requires a file argument")?,
                ));
            }
            "--validate-json" => {
                args.validate_json = Some(PathBuf::from(
                    it.next()
                        .ok_or("--validate-json requires a file argument")?,
                ));
            }
            "--explain" => {
                args.explain = Some(it.next().ok_or("--explain requires a rule name")?);
            }
            "--help" | "-h" => {
                println!(
                    "etsb-check: workspace invariant auditor\n\n\
                     USAGE: etsb-check [--root DIR] [--baseline FILE] \
                     [--update-baseline] [--list-baselined]\n       \
                     etsb-check --json FILE        write a machine-readable report \
                     (schema v1) alongside the normal output\n       \
                     etsb-check --validate-json FILE   schema-check a previously \
                     written report and exit\n       \
                     etsb-check --explain RULE     print a rule's contract, its \
                     twin runtime test, and the fix guidance\n\n\
                     RULES: {}",
                    Rule::all()
                        .iter()
                        .map(|r| r.name())
                        .collect::<Vec<_>>()
                        .join(", "),
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("etsb-check: {e}");
            return ExitCode::from(2);
        }
    };

    // Doc lookup and report validation need no workspace scan.
    if let Some(name) = &args.explain {
        match Rule::from_name(name) {
            Some(rule) => {
                println!("{}", rule.explain());
                return ExitCode::SUCCESS;
            }
            None => {
                eprintln!(
                    "etsb-check: unknown rule `{name}`; known rules: {}",
                    Rule::all()
                        .iter()
                        .map(|r| r.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return ExitCode::from(2);
            }
        }
    }
    if let Some(path) = &args.validate_json {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("etsb-check: reading {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        match validate_json_report(&text) {
            Ok(summary) => {
                println!("etsb-check: {summary}");
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("etsb-check: {} is invalid: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let root = match args.root.clone().or_else(|| {
        find_workspace_root(&std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")))
    }) {
        Some(r) => r,
        None => {
            eprintln!(
                "etsb-check: could not locate a workspace root (no Cargo.toml with [workspace])"
            );
            return ExitCode::from(2);
        }
    };
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("check_baseline.txt"));

    let sources = match etsb_check::workspace_sources(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("etsb-check: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    // A wrong --root (typo, CI misconfiguration) must not masquerade as a
    // clean run: an empty scan means nothing was checked.
    if sources.is_empty() {
        eprintln!(
            "etsb-check: no crate sources found under {} — wrong --root?",
            root.display()
        );
        return ExitCode::from(2);
    }

    if args.update_baseline {
        let findings: Vec<_> = sources
            .iter()
            .flat_map(|(rel, src)| etsb_check::scan_source(rel, src))
            .collect();
        let regenerated = baseline_from_findings(&findings);
        if let Err(e) = std::fs::write(&baseline_path, regenerated.to_text()) {
            eprintln!("etsb-check: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "etsb-check: wrote {} ({} baselined sites across {} rules)",
            baseline_path.display(),
            findings.len(),
            Rule::all()
                .iter()
                .filter(|r| regenerated.total(r.name()) > 0)
                .count(),
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("etsb-check: {e}");
            return ExitCode::from(2);
        }
    };

    let report = check_tree(&sources, &baseline);

    if let Some(path) = &args.json {
        let text = json_report(&report, sources.len());
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("etsb-check: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("etsb-check: wrote JSON report to {}", path.display());
    }

    if args.list_baselined {
        for f in &report.baselined {
            println!("baselined: {f}");
        }
    }
    for (rule, file, current, budget) in &report.ratchet_slack {
        println!(
            "note: {file} is below its `{rule}` baseline ({current} < {budget}); \
             run with --update-baseline to ratchet down"
        );
    }
    for (rule, file) in &report.stale_entries {
        println!("note: baseline entry `{rule} {file}` matches no findings; regenerate to drop it");
    }
    if !report.violations.is_empty() {
        for f in &report.violations {
            eprintln!("error: [{}] {f}", f.rule.severity());
        }
        eprintln!(
            "\netsb-check: {} violation(s) across {} rule(s); see above, or \
             `etsb-check --explain <rule>` for the contract behind each. \
             Pre-existing debt is tracked in {} — new debt is not accepted.",
            report.violations.len(),
            {
                let mut rules: Vec<_> = report.violations.iter().map(|f| f.rule).collect();
                rules.sort();
                rules.dedup();
                rules.len()
            },
            baseline_path.display(),
        );
        return ExitCode::FAILURE;
    }
    println!(
        "etsb-check: clean ({} files scanned, {} baselined sites remaining)",
        sources.len(),
        report.baselined.len(),
    );
    ExitCode::SUCCESS
}
