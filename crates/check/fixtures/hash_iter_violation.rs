//! Fixture: order-leaking hash iteration. The three marked sites must
//! fire; entry-only use and the annotated commutative sum must not.

use std::collections::{HashMap, HashSet};

/// Majority vote whose count tie-break leaks hash order.        [hit]
pub fn majority(counts: &HashMap<String, u32>) -> Option<&String> {
    counts.iter().max_by_key(|(_, c)| **c).map(|(v, _)| v)
}

/// Split method chain: the iterating call sits on its own line. [hit]
pub fn chained(map: &HashMap<String, u32>) -> Vec<u32> {
    let mut v: Vec<u32> = map
        .values()
        .copied()
        .collect();
    v.sort_unstable();
    v
}

/// `for .. in` over a set leaks order without any method call.  [hit]
pub fn looped(set: &HashSet<u64>) -> u64 {
    let mut acc = 0;
    for v in set {
        acc = acc.wrapping_mul(31).wrapping_add(*v);
    }
    acc
}

/// Entry-only accumulation never observes iteration order.   [no hit]
pub fn count(values: &[String]) -> usize {
    let mut counts: HashMap<&str, u32> = HashMap::new();
    for v in values {
        *counts.entry(v).or_insert(0) += 1;
    }
    counts.len()
}

/// Annotated commutative reduction is allowed.               [no hit]
pub fn total(counts: &HashMap<String, u32>) -> u64 {
    // etsb: allow(hash-iter-order) -- commutative integer sum.
    counts.values().map(|&c| u64::from(c)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_iterate_freely() {
        let m: HashMap<String, u32> = HashMap::new();
        assert_eq!(m.values().count(), 0);
    }
}
