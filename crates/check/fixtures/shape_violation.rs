//! Fixture: a two-operand tensor op with no op-naming shape assertion.
//! `bad_add` must be reported by the `shape-assert` rule; `good_add`
//! and `delegating_add` must not.

impl Matrix {
    pub fn bad_add(&self, other: &Matrix) -> Matrix {
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    pub fn good_add(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "good_add: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    pub fn delegating_add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, "delegating_add", |a, b| a + b)
    }
}
