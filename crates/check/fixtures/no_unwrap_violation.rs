//! Fixture: panicking calls in non-test library code. Every site below
//! must be reported by the `no-unwrap` rule.

pub fn first(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn second(x: Result<u32, String>) -> u32 {
    x.expect("fixture")
}

pub fn third() {
    panic!("fixture");
}

pub fn fourth(n: u32) -> u32 {
    match n {
        0 => todo!(),
        1 => unimplemented!(),
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
