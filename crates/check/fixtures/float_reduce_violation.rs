//! Fixture: order-sensitive float reductions outside the blessed
//! kernels. The three marked sites must fire; the lattice fold, the
//! integer fold and the annotated accumulation must not.

/// Ad-hoc f32 sum: associativity leak.                          [hit]
pub fn loss_sum(losses: &[f32]) -> f32 {
    losses.iter().sum::<f32>()
}

/// Float fold with a float-literal init.                        [hit]
pub fn fold_sum(losses: &[f32]) -> f32 {
    losses.iter().fold(0.0, |acc, x| acc + x)
}

/// FMA contracts rounding differently than mul-then-add.        [hit]
pub fn fused(a: f32, b: f32, c: f32) -> f32 {
    a.mul_add(b, c)
}

/// Min folds form a lattice: order-insensitive.              [no hit]
pub fn min_val(losses: &[f32]) -> f32 {
    losses.iter().copied().fold(f32::INFINITY, f32::min)
}

/// Integer folds are exact regardless of order.              [no hit]
pub fn count_pos(losses: &[f32]) -> usize {
    losses.iter().fold(0usize, |n, &x| if x > 0.0 { n + 1 } else { n })
}

/// Annotated pinned-order accumulation.                      [no hit]
pub fn pinned(losses: &[f64]) -> f64 {
    // etsb: allow(float-reduce-order) -- sequential accumulation over an ordered slice.
    losses.iter().sum::<f64>()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_sum_freely() {
        let total = [1.0f32, 2.0].iter().sum::<f32>();
        assert!(total > 2.9);
    }
}
