//! Fixture: compliant library-crate code. Must produce zero findings
//! for every rule — anything reported here is a false positive.

use rand::SeedableRng;

/// A documented public matrix wrapper.
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Element-wise sum with an op-naming shape assertion.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Shape accessor; mentions unwrap() and panic!() only in prose and
    /// strings: "call .unwrap() here" should not be flagged.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// An annotated escape hatch for a justified invariant.
    pub fn head(&self) -> f32 {
        // etsb: allow(no-unwrap) -- construction guarantees non-empty data.
        *self.data.first().expect("non-empty by construction")
    }
}

/// Seeded randomness is the only sanctioned kind.
pub fn seeded_roll(seed: u64) -> u64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    rng.next_u64()
}

/// Hash maps are fine when iteration order cannot escape: entry-style
/// writes plus an annotated commutative reduction.
pub fn bucket_total(counts: &std::collections::HashMap<String, Vec<f32>>) -> usize {
    // etsb: allow(hash-iter-order) -- commutative usize sum.
    counts.values().map(Vec::len).sum::<usize>()
}

/// Lattice folds are order-insensitive and exempt from float-reduce.
pub fn max_abs(values: &[f32]) -> f32 {
    values.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
}

/// A compliant kernel: opens with an assert, writes in place.
pub fn double_into(a: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), out.len(), "double_into: length mismatch");
    for (o, x) in out.iter_mut().zip(a) {
        *o = x + x;
    }
}

/// Justified unsafe passes the safety-comment rule.
pub fn first_unchecked(v: &[f32]) -> f32 {
    assert!(!v.is_empty(), "first_unchecked: empty input");
    // SAFETY: emptiness asserted above, so index 0 is in bounds.
    unsafe { *v.get_unchecked(0) }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_freely() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
