//! Fixture: compliant library-crate code. Must produce zero findings
//! for every rule — anything reported here is a false positive.

use rand::SeedableRng;

/// A documented public matrix wrapper.
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Element-wise sum with an op-naming shape assertion.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Shape accessor; mentions unwrap() and panic!() only in prose and
    /// strings: "call .unwrap() here" should not be flagged.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// An annotated escape hatch for a justified invariant.
    pub fn head(&self) -> f32 {
        // etsb: allow(no-unwrap) -- construction guarantees non-empty data.
        *self.data.first().expect("non-empty by construction")
    }
}

/// Seeded randomness is the only sanctioned kind.
pub fn seeded_roll(seed: u64) -> u64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    rng.next_u64()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_freely() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
