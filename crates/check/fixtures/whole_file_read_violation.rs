//! Fixture: whole-file reads on the data path — the three reads below
//! must fire `no-whole-file-read`, except the test-gated and
//! allow-annotated sites.

/// Materializes an entire input file — forbidden on the data path.
pub fn slurp(path: &str) -> std::io::Result<String> {
    std::fs::read_to_string(path)
}

/// Both the byte and the reader form count as whole-file reads.
pub fn slurp_bytes(path: &str) -> std::io::Result<Vec<u8>> {
    let bytes = std::fs::read(path)?;
    let mut text = String::new();
    use std::io::Read;
    std::fs::File::open(path)?.read_to_string(&mut text)?;
    Ok(bytes)
}

/// Shielded by an allow annotation: not a finding.
pub fn checkpoint(path: &str) -> std::io::Result<Vec<u8>> {
    // etsb: allow(no-whole-file-read) -- fixture-bounded checkpoint.
    std::fs::read(path)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_reads_are_exempt() {
        let _ = std::fs::read_to_string("fixture.txt");
    }
}
