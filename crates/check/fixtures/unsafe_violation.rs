//! Fixture: unsafe discipline. The three unjustified sites must fire;
//! SAFETY-commented and allow-annotated sites must not.

/// Unsafe block without justification.                          [hit]
pub fn missing(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}

/// Unsafe fn without justification.                             [hit]
pub unsafe fn missing_fn(p: *const u8) -> u8 {
    *p
}

/// Justified block: SAFETY directly above.                   [no hit]
pub fn justified(v: &[u8]) -> u8 {
    // SAFETY: caller guarantees `v` is non-empty.
    unsafe { *v.get_unchecked(0) }
}

/// Same-line SAFETY also counts.                             [no hit]
pub fn inline_justified(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) } // SAFETY: `v` checked non-empty at entry.
}

/// Allow-annotated escape hatch.                             [no hit]
pub fn annotated(v: &[u8]) -> u8 {
    // etsb: allow(unsafe-safety-comment)
    unsafe { *v.get_unchecked(0) }
}

trait Marker {
    fn tag(&self) -> u8;
}

// SAFETY: Marker has no invariants beyond the trait signature.
unsafe impl Marker for u8 {
    fn tag(&self) -> u8 {
        1
    }
}

/* the next impl is unjustified */
unsafe impl Marker for u16 {
    fn tag(&self) -> u8 {
        2
    }
}
