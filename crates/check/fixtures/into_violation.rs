//! Fixture: `_into` kernel contracts. `bad_axpy_into` allocates twice
//! (into-no-alloc ×2); `bad_scale_into` opens without a shape assert
//! (into-shape-assert ×1); the compliant and private kernels are silent.

/// Kernel that allocates: the temp vec and the clone must both fire.
pub fn bad_axpy_into(a: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), out.len(), "bad_axpy_into: length mismatch");
    let tmp: Vec<f32> = a.to_vec();
    let copy = tmp.clone();
    for (o, x) in out.iter_mut().zip(&copy) {
        *o += x;
    }
}

/// Public kernel missing its opening assertion.
// etsb: allow(shape-assert) -- fixture isolates the into-shape-assert rule.
pub fn bad_scale_into(a: &[f32], out: &mut [f32]) {
    for (o, x) in out.iter_mut().zip(a) {
        *o = x + x;
    }
}

/// Compliant kernel: asserts first, writes in place, never allocates.
pub fn good_scale_into(a: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), out.len(), "good_scale_into: length mismatch");
    for (o, x) in out.iter_mut().zip(a) {
        *o = x + x;
    }
}

/// Annotated reshape-style sink: no shape precondition to assert.
// etsb: allow(shape-assert, into-shape-assert) -- `out` is zero-filled in place.
pub fn clear_into(a: &[f32], out: &mut [f32]) {
    let _ = a;
    for o in out.iter_mut() {
        *o = 0.0;
    }
}

// Private helpers are exempt from the public assert contract (but not
// from into-no-alloc, which stays silent here).
fn helper_into(out: &mut [f32]) {
    for o in out.iter_mut() {
        *o = 0.0;
    }
}

/// Entry point so the helper is referenced.
pub fn wipe(out: &mut [f32]) {
    helper_into(out);
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_allocate_in_into_helpers() {
        fn probe_into(v: &mut Vec<f32>) {
            *v = vec![0.0; 3];
        }
        let mut v = Vec::new();
        probe_into(&mut v);
        assert_eq!(v.len(), 3);
    }
}
