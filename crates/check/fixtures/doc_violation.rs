//! Fixture: undocumented public items. `undocumented_fn` and
//! `Undocumented` must be reported by the `doc-pub` rule; the documented
//! and non-public items must not.

pub fn undocumented_fn() {}

pub struct Undocumented;

/// This one is documented.
pub fn documented_fn() {}

#[derive(Debug)]
/// Documented through an attribute in between.
pub enum AlsoDocumented {
    /// Variant.
    A,
}

fn private_needs_no_docs() {}
