//! Fixture: fast-math primitives escaping the blessed SIMD kernel
//! directory. The four marked sites must fire; the annotated site must
//! not.

/// FMA outside the kernel set: one rounding, not two.            [hit]
pub fn fused(a: f32, b: f32, c: f32) -> f32 {
    a.mul_add(b, c)
}

/// Direct std::arch intrinsic import.                            [hit]
pub use std::arch::x86_64::_mm256_setzero_ps;

/// Fully qualified core::arch path.                              [hit]
pub fn lanes() -> core::arch::x86_64::__m256 {
    _mm256_setzero_ps()
}

/// Per-function codegen override.                                [hit]
#[target_feature(enable = "avx2")]
pub fn blocked(a: f32, b: f32) -> f32 {
    a + b
}

/// Annotated escape hatch: justified, stays silent.           [no hit]
pub fn pinned(a: f32, b: f32, c: f32) -> f32 {
    // etsb: allow(fast-math-confinement) -- reference value for a rounding-tolerance test.
    a.mul_add(b, c)
}
