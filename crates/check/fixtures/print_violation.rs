//! Fixture: stdio macros in library code — every one below must fire
//! `no-print`, except the test-gated and allow-annotated sites.

/// Reports through stdout — forbidden in a library crate.
pub fn chatty(loss: f32) {
    println!("loss = {loss}");
    eprintln!("loss = {loss}");
    print!("{loss}");
    eprint!("{loss}");
}

/// Shielded by an allow annotation: not a finding.
pub fn sanctioned() {
    // etsb: allow(no-print) -- fixture-sanctioned diagnostic.
    println!("allowed");
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_output_is_exempt() {
        println!("test diagnostics are fine");
    }
}
