//! Fixture: unseeded randomness. Both sites below must be reported by
//! the `no-unseeded-rng` rule — even the one inside test code, since a
//! nondeterministic test breaks the 10-repetition protocol too.

pub fn roll() -> u32 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0..6)
}

#[cfg(test)]
mod tests {
    #[test]
    fn nondeterministic_test() {
        let _rng = rand::rngs::StdRng::from_entropy();
    }
}
