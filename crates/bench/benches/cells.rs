//! Microbenchmark behind the paper's §2 complexity argument: per-step
//! cost of vanilla RNN vs LSTM vs GRU at the paper's dimensions, forward
//! and backward.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use etsb_nn::{grad_buffer_for, GruCell, LstmCell, Recurrence, RnnCell};
use etsb_tensor::{init, Matrix};

const INPUT_DIM: usize = 86; // Beers alphabet
const HIDDEN: usize = 64; // the paper's unit count
const SEQ_LEN: usize = 16; // typical value length

fn input() -> Matrix {
    let mut rng = init::seeded_rng(7);
    init::glorot_uniform(SEQ_LEN, INPUT_DIM, &mut rng)
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("cell_forward_16x86x64");
    let mut rng = init::seeded_rng(1);
    let rnn = RnnCell::new(INPUT_DIM, HIDDEN, &mut rng);
    let lstm = LstmCell::new(INPUT_DIM, HIDDEN, &mut rng);
    let gru = GruCell::new(INPUT_DIM, HIDDEN, &mut rng);
    let x = input();
    group.bench_with_input(BenchmarkId::from_parameter("rnn"), &(), |b, _| {
        b.iter(|| black_box(rnn.forward_seq(x.clone())))
    });
    group.bench_with_input(BenchmarkId::from_parameter("lstm"), &(), |b, _| {
        b.iter(|| black_box(lstm.forward_seq(x.clone())))
    });
    group.bench_with_input(BenchmarkId::from_parameter("gru"), &(), |b, _| {
        b.iter(|| black_box(gru.forward_seq(x.clone())))
    });
    group.finish();
}

fn bench_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("cell_backward_16x86x64");
    let mut rng = init::seeded_rng(2);
    let x = input();
    let grad = Matrix::full(SEQ_LEN, HIDDEN, 1.0);

    let rnn = RnnCell::new(INPUT_DIM, HIDDEN, &mut rng);
    let (_, rnn_cache) = rnn.forward_seq(x.clone());
    let mut rnn_grads = grad_buffer_for(&rnn.params());
    group.bench_with_input(BenchmarkId::from_parameter("rnn"), &(), |b, _| {
        b.iter(|| black_box(rnn.backward_seq(&rnn_cache, &grad, rnn_grads.slots_mut())))
    });

    let lstm = LstmCell::new(INPUT_DIM, HIDDEN, &mut rng);
    let (_, lstm_cache) = lstm.forward_seq(x.clone());
    let mut lstm_grads = grad_buffer_for(&lstm.params());
    group.bench_with_input(BenchmarkId::from_parameter("lstm"), &(), |b, _| {
        b.iter(|| black_box(lstm.backward_seq(&lstm_cache, &grad, lstm_grads.slots_mut())))
    });

    let gru = GruCell::new(INPUT_DIM, HIDDEN, &mut rng);
    let (_, gru_cache) = gru.forward_seq(x.clone());
    let mut gru_grads = grad_buffer_for(&gru.params());
    group.bench_with_input(BenchmarkId::from_parameter("gru"), &(), |b, _| {
        b.iter(|| black_box(gru.backward_seq(&gru_cache, &grad, gru_grads.slots_mut())))
    });
    group.finish();
}

criterion_group!(benches, bench_forward, bench_backward);
criterion_main!(benches);
