//! Benchmarks one gradient-accumulating `train_batch` step of ETSB-RNN at
//! the paper's layer sizes, sequential vs sharded across all cores — the
//! speedup behind the parallel gradient-buffer refactor. The merge order
//! is fixed, so both configurations produce bitwise-identical gradients
//! (asserted in `tests/determinism.rs`); this bench measures the time.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use etsb_core::config::{ModelKind, TrainConfig};
use etsb_core::encode::EncodedDataset;
use etsb_core::model::AnyModel;
use etsb_nn::parallel::set_worker_override;
use etsb_table::{CellFrame, Table};
use etsb_tensor::init::seeded_rng;

const BATCH: usize = 128;

/// Synthetic two-column frame with value lengths and an alphabet in the
/// range of the paper's datasets.
fn frame() -> CellFrame {
    let mut dirty = Table::with_columns(&["code", "city"]);
    let mut clean = Table::with_columns(&["code", "city"]);
    for i in 0..BATCH {
        let code = format!(
            "{:06}-{}",
            i * 37 % 999_983,
            (b'a' + (i % 26) as u8) as char
        );
        let city = format!("City of Example Number {}", i % 40);
        if i % 5 == 0 {
            dirty.push_row(vec![city.clone(), code.clone()]);
        } else {
            dirty.push_row(vec![code.clone(), city.clone()]);
        }
        clean.push_row(vec![code, city]);
    }
    CellFrame::merge(&dirty, &clean).expect("same-shape tables")
}

fn bench_train_batch(c: &mut Criterion) {
    let frame = frame();
    let data = EncodedDataset::from_frame(&frame);
    let cfg = TrainConfig {
        rnn_units: 64,
        attr_rnn_units: 8,
        head_dim: 32,
        length_dense_dim: 64,
        embed_dim: Some(64),
        ..TrainConfig::default()
    };
    let batch: Vec<usize> = (0..data.n_cells().min(BATCH)).collect();

    let mut group = c.benchmark_group("etsb_train_batch_128");
    group.sample_size(10);
    for (name, workers) in [("sequential", 1usize), ("parallel", 0usize)] {
        let mut model = AnyModel::new(ModelKind::Etsb, &data, &cfg, &mut seeded_rng(11));
        let mut grads = model.grad_buffer();
        set_worker_override(workers);
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            b.iter(|| {
                grads.zero();
                black_box(model.train_batch(&data, &batch, &mut grads))
            })
        });
    }
    set_worker_override(0);
    group.finish();
}

criterion_group!(benches, bench_train_batch);
criterion_main!(benches);
