//! Microbenchmarks for the neural substrate: forward and backward passes
//! through the paper's actual layer configuration (BiRNN 64 units,
//! two-stacked), across value lengths typical of the six datasets.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use etsb_nn::{Embedding, StackedBiRnn};
use etsb_tensor::{init, Matrix};

fn bench_stacked_birnn_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("stacked_birnn_forward");
    let mut rng = init::seeded_rng(1);
    let embed_dim = 86; // Beers alphabet
    let net: StackedBiRnn = StackedBiRnn::new(embed_dim, 64, &mut rng);
    for &len in &[4usize, 16, 64, 128] {
        let input = init::glorot_uniform(len, embed_dim, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| black_box(net.forward(input.clone())))
        });
    }
    group.finish();
}

fn bench_stacked_birnn_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("stacked_birnn_backward");
    let mut rng = init::seeded_rng(2);
    let embed_dim = 86;
    let net: StackedBiRnn = StackedBiRnn::new(embed_dim, 64, &mut rng);
    let mut grads = etsb_nn::grad_buffer_for(&net.params());
    for &len in &[16usize, 64] {
        let input = init::glorot_uniform(len, embed_dim, &mut rng);
        let (out, cache) = net.forward(input.clone());
        let grad = vec![1.0f32; out.len()];
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| black_box(net.backward(&cache, &grad, grads.slots_mut())))
        });
    }
    group.finish();
}

fn bench_embedding(c: &mut Criterion) {
    let mut rng = init::seeded_rng(3);
    let emb = Embedding::new(100, 100, &mut rng);
    let ids: Vec<usize> = (0..64).map(|i| i % 100).collect();
    c.bench_function("embedding_lookup_64", |b| {
        b.iter(|| black_box(emb.forward(&ids)))
    });
}

fn bench_batchnorm(c: &mut Criterion) {
    let mut bn = etsb_nn::BatchNorm::new(32);
    let x = Matrix::from_fn(55, 32, |i, j| ((i * 32 + j) as f32 * 0.07).sin());
    c.bench_function("batchnorm_train_55x32", |b| {
        b.iter(|| black_box(bn.forward_train(&x)))
    });
    c.bench_function("batchnorm_eval_55x32", |b| {
        b.iter(|| black_box(bn.forward_eval(&x)))
    });
}

criterion_group!(
    benches,
    bench_stacked_birnn_forward,
    bench_stacked_birnn_backward,
    bench_embedding,
    bench_batchnorm
);
criterion_main!(benches);
