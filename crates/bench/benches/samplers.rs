//! Microbenchmarks for the three trainset-selection algorithms (§4.2).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use etsb_core::sampling;
use etsb_datasets::{Dataset, GenConfig};
use etsb_table::CellFrame;

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("samplers");
    group.sample_size(10);
    for &scale in &[0.05f64, 0.2] {
        let pair = Dataset::Beers
            .generate(&GenConfig { scale, seed: 1 })
            .expect("dataset generation");
        let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
        let rows = frame.n_tuples();
        group.bench_with_input(BenchmarkId::new("random_set", rows), &frame, |b, f| {
            b.iter(|| black_box(sampling::random_set(f, 20, 7)))
        });
        group.bench_with_input(BenchmarkId::new("diver_set", rows), &frame, |b, f| {
            b.iter(|| black_box(sampling::diver_set(f, 20, 7)))
        });
        // RahaSet includes the full strategy + clustering pipeline, so it
        // is benchmarked at the smaller scale only.
        if scale < 0.1 {
            group.bench_with_input(BenchmarkId::new("raha_set", rows), &frame, |b, f| {
                b.iter(|| black_box(sampling::raha_set(f, 20, 7)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
