//! Microbenchmarks for the tensor substrate: the matmul variants that
//! dominate RNN training time.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use etsb_tensor::{init, Matrix};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[16usize, 64, 128] {
        let mut rng = init::seeded_rng(1);
        let a = init::glorot_uniform(n, n, &mut rng);
        let b = init::glorot_uniform(n, n, &mut rng);
        group.bench_with_input(BenchmarkId::new("plain", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)))
        });
        group.bench_with_input(BenchmarkId::new("a_bT", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul_transposed(&b)))
        });
        group.bench_with_input(BenchmarkId::new("aT_b", n), &n, |bench, _| {
            bench.iter(|| black_box(a.transposed_matmul(&b)))
        });
    }
    group.finish();
}

fn bench_vec_kernels(c: &mut Criterion) {
    let mut rng = init::seeded_rng(2);
    let m = init::glorot_uniform(64, 64, &mut rng);
    let v: Vec<f32> = (0..64).map(|i| (i as f32 * 0.1).sin()).collect();
    c.bench_function("vecmat_64", |b| {
        b.iter(|| black_box(m.vecmat(black_box(&v))))
    });
    c.bench_function("matvec_64", |b| {
        b.iter(|| black_box(m.matvec(black_box(&v))))
    });
    let mut grad = Matrix::zeros(64, 64);
    c.bench_function("add_outer_64", |b| {
        b.iter(|| {
            grad.add_outer(1.0, black_box(&v), black_box(&v));
        })
    });
    let mut x: Vec<f32> = (0..128).map(|i| i as f32 * 0.01 - 0.5).collect();
    c.bench_function("softmax_128", |b| {
        b.iter(|| {
            let mut y = x.clone();
            etsb_tensor::softmax_inplace(&mut y);
            black_box(y)
        })
    });
    c.bench_function("tanh_128", |b| {
        b.iter(|| {
            etsb_tensor::tanh_inplace(black_box(&mut x));
        })
    });
}

criterion_group!(benches, bench_matmul, bench_vec_kernels);
criterion_main!(benches);
