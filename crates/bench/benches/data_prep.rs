//! Microbenchmarks for the data-preparation pipeline (§4.1): generation,
//! merge, dictionary construction and encoding.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use etsb_core::EncodedDataset;
use etsb_datasets::{Dataset, GenConfig};
use etsb_table::{csv, CellFrame, CharIndex};

fn bench_generate(c: &mut Criterion) {
    c.bench_function("generate_beers_0.1", |b| {
        b.iter(|| {
            black_box(
                Dataset::Beers
                    .generate(&GenConfig {
                        scale: 0.1,
                        seed: 1,
                    })
                    .expect("dataset generation"),
            )
        })
    });
}

fn bench_merge(c: &mut Criterion) {
    let pair = Dataset::Beers
        .generate(&GenConfig {
            scale: 0.1,
            seed: 1,
        })
        .expect("dataset generation");
    c.bench_function("merge_beers_0.1", |b| {
        b.iter(|| black_box(CellFrame::merge(&pair.dirty, &pair.clean).unwrap()))
    });
}

fn bench_encode(c: &mut Criterion) {
    let pair = Dataset::Beers
        .generate(&GenConfig {
            scale: 0.1,
            seed: 1,
        })
        .expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
    c.bench_function("encode_beers_0.1", |b| {
        b.iter(|| black_box(EncodedDataset::from_frame(&frame)))
    });
    let dict = CharIndex::build(&frame);
    c.bench_function("char_encode_single", |b| {
        b.iter(|| black_box(dict.encode(black_box("American Pale Ale (APA)"))))
    });
}

fn bench_csv(c: &mut Criterion) {
    let pair = Dataset::Rayyan
        .generate(&GenConfig {
            scale: 0.2,
            seed: 2,
        })
        .expect("dataset generation");
    let text = csv::to_string(&pair.dirty);
    c.bench_function("csv_write_rayyan_0.2", |b| {
        b.iter(|| black_box(csv::to_string(&pair.dirty)))
    });
    c.bench_function("csv_parse_rayyan_0.2", |b| {
        b.iter(|| black_box(csv::parse(&text).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_generate,
    bench_merge,
    bench_encode,
    bench_csv
);
criterion_main!(benches);
