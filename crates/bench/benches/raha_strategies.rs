//! Microbenchmarks for the Raha baseline's strategy battery and
//! clustering stage.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use etsb_datasets::{Dataset, GenConfig};
use etsb_raha::strategies::{
    default_battery, FdViolation, FrequencyOutlier, GaussianOutlier, KnowledgeBase, PatternShape,
    Strategy,
};
use etsb_raha::{build_features, cluster_columns};
use etsb_table::CellFrame;

fn beers_frame() -> CellFrame {
    let pair = Dataset::Beers
        .generate(&GenConfig {
            scale: 0.1,
            seed: 1,
        })
        .expect("dataset generation");
    CellFrame::merge(&pair.dirty, &pair.clean).unwrap()
}

fn bench_individual_strategies(c: &mut Criterion) {
    let frame = beers_frame();
    let cases: Vec<(&str, Box<dyn Strategy>)> = vec![
        (
            "frequency",
            Box::new(FrequencyOutlier { max_rel_freq: 0.02 }),
        ),
        ("gaussian", Box::new(GaussianOutlier { z_threshold: 3.0 })),
        (
            "pattern",
            Box::new(PatternShape {
                max_rel_freq: 0.05,
                collapse_runs: true,
            }),
        ),
        ("fd", Box::new(FdViolation { min_support: 0.95 })),
        ("kb", Box::new(KnowledgeBase::builtin())),
    ];
    for (name, strategy) in cases {
        c.bench_function(&format!("strategy_{name}_beers"), |b| {
            b.iter(|| black_box(strategy.run(&frame)))
        });
    }
}

fn bench_battery_and_clustering(c: &mut Criterion) {
    let frame = beers_frame();
    let battery = default_battery();
    let mut group = c.benchmark_group("raha_pipeline");
    group.sample_size(10);
    group.bench_function("battery_beers", |b| {
        b.iter(|| black_box(build_features(&frame, &battery)))
    });
    let features = build_features(&frame, &battery);
    group.bench_function("cluster_beers_k20", |b| {
        b.iter(|| black_box(cluster_columns(&frame, &features, 20)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_individual_strategies,
    bench_battery_and_clustering
);
criterion_main!(benches);
