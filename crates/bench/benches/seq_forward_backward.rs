//! The sequence hot path, end to end: one sample through the paper's
//! two-stacked BiRNN (64 units/direction), forward *and* backward — the
//! unit of work the training loop repeats per cell per epoch.
//!
//! Three arms per length: `prechange` is the frozen pre-workspace
//! implementation ([`etsb_bench::hotpath_baseline`]), `naive` is the
//! current allocating reference path (fresh cache and intermediate
//! matrices every call), `workspace` is the `_into` path reusing a
//! per-worker [`etsb_tensor::Workspace`] and cache. `naive` and
//! `workspace` produce bitwise-identical numbers; the delta is pure
//! allocator and kernel time.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use etsb_bench::hotpath_baseline;
use etsb_nn::{RnnCell, StackedBiRnn, StackedBiRnnCache};
use etsb_tensor::{init, Matrix, Workspace};

const LENGTHS: [usize; 3] = [8, 32, 128];
const EMBED_DIM: usize = 86; // Beers alphabet
const HIDDEN: usize = 64;

fn bench_seq_forward_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("seq_forward_backward");
    let mut rng = init::seeded_rng(1);
    let net: StackedBiRnn<RnnCell> = StackedBiRnn::new(EMBED_DIM, HIDDEN, &mut rng);
    let mut grads = etsb_nn::grad_buffer_for(&net.params());
    let grad_out = vec![1.0_f32; net.output_dim()];

    for &len in &LENGTHS {
        let input = init::glorot_uniform(len, EMBED_DIM, &mut rng);

        group.bench_with_input(BenchmarkId::new("prechange", len), &len, |b, _| {
            b.iter(|| {
                let (out, cache) = hotpath_baseline::forward(&net, input.clone());
                black_box(&out);
                black_box(hotpath_baseline::backward(
                    &net,
                    &cache,
                    &grad_out,
                    grads.slots_mut(),
                ))
            })
        });

        group.bench_with_input(BenchmarkId::new("naive", len), &len, |b, _| {
            b.iter(|| {
                let (out, cache) = net.forward(input.clone());
                black_box(&out);
                black_box(net.backward(&cache, &grad_out, grads.slots_mut()))
            })
        });

        let mut ws = Workspace::new();
        let mut cache = StackedBiRnnCache::<RnnCell>::default();
        let mut feat = vec![0.0_f32; net.output_dim()];
        let mut grad_inputs = Matrix::default();
        group.bench_with_input(BenchmarkId::new("workspace", len), &len, |b, _| {
            b.iter(|| {
                net.forward_into(&input, &mut feat, &mut cache, &mut ws);
                black_box(&feat);
                net.backward_into(
                    &cache,
                    &grad_out,
                    grads.slots_mut(),
                    &mut grad_inputs,
                    &mut ws,
                );
                black_box(&grad_inputs);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_seq_forward_backward);
criterion_main!(benches);
