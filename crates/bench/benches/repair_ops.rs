//! Microbenchmarks for the repair layer: edit distances, shape
//! operations, FD discovery and repair proposal over a realistic frame.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use etsb_datasets::{Dataset, GenConfig};
use etsb_repair::{bounded_levenshtein, dominant_shape, levenshtein, Repairer};
use etsb_table::CellFrame;

fn bench_distances(c: &mut Criterion) {
    let pairs = [
        (
            "heart failure patients given ace inhibitor",
            "hexrt fxilure patients given ace inhibitor",
        ),
        ("Birmingham", "Birmingxam"),
        ("12.0 oz", "12.0"),
    ];
    c.bench_function("levenshtein_mixed", |b| {
        b.iter(|| {
            for (x, y) in &pairs {
                black_box(levenshtein(black_box(x), black_box(y)));
            }
        })
    });
    c.bench_function("bounded_levenshtein_mixed", |b| {
        b.iter(|| {
            for (x, y) in &pairs {
                black_box(bounded_levenshtein(black_box(x), black_box(y), 2));
            }
        })
    });
    // The early-exit case the bound exists for: wildly different strings.
    c.bench_function("bounded_levenshtein_early_exit", |b| {
        b.iter(|| {
            black_box(bounded_levenshtein(
                black_box("completely different content here"),
                black_box("zzzzz"),
                2,
            ))
        })
    });
}

fn bench_shapes(c: &mut Criterion) {
    let values: Vec<String> = (0..200)
        .map(|i| format!("value {i} with 12.{i} digits"))
        .collect();
    c.bench_function("dominant_shape_200", |b| {
        b.iter(|| black_box(dominant_shape(values.iter().map(String::as_str))))
    });
}

fn bench_repairer(c: &mut Criterion) {
    let pair = Dataset::Beers
        .generate(&GenConfig {
            scale: 0.1,
            seed: 1,
        })
        .expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).unwrap();
    let mask: Vec<bool> = frame.cells().iter().map(|cell| cell.label).collect();
    let mut group = c.benchmark_group("repairer");
    group.sample_size(10);
    group.bench_function("fit_beers_0.1", |b| {
        b.iter(|| black_box(Repairer::fit(&frame, &mask)))
    });
    let repairer = Repairer::fit(&frame, &mask);
    group.bench_function("propose_all_beers_0.1", |b| {
        b.iter(|| black_box(repairer.propose_all(&frame, &mask)))
    });
    group.finish();
}

criterion_group!(benches, bench_distances, bench_shapes, bench_repairer);
criterion_main!(benches);
