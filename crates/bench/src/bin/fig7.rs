//! Regenerates **Figure 7**: average train- vs test-accuracy per epoch
//! for ETSB-RNN (confidence band over repetitions), with the lowest-
//! train-loss epoch markers — the paper's overfitting check.
//!
//! ```text
//! cargo run --release -p etsb-bench --bin fig7 -- --runs 3 --out fig7.csv
//! ```

use etsb_bench::harness::{footnote, prepare_dataset, progress, ConsoleTable};
use etsb_bench::{experiment_config, parse_args, write_outputs};
use etsb_core::config::ModelKind;
use etsb_core::eval::Summary;
use etsb_core::pipeline::run_once_on_frame;
use std::collections::BTreeMap;

fn main() {
    let args = parse_args();
    let mut csv =
        String::from("dataset,epoch,mean_train_acc,train_ci95,mean_test_acc,test_ci95,n_runs\n");
    let mut markers = String::from("dataset,run,best_epoch,train_acc_at_best,test_acc_at_best\n");
    let mut datasets = Vec::new();

    for &ds in &args.datasets {
        let (frame, info) = prepare_dataset(&args, ds);
        datasets.push(info);
        let mut cfg = experiment_config(&args, ModelKind::Etsb);
        // Figure 7 plots the train-accuracy curve, so pay for tracking it.
        cfg.train.track_train_acc = true;
        let mut train_series: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
        let mut test_series: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
        progress(ds, format!("ETSB-RNN x{}...", args.runs));
        for rep in 0..args.runs as u64 {
            let result = run_once_on_frame(&frame, &cfg, rep);
            let h = &result.history;
            for (epoch, &acc) in h.train_acc.iter().enumerate() {
                train_series.entry(epoch).or_default().push(acc as f64);
            }
            for (i, &epoch) in h.eval_epochs.iter().enumerate() {
                test_series
                    .entry(epoch)
                    .or_default()
                    .push(h.test_acc[i] as f64);
            }
            markers.push_str(&format!(
                "{},{},{},{},{}\n",
                ds.name(),
                rep,
                h.best_epoch,
                h.train_acc[h.best_epoch],
                h.test_acc_at_best()
                    .map(|a| a.to_string())
                    .unwrap_or_default()
            ));
        }
        println!("\n{} (ETSB-RNN):", ds.name());
        let table = ConsoleTable::new(&[6, 11, 11, 8]);
        table.row(&["epoch", "train acc", "test acc", "gap"]);
        for (&epoch, test_accs) in &test_series {
            let test = Summary::of(test_accs).expect("at least one run");
            let train = Summary::of(train_series.get(&epoch).expect("train acc every epoch"))
                .expect("at least one run");
            table.row(&[
                epoch.to_string(),
                format!("{:.4}", train.mean),
                format!("{:.4}", test.mean),
                format!("{:.4}", train.mean - test.mean),
            ]);
            csv.push_str(&format!(
                "{},{},{:.4},{:.4},{:.4},{:.4},{}\n",
                ds.name(),
                epoch,
                train.mean,
                train.ci95(),
                test.mean,
                test.ci95(),
                test.n
            ));
        }
    }
    csv.push('\n');
    csv.push_str(&markers);
    let mut cfg = experiment_config(&args, ModelKind::Etsb);
    cfg.train.track_train_acc = true;
    write_outputs(&args, &cfg, datasets, &csv);
    footnote(
        "the paper's no-overfitting claim = small, shrinking train/test gap; \
         Flights is the outlier with a persistently large gap",
    );
}
