//! **Ablation D** (§5.7 future work, implemented): does adding the
//! paper's proposed extensions — functional-dependency signals and
//! duplicate-record arbitration — lift ETSB-RNN where it is weakest?
//!
//! Four conditions per dataset: the bare model, +FD, +duplicates, +both.
//! The paper predicts the duplicate extension matters most on Flights
//! ("this information allows us to identify identical records stemming
//! from two different sources").
//!
//! ```text
//! cargo run --release -p etsb-bench --bin ablation_extensions -- --dataset flights --runs 2
//! ```

use etsb_bench::harness::{prepare_dataset, progress, ConsoleTable};
use etsb_bench::{experiment_config, fmt, parse_args, write_outputs};
use etsb_core::config::ModelKind;
use etsb_core::eval::{aggregate, Metrics};
use etsb_core::extensions::{duplicate_aware_auto, fd_augmented};
use etsb_core::{sampling, EncodedDataset};

fn main() {
    let args = parse_args();
    let table = ConsoleTable::new(&[-10, -12, 6, 6, 6, 8]);
    table.row(&["dataset", "condition", "P", "R", "F1", "F1 S.D."]);
    let mut csv = String::from("dataset,condition,precision,recall,f1_mean,f1_sd,n\n");
    let mut datasets = Vec::new();
    for &ds in &args.datasets {
        let (frame, info) = prepare_dataset(&args, ds);
        datasets.push(info);
        let data = EncodedDataset::from_frame(&frame);
        let labels: Vec<bool> = frame.cells().iter().map(|c| c.label).collect();
        let cfg = experiment_config(&args, ModelKind::Etsb);

        // Collect raw per-run predictions once; each condition reuses them.
        let mut per_condition: Vec<Vec<Metrics>> = vec![Vec::new(); 4];
        for rep in 0..args.runs as u64 {
            progress(ds, format!("ETSB-RNN run {rep}..."));
            let seed = cfg.seed.wrapping_add(rep);
            let sample = sampling::diver_set(&frame, cfg.n_label_tuples, seed);
            // Full-table prediction mask: the model's output on test
            // cells, ground truth on the 20 labelled tuples (the user
            // already knows those).
            let (train_cells, test_cells) = data.split_by_tuples(&sample);
            let mut rng = etsb_tensor::init::seeded_rng(seed);
            let mut model = etsb_core::model::AnyModel::new(cfg.model, &data, &cfg.train, &mut rng);
            let _hist = etsb_core::train::train_model(
                &mut model,
                &data,
                &train_cells,
                &test_cells,
                &cfg.train,
                seed,
            );
            let mut preds = vec![false; data.n_cells()];
            let test_preds = model.predict(&data, &test_cells);
            for (&cell, &p) in test_cells.iter().zip(&test_preds) {
                preds[cell] = p;
            }
            for &cell in &train_cells {
                preds[cell] = data.labels[cell];
            }

            let conditions = [
                preds.clone(),
                fd_augmented(&frame, &preds, 0.95),
                duplicate_aware_auto(&frame, &preds),
                duplicate_aware_auto(&frame, &fd_augmented(&frame, &preds, 0.95)),
            ];
            for (slot, cond_preds) in per_condition.iter_mut().zip(&conditions) {
                slot.push(Metrics::from_predictions(cond_preds, &labels));
            }
        }

        for (name, metrics) in ["ETSB", "ETSB+FD", "ETSB+dup", "ETSB+FD+dup"]
            .iter()
            .zip(&per_condition)
        {
            let (p, r, f1) = aggregate(metrics).expect("at least one run");
            table.row(&[
                ds.name().to_string(),
                name.to_string(),
                fmt(p.mean),
                fmt(r.mean),
                fmt(f1.mean),
                fmt(f1.std),
            ]);
            csv.push_str(&format!(
                "{},{},{:.4},{:.4},{:.4},{:.4},{}\n",
                ds.name(),
                name,
                p.mean,
                r.mean,
                f1.mean,
                f1.std,
                f1.n
            ));
        }
    }
    let cfg = experiment_config(&args, ModelKind::Etsb);
    write_outputs(&args, &cfg, datasets, &csv);
}
