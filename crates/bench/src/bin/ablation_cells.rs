//! **Ablation C** (§2's design claim): the paper argues vanilla RNNs are
//! "less complex and therefore do not need as much time for training"
//! than LSTM/GRU while detecting errors equally well. This bench swaps
//! the recurrent cell inside TSB-RNN and reports both F1 and training
//! time for all three.
//!
//! ```text
//! cargo run --release -p etsb-bench --bin ablation_cells -- --runs 2 --dataset beers
//! ```

use etsb_bench::harness::{footnote, prepare_dataset, progress, ConsoleTable};
use etsb_bench::{experiment_config, fmt, parse_args, write_outputs};
use etsb_core::config::{CellKind, ModelKind};
use etsb_core::eval::{aggregate, Metrics, Summary};
use etsb_core::pipeline::{run_once_on_frame, RunResult};

fn main() {
    let args = parse_args();
    let cells = [CellKind::Vanilla, CellKind::Lstm, CellKind::Gru];
    let table = ConsoleTable::new(&[-10, -6, 7, 8, 10, 8]);
    table.row(&["dataset", "cell", "F1", "F1 S.D.", "train[s]", "weights"]);
    let mut csv = String::from("dataset,cell,f1_mean,f1_sd,train_secs,n\n");
    let mut datasets = Vec::new();
    for &ds in &args.datasets {
        let (frame, info) = prepare_dataset(&args, ds);
        datasets.push(info);
        for cell in cells {
            progress(ds, format!("{} x{}...", cell.name(), args.runs));
            let mut cfg = experiment_config(&args, ModelKind::Tsb);
            cfg.train.cell = cell;
            let runs: Vec<RunResult> = (0..args.runs as u64)
                .map(|rep| run_once_on_frame(&frame, &cfg, rep))
                .collect();
            let metrics: Vec<Metrics> = runs.iter().map(|r| r.metrics).collect();
            let (_, _, f1) = aggregate(&metrics).expect("at least one run");
            let secs = Summary::of(
                &runs
                    .iter()
                    .map(|r| r.train_time.as_secs_f64())
                    .collect::<Vec<_>>(),
            )
            .expect("at least one run");
            table.row(&[
                ds.name().to_string(),
                cell.name().to_string(),
                fmt(f1.mean),
                fmt(f1.std),
                format!("{:.1}", secs.mean),
                "-".to_string(),
            ]);
            csv.push_str(&format!(
                "{},{},{:.4},{:.4},{:.2},{}\n",
                ds.name(),
                cell.name(),
                f1.mean,
                f1.std,
                secs.mean,
                f1.n
            ));
        }
    }
    footnote("the paper's claim: vanilla matches gated cells at lower training cost");
    let cfg = experiment_config(&args, ModelKind::Tsb);
    write_outputs(&args, &cfg, datasets, &csv);
}
