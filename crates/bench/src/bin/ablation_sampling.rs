//! **Ablation A** (§5.2's claim "We reached the best results with our
//! novel Algorithm 3"): hold the model fixed (TSB-RNN) and swap the
//! trainset-selection algorithm — RandomSet vs RahaSet vs DiverSet.
//!
//! ```text
//! cargo run --release -p etsb-bench --bin ablation_sampling -- --runs 3
//! ```

use etsb_bench::harness::{prepare_dataset, progress, ConsoleTable};
use etsb_bench::{experiment_config, fmt, parse_args, write_outputs};
use etsb_core::config::{ModelKind, SamplerKind};
use etsb_core::eval::{aggregate, Metrics};
use etsb_core::pipeline::run_once_on_frame;

fn main() {
    let args = parse_args();
    let samplers = [
        SamplerKind::Random,
        SamplerKind::Raha,
        SamplerKind::DiverSet,
    ];
    let table = ConsoleTable::new(&[-10, 11, 8, 11, 8, 11, 8]);
    table.row(&[
        "dataset",
        "Random F1",
        "S.D.",
        "Raha F1",
        "S.D.",
        "DiverSet F1",
        "S.D.",
    ]);
    let mut csv = String::from("dataset,sampler,f1_mean,f1_sd,n\n");
    let mut datasets = Vec::new();
    for &ds in &args.datasets {
        let (frame, info) = prepare_dataset(&args, ds);
        datasets.push(info);
        let mut cells = Vec::new();
        for sampler in samplers {
            progress(ds, format!("{} x{}...", sampler.name(), args.runs));
            let mut cfg = experiment_config(&args, ModelKind::Tsb);
            cfg.sampler = sampler;
            let metrics: Vec<Metrics> = (0..args.runs as u64)
                .map(|rep| run_once_on_frame(&frame, &cfg, rep).metrics)
                .collect();
            let (_, _, f1) = aggregate(&metrics).expect("at least one run");
            cells.push(f1);
            csv.push_str(&format!(
                "{},{},{:.4},{:.4},{}\n",
                ds.name(),
                sampler.name(),
                f1.mean,
                f1.std,
                f1.n
            ));
        }
        table.row(&[
            ds.name().to_string(),
            fmt(cells[0].mean),
            fmt(cells[0].std),
            fmt(cells[1].mean),
            fmt(cells[1].std),
            fmt(cells[2].mean),
            fmt(cells[2].std),
        ]);
    }
    let cfg = experiment_config(&args, ModelKind::Tsb);
    write_outputs(&args, &cfg, datasets, &csv);
}
