//! Million-row streaming-throughput benchmark for the chunked detection
//! pipeline.
//!
//! Drives [`etsb_core::stream_predict`] over a deterministic synthetic
//! [`RowSource`] that *generates* rows on the fly — no table is ever
//! materialized, on disk or in memory — at two row counts per kernel
//! policy, and reports cells/sec plus the peak resident chunk and
//! encode-workspace bytes read back from the metrics registry gauges
//! the pipeline itself maintains. Because every synthetic value is
//! fixed-width and drawn from a bounded pool, those peaks must be
//! **identical across row counts**; the bench (and `--validate`)
//! fail if they are not, which is the executable form of the O(chunk)
//! memory claim. Writes `BENCH_stream.json` (schema-checked by
//! `--validate` and gated in `run_checks.sh`) and a
//! `BENCH_stream.manifest.json` provenance sidecar.
//!
//! ```text
//! cargo run --release -p etsb-bench --bin stream_bench             # 1M rows
//! cargo run --release -p etsb-bench --bin stream_bench -- --smoke  # 100k rows
//! cargo run --release -p etsb-bench --bin stream_bench -- --validate BENCH_stream.json
//! ```

use etsb_core::config::{CellKind, ExperimentConfig, ModelKind, TrainConfig};
use etsb_core::manifest::{DatasetInfo, RunManifest};
use etsb_core::model::AnyModel;
use etsb_core::{stream_predict, EncodedDataset, KernelPolicy, PredictCache};
use etsb_obs::json::{self, Value};
use etsb_table::scan::{scan_stats, FrameScan, RowSource};
use etsb_table::{AttrIndex, CharIndex, TableError};
use etsb_tensor::init::seeded_rng;
use std::fmt::Write as _;
use std::time::Instant;

const OUT_FILE: &str = "BENCH_stream.json";
const CHUNK_ROWS: usize = 4096;
const SEED: u64 = 11;
const N_COLS: usize = 4;
/// Distinct values cycled per column. Bounded so the prediction cache
/// and the chunk-buffer capacities are independent of the row count.
const VALUE_POOL: u64 = 512;
/// Rows used for the one-off dictionary/maxima calibration scan; covers
/// every character the generator can emit.
const CALIBRATION_ROWS: usize = 4096;
/// Two row counts per arm: the memory gauges must not move between them.
const FULL_ROWS: [usize; 2] = [250_000, 1_000_000];
const SMOKE_ROWS: [usize; 2] = [25_000, 100_000];

/// Deterministic synthetic dirty/clean row stream. Values are
/// fixed-width (`v0042-3` / `e0042-3`) draws from a per-column modulo
/// pool, so the set of string lengths — and therefore every reused
/// buffer capacity downstream — is the same for any row count. Rows are
/// a pure function of `(row, col)`; no RNG state, so `reset` is free.
#[derive(Debug)]
struct SynthSource {
    columns: Vec<String>,
    n_rows: usize,
    next: usize,
}

impl SynthSource {
    fn new(n_rows: usize) -> SynthSource {
        SynthSource {
            columns: (0..N_COLS).map(|c| format!("col{c}")).collect(),
            n_rows,
            next: 0,
        }
    }

    /// Pool index for cell `(r, c)` — a multiplicative hash, not an RNG,
    /// so any row can be regenerated independently.
    fn pool_index(r: usize, c: usize) -> u64 {
        (r as u64)
            .wrapping_mul(2_654_435_761)
            .wrapping_add(c as u64 * 97 + SEED)
            % VALUE_POOL
    }

    /// Roughly 1 in 13 cells carries an injected error.
    fn is_error(r: usize, c: usize) -> bool {
        (r * 31 + c * 7).is_multiple_of(13)
    }
}

impl RowSource for SynthSource {
    fn columns(&self) -> &[String] {
        &self.columns
    }

    fn next_row(
        &mut self,
        dirty: &mut Vec<String>,
        clean: &mut Vec<String>,
    ) -> Result<bool, TableError> {
        if self.next == self.n_rows {
            return Ok(false);
        }
        let r = self.next;
        self.next += 1;
        dirty.resize_with(N_COLS, String::new);
        clean.resize_with(N_COLS, String::new);
        for c in 0..N_COLS {
            let pool = Self::pool_index(r, c);
            let truth = &mut clean[c];
            truth.clear();
            let _ = write!(truth, "v{pool:04}-{c}");
            let observed = &mut dirty[c];
            observed.clear();
            if Self::is_error(r, c) {
                let _ = write!(observed, "e{:04}-{c}", (pool + 1) % VALUE_POOL);
            } else {
                observed.push_str(truth);
            }
        }
        Ok(true)
    }

    fn reset(&mut self) -> Result<(), TableError> {
        self.next = 0;
        Ok(())
    }
}

/// Frozen dictionaries and per-attribute maxima from one calibration
/// scan, plus the small untrained-but-deterministic detector every arm
/// shares — mirroring deployment, where the model is trained once and
/// then streamed over tables of any size.
struct Frozen {
    char_index: CharIndex,
    attr_index: AttrIndex,
    max_len: Vec<usize>,
    model: AnyModel,
}

fn frozen() -> Frozen {
    let mut source = SynthSource::new(CALIBRATION_ROWS);
    let (stats, char_index) = scan_stats(&mut source).expect("calibration scan");
    let attr_index = AttrIndex::from_names(source.columns().to_vec());
    let train = TrainConfig {
        rnn_units: 8,
        attr_rnn_units: 4,
        head_dim: 8,
        length_dense_dim: 8,
        embed_dim: Some(6),
        cell: CellKind::Vanilla,
        ..TrainConfig::default()
    };
    let dims = EncodedDataset::empty_with_dicts(char_index.clone(), attr_index.clone());
    let model = AnyModel::new(ModelKind::Etsb, &dims, &train, &mut seeded_rng(SEED));
    Frozen {
        char_index,
        attr_index,
        max_len: stats.max_len,
        model,
    }
}

struct ArmResult {
    kernel_policy: &'static str,
    rows: usize,
    cells: usize,
    flagged: usize,
    elapsed_ns: u64,
    cells_per_sec: f64,
    peak_chunk_bytes: u64,
    peak_encoded_bytes: u64,
}

impl ArmResult {
    fn peak_resident_bytes(&self) -> u64 {
        self.peak_chunk_bytes + self.peak_encoded_bytes
    }

    fn to_json_value(&self) -> Value {
        Value::obj([
            ("kernel_policy".to_string(), Value::from(self.kernel_policy)),
            ("rows".to_string(), Value::from(self.rows)),
            ("cells".to_string(), Value::from(self.cells)),
            ("chunk_rows".to_string(), Value::from(CHUNK_ROWS)),
            ("flagged".to_string(), Value::from(self.flagged)),
            ("elapsed_ns".to_string(), Value::from(self.elapsed_ns)),
            ("cells_per_sec".to_string(), Value::from(self.cells_per_sec)),
            (
                "peak_chunk_bytes".to_string(),
                Value::from(self.peak_chunk_bytes),
            ),
            (
                "peak_encoded_bytes".to_string(),
                Value::from(self.peak_encoded_bytes),
            ),
            (
                "peak_resident_bytes".to_string(),
                Value::from(self.peak_resident_bytes()),
            ),
        ])
    }
}

/// Stream `rows` synthetic rows through the detector and read the
/// pipeline's own registry gauges back as the memory measurement.
fn run_arm(
    frozen: &Frozen,
    kernel_policy: &'static str,
    policy: KernelPolicy,
    rows: usize,
) -> ArmResult {
    let mut scan = FrameScan::new(SynthSource::new(rows), frozen.max_len.clone(), CHUNK_ROWS);
    let mut cache = PredictCache::new(1 << 15);
    let started = Instant::now();
    let outcome = stream_predict(
        &frozen.model,
        &frozen.char_index,
        &frozen.attr_index,
        &mut scan,
        &mut cache,
        policy,
        |_| Ok(()),
    )
    .expect("streaming over the synthetic source");
    let elapsed = started.elapsed();

    let registry = etsb_obs::registry::global();
    let peak_chunk_bytes = registry.gauge("etsb_stream_chunk_bytes").value() as u64;
    let peak_encoded_bytes = registry.gauge("etsb_stream_encoded_bytes").value() as u64;
    // The gauges are the pipeline's own accounting; they must agree with
    // the outcome the call returned.
    assert_eq!(peak_chunk_bytes, outcome.peak_chunk_bytes as u64);
    assert_eq!(peak_encoded_bytes, outcome.peak_encoded_bytes as u64);
    assert_eq!(outcome.n_rows, rows);

    ArmResult {
        kernel_policy,
        rows,
        cells: outcome.n_cells,
        flagged: outcome.flagged,
        elapsed_ns: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
        cells_per_sec: outcome.n_cells as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE),
        peak_chunk_bytes,
        peak_encoded_bytes,
    }
}

fn run(row_counts: &[usize]) {
    // The gauges are the measurement here, so force them on regardless
    // of ETSB_METRICS.
    etsb_obs::registry::set_metrics_enabled(true);
    let frozen = frozen();
    let mut results = Vec::with_capacity(row_counts.len() * 2);
    for (kernel_policy, policy) in [
        ("exact", KernelPolicy::Exact),
        ("fast-math", KernelPolicy::FastMath),
    ] {
        for &rows in row_counts {
            let arm = run_arm(&frozen, kernel_policy, policy, rows);
            println!(
                "{kernel_policy:>9}  rows {rows:>9}  cells {:>9}  {:>12.0} cells/s  peak {:>8} B chunk + {:>8} B encoded",
                arm.cells, arm.cells_per_sec, arm.peak_chunk_bytes, arm.peak_encoded_bytes,
            );
            results.push(arm);
        }
        // The executable O(chunk) claim: growing the row count must not
        // move the resident peak by a single byte.
        let peaks: Vec<u64> = results
            .iter()
            .filter(|a| a.kernel_policy == kernel_policy)
            .map(ArmResult::peak_resident_bytes)
            .collect();
        if peaks.windows(2).any(|w| w[0] != w[1]) {
            eprintln!(
                "error: [{kernel_policy}] peak resident bytes vary with row count: {peaks:?}"
            );
            std::process::exit(1);
        }
    }

    let entries: Vec<Value> = results.iter().map(ArmResult::to_json_value).collect();
    if let Err(e) = std::fs::write(OUT_FILE, Value::Arr(entries).to_json()) {
        eprintln!("error: writing {OUT_FILE}: {e}");
        std::process::exit(1);
    }
    println!("wrote {OUT_FILE}");

    // Provenance sidecar in the shape `trace_lint --manifest` validates.
    let config = ExperimentConfig {
        model: ModelKind::Etsb,
        seed: SEED,
        ..ExperimentConfig::default()
    };
    let datasets = results
        .iter()
        .map(|a| {
            DatasetInfo::from_shape(
                &format!("stream_{}_r{}", a.kernel_policy, a.rows),
                (a.rows, N_COLS),
            )
        })
        .collect();
    let manifest = RunManifest::new(&config, results.len(), datasets).with_chunk_rows(CHUNK_ROWS);
    let stem = OUT_FILE.strip_suffix(".json").unwrap_or(OUT_FILE);
    let manifest_path = format!("{stem}.manifest.json");
    if let Err(e) = manifest.write(&manifest_path) {
        eprintln!("error: writing {manifest_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {manifest_path}");
}

/// Schema-check a results file: a JSON array covering both kernel
/// policies, each at two or more distinct row counts, with positive
/// throughput and — the point of the bench — a `peak_resident_bytes`
/// that is *identical* across row counts within each policy.
fn validate(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let value = json::parse(&text).map_err(|e| format!("invalid JSON: {e:?}"))?;
    let Value::Arr(entries) = value else {
        return Err("top-level value is not an array".into());
    };
    let num = |entry: &Value, key: &str| -> Result<f64, String> {
        entry
            .get(key)
            .and_then(Value::as_f64)
            .ok_or(format!("missing number field {key:?}"))
    };
    let mut by_policy: std::collections::HashMap<String, Vec<(f64, f64)>> =
        std::collections::HashMap::new();
    for (i, entry) in entries.iter().enumerate() {
        let policy = entry
            .get("kernel_policy")
            .and_then(Value::as_str)
            .ok_or(format!("entry {i}: missing string field 'kernel_policy'"))?;
        if policy != "exact" && policy != "fast-math" {
            return Err(format!(
                "entry {i}: kernel_policy {policy:?} not 'exact' or 'fast-math'"
            ));
        }
        let rows = num(entry, "rows")?;
        let context = format!("entry {i} ({policy}, {rows} rows)");
        if rows < 1.0 {
            return Err(format!("{context}: rows not positive"));
        }
        if num(entry, "cells")? < rows {
            return Err(format!("{context}: fewer cells than rows"));
        }
        if num(entry, "chunk_rows")? < 1.0 {
            return Err(format!("{context}: chunk_rows not positive"));
        }
        if num(entry, "cells_per_sec")? <= 0.0 {
            return Err(format!("{context}: throughput not positive"));
        }
        let resident = num(entry, "peak_resident_bytes")?;
        if resident <= 0.0 {
            return Err(format!("{context}: peak_resident_bytes not positive"));
        }
        if resident != num(entry, "peak_chunk_bytes")? + num(entry, "peak_encoded_bytes")? {
            return Err(format!("{context}: resident peak is not chunk + encoded"));
        }
        by_policy
            .entry(policy.to_string())
            .or_default()
            .push((rows, resident));
    }
    for policy in ["exact", "fast-math"] {
        let arms = by_policy
            .get(policy)
            .ok_or(format!("no arms with kernel_policy {policy:?}"))?;
        let distinct_rows: std::collections::HashSet<u64> =
            arms.iter().map(|&(rows, _)| rows as u64).collect();
        if distinct_rows.len() < 2 {
            return Err(format!(
                "kernel_policy {policy:?}: need at least 2 distinct row counts to \
                 witness O(chunk) memory, got {}",
                distinct_rows.len()
            ));
        }
        let peak = arms[0].1;
        if arms.iter().any(|&(_, p)| p != peak) {
            return Err(format!(
                "kernel_policy {policy:?}: peak_resident_bytes varies with row count \
                 ({:?})",
                arms
            ));
        }
    }
    Ok(entries.len())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--validate") => {
            let path = args.get(1).map(String::as_str).unwrap_or(OUT_FILE);
            match validate(path) {
                Ok(n) => println!("{path}: {n} arm(s), schema ok"),
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("--smoke") => run(&SMOKE_ROWS),
        None => run(&FULL_ROWS),
        Some(other) => {
            eprintln!("error: unknown flag {other} (try --smoke or --validate PATH)");
            std::process::exit(2);
        }
    }
}
