//! **Ablation B**: which of ETSB-RNN's enrichment inputs (§4.3.2) earns
//! its keep? Four conditions on every dataset:
//!
//! * `TSB` — characters only (the baseline architecture),
//! * `ETSB-attr` — ETSB with the attribute ids collapsed to a constant,
//! * `ETSB-len` — ETSB with `length_norm` zeroed,
//! * `ETSB` — the full enriched model.
//!
//! Input ablation (feeding a constant) keeps parameter counts identical,
//! so differences measure the information, not the capacity.
//!
//! ```text
//! cargo run --release -p etsb-bench --bin ablation_inputs -- --runs 3
//! ```

use etsb_bench::harness::{footnote, prepare_dataset, progress, ConsoleTable};
use etsb_bench::{experiment_config, fmt, parse_args, write_outputs};
use etsb_core::config::ModelKind;
use etsb_core::eval::{aggregate, Metrics, Summary};
use etsb_core::pipeline::run_with_sample;
use etsb_core::{sampling, EncodedDataset};
use etsb_table::CellFrame;

#[derive(Clone, Copy, PartialEq)]
enum Condition {
    Tsb,
    EtsbNoAttr,
    EtsbNoLen,
    EtsbFull,
}

impl Condition {
    const ALL: [Condition; 4] = [
        Condition::Tsb,
        Condition::EtsbNoAttr,
        Condition::EtsbNoLen,
        Condition::EtsbFull,
    ];

    fn name(self) -> &'static str {
        match self {
            Condition::Tsb => "TSB",
            Condition::EtsbNoAttr => "ETSB-attr",
            Condition::EtsbNoLen => "ETSB-len",
            Condition::EtsbFull => "ETSB",
        }
    }
}

fn run_condition(
    cond: Condition,
    frame: &CellFrame,
    data: &EncodedDataset,
    args: &etsb_bench::BenchArgs,
) -> Summary {
    let kind = if cond == Condition::Tsb {
        ModelKind::Tsb
    } else {
        ModelKind::Etsb
    };
    let cfg = experiment_config(args, kind);
    // Ablate by constant-feeding the input in question.
    let mut ablated = data.clone();
    match cond {
        Condition::EtsbNoAttr => ablated.attr_ids.iter_mut().for_each(|a| *a = 0),
        Condition::EtsbNoLen => ablated.length_norms.iter_mut().for_each(|l| *l = 0.0),
        _ => {}
    }
    let metrics: Vec<Metrics> = (0..args.runs as u64)
        .map(|rep| {
            let seed = cfg.seed.wrapping_add(rep);
            let sample = sampling::diver_set(frame, cfg.n_label_tuples, seed);
            run_with_sample(frame, &ablated, &sample, &cfg, seed).metrics
        })
        .collect();
    aggregate(&metrics).expect("at least one run").2
}

fn main() {
    let args = parse_args();
    let table = ConsoleTable::new(&[-10, 9, 11, 10, 9]);
    table.row(&["dataset", "TSB", "ETSB-attr", "ETSB-len", "ETSB"]);
    let mut csv = String::from("dataset,condition,f1_mean,f1_sd,n\n");
    let mut datasets = Vec::new();
    for &ds in &args.datasets {
        let (frame, info) = prepare_dataset(&args, ds);
        datasets.push(info);
        let data = EncodedDataset::from_frame(&frame);
        let mut row = Vec::new();
        for cond in Condition::ALL {
            progress(ds, format!("{} x{}...", cond.name(), args.runs));
            let f1 = run_condition(cond, &frame, &data, &args);
            csv.push_str(&format!(
                "{},{},{:.4},{:.4},{}\n",
                ds.name(),
                cond.name(),
                f1.mean,
                f1.std,
                f1.n
            ));
            row.push(f1);
        }
        table.row(&[
            ds.name().to_string(),
            fmt(row[0].mean),
            fmt(row[1].mean),
            fmt(row[2].mean),
            fmt(row[3].mean),
        ]);
    }
    footnote("F1 means; ETSB-attr/-len feed a constant through that input path");
    let cfg = experiment_config(&args, ModelKind::Etsb);
    write_outputs(&args, &cfg, datasets, &csv);
}
