//! Regenerates **Table 5**: training time per dataset for TSB-RNN and
//! ETSB-RNN (mean ± S.D. over runs). Absolute seconds differ from the
//! paper's Colab GPUs (see DESIGN.md §5.3); the structure to compare is
//! the *ratio* — ETSB slightly slower than TSB, and the per-dataset
//! ordering driven by attribute count, alphabet size and value lengths.
//!
//! ```text
//! cargo run --release -p etsb-bench --bin table5 -- --runs 3
//! ```

use etsb_bench::{experiment_config, gen_config, maybe_write, paper, parse_args};
use etsb_core::config::ModelKind;
use etsb_core::pipeline::run_repeated;

fn main() {
    let args = parse_args();
    println!(
        "{:<10} {:>10} {:>7} {:>10} {:>7} {:>8} {:>14}",
        "Name", "TSB[s]", "S.D.", "ETSB[s]", "S.D.", "ratio", "paper ratio"
    );
    let mut csv = String::from("dataset,tsb_secs,tsb_sd,etsb_secs,etsb_sd\n");
    let mut totals = (0.0f64, 0.0f64, 0usize);
    for &ds in &args.datasets {
        let pair = ds
            .generate(&gen_config(&args, ds))
            .expect("dataset generation");
        let mut secs = Vec::new();
        for kind in [ModelKind::Tsb, ModelKind::Etsb] {
            let cfg = experiment_config(&args, kind);
            let rep =
                run_repeated(&pair.dirty, &pair.clean, &cfg, args.runs).expect("generated pair");
            secs.push(rep.train_secs);
        }
        let (tsb, etsb) = (secs[0], secs[1]);
        let (p_tsb, p_etsb) = paper::train_secs(ds);
        println!(
            "{:<10} {:>10.1} {:>7.1} {:>10.1} {:>7.1} {:>8.2} {:>14.2}",
            ds.name(),
            tsb.mean,
            tsb.std,
            etsb.mean,
            etsb.std,
            etsb.mean / tsb.mean,
            p_etsb / p_tsb
        );
        csv.push_str(&format!(
            "{},{:.2},{:.2},{:.2},{:.2}\n",
            ds.name(),
            tsb.mean,
            tsb.std,
            etsb.mean,
            etsb.std
        ));
        totals.0 += tsb.mean;
        totals.1 += etsb.mean;
        totals.2 += 1;
    }
    if totals.2 > 0 {
        println!(
            "{:<10} {:>10.1} {:>7} {:>10.1}  (paper AVG: 183 / 191 s on Colab GPUs)",
            "AVG",
            totals.0 / totals.2 as f64,
            "",
            totals.1 / totals.2 as f64
        );
    }
    maybe_write(&args.out, &csv);
}
