//! Regenerates **Table 5**: training time per dataset for TSB-RNN and
//! ETSB-RNN (mean ± S.D. over runs). Absolute seconds differ from the
//! paper's Colab GPUs (see DESIGN.md §5.3); the structure to compare is
//! the *ratio* — ETSB slightly slower than TSB, and the per-dataset
//! ordering driven by attribute count, alphabet size and value lengths.
//!
//! ```text
//! cargo run --release -p etsb-bench --bin table5 -- --runs 3
//! ```

use etsb_bench::harness::{progress, ConsoleTable};
use etsb_bench::{experiment_config, gen_config, paper, parse_args, write_outputs};
use etsb_core::config::ModelKind;
use etsb_core::manifest::DatasetInfo;
use etsb_core::pipeline::run_repeated;

fn main() {
    let args = parse_args();
    let table = ConsoleTable::new(&[-10, 10, 7, 10, 7, 8, 14]);
    table.row(&[
        "Name",
        "TSB[s]",
        "S.D.",
        "ETSB[s]",
        "S.D.",
        "ratio",
        "paper ratio",
    ]);
    let mut csv = String::from("dataset,tsb_secs,tsb_sd,etsb_secs,etsb_sd\n");
    let mut datasets = Vec::new();
    let mut totals = (0.0f64, 0.0f64, 0usize);
    for &ds in &args.datasets {
        let pair = ds
            .generate(&gen_config(&args, ds))
            .expect("dataset generation");
        datasets.push(DatasetInfo::from_shape(ds.name(), pair.dirty.shape()));
        let mut secs = Vec::new();
        for kind in [ModelKind::Tsb, ModelKind::Etsb] {
            progress(ds, format!("timing {} x{}...", kind.name(), args.runs));
            let cfg = experiment_config(&args, kind);
            let rep =
                run_repeated(&pair.dirty, &pair.clean, &cfg, args.runs).expect("generated pair");
            secs.push(rep.train_secs);
        }
        let (tsb, etsb) = (secs[0], secs[1]);
        let (p_tsb, p_etsb) = paper::train_secs(ds);
        table.row(&[
            ds.name().to_string(),
            format!("{:.1}", tsb.mean),
            format!("{:.1}", tsb.std),
            format!("{:.1}", etsb.mean),
            format!("{:.1}", etsb.std),
            format!("{:.2}", etsb.mean / tsb.mean),
            format!("{:.2}", p_etsb / p_tsb),
        ]);
        csv.push_str(&format!(
            "{},{:.2},{:.2},{:.2},{:.2}\n",
            ds.name(),
            tsb.mean,
            tsb.std,
            etsb.mean,
            etsb.std
        ));
        totals.0 += tsb.mean;
        totals.1 += etsb.mean;
        totals.2 += 1;
    }
    if totals.2 > 0 {
        table.row(&[
            "AVG".to_string(),
            format!("{:.1}", totals.0 / totals.2 as f64),
            String::new(),
            format!("{:.1}", totals.1 / totals.2 as f64),
            String::new(),
            String::new(),
            "(paper AVG: 183 / 191 s)".to_string(),
        ]);
    }
    let cfg = experiment_config(&args, ModelKind::Etsb);
    write_outputs(&args, &cfg, datasets, &csv);
}
