//! Regenerates **Table 4**: average F1 and standard deviation across
//! datasets, with and without Flights (Rotom never evaluated Flights, so
//! the paper reports both aggregations).
//!
//! ```text
//! cargo run --release -p etsb-bench --bin table4 -- --runs 3
//! ```

use etsb_bench::harness::{footnote, run_comparison, ConsoleTable, System};
use etsb_bench::{experiment_config, fmt, parse_args, write_outputs};
use etsb_core::config::ModelKind;
use etsb_core::eval::Summary;
use etsb_datasets::Dataset;

fn main() {
    let args = parse_args();
    let (points, datasets) = run_comparison(&args, &System::ALL);

    println!(
        "\n{:<12} {:>18} {:>18}",
        "system", "without Flights", "with Flights"
    );
    let table = ConsoleTable::new(&[-12, 9, 8, 9, 8]);
    table.row(&["", "AVG", "S.D.", "AVG", "S.D."]);
    let mut csv = String::from("system,scope,avg_f1,sd_f1,n_datasets\n");
    for system in System::ALL {
        let f1_of = |include_flights: bool| {
            let f1s: Vec<f64> = points
                .iter()
                .filter(|p| {
                    p.system == system && (include_flights || p.dataset != Dataset::Flights)
                })
                .map(|p| p.f1.mean)
                .collect();
            Summary::of(&f1s).expect("at least one run")
        };
        let without = f1_of(false);
        let with = f1_of(true);
        table.row(&[
            system.name().to_string(),
            fmt(without.mean),
            fmt(without.std),
            fmt(with.mean),
            fmt(with.std),
        ]);
        csv.push_str(&format!(
            "{},without_flights,{:.4},{:.4},{}\n{},with_flights,{:.4},{:.4},{}\n",
            system.name(),
            without.mean,
            without.std,
            without.n,
            system.name(),
            with.mean,
            with.std,
            with.n
        ));
    }
    footnote(
        "paper: Raha 0.85/0.85, Rotom 0.90/n-a, Rotom+SSL 0.86/n-a, \
         TSB 0.89/0.85, ETSB 0.91/0.88",
    );
    let cfg = experiment_config(&args, ModelKind::Etsb);
    write_outputs(&args, &cfg, datasets, &csv);
}
