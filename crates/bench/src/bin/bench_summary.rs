//! Machine-readable hot-path benchmark summary.
//!
//! Times the sequence hot path (StackedBiRnn forward + backward, 64
//! units/direction) on three per-sample arms — the frozen pre-change
//! implementation ([`etsb_bench::hotpath_baseline`]), the current
//! allocating reference path, and the workspace `_into` path — plus a
//! train_batch-shaped pair (`batch_forward_backward/*`): a 16-sequence
//! mixed-length mini-batch through the per-sample workspace loop versus
//! one timestep-major batched pass, and an inference-only pair
//! (`inference_exact/*` vs `inference_fast/*`) timing the batched
//! forward pass under both kernel policies. It then writes
//! `BENCH_hotpath.json`: a JSON array of
//! `{"bench": ..., "mean_ns": ..., "iqr_ns": ..., "samples": ...}`
//! entries that `run_checks.sh` schema-validates and CI can trend.
//! Arms are interleaved round by round and `mean_ns` is an
//! interquartile mean, so background load perturbs the reported
//! speedups as little as possible.
//!
//! ```text
//! cargo run --release -p etsb-bench --bin bench_summary              # full run
//! cargo run --release -p etsb-bench --bin bench_summary -- --smoke  # 6 samples
//! cargo run --release -p etsb-bench --bin bench_summary -- --validate BENCH_hotpath.json
//! ```

use etsb_bench::hotpath_baseline;
use etsb_nn::{KernelPolicy, RnnCell, SeqBatch, StackedBiRnn, StackedBiRnnCache};
use etsb_obs::json::{self, Value};
use etsb_tensor::{init, Matrix, Workspace};
use std::time::Instant;

const LENGTHS: [usize; 3] = [8, 32, 128];
/// Sequences per inference batch: sized like a well-coalesced serve
/// tick so the `inference_*` arms measure the batched forward pass the
/// detection hot path actually runs.
const INFER_BATCH: usize = 32;
/// A train_batch-shaped workload: 256 sequences (batch = trainset / 4 in
/// §5.2) with the short mixed-length profile of real database cells —
/// airline/city codes, dates, times and numeric ids run 2..=12
/// characters — so the batched arm exercises length bucketing and batch
/// shrinkage on the shapes training actually sees, not a rectangular
/// best case.
const BATCH_LENGTHS: [usize; 256] = [
    4, 8, 7, 3, 5, 8, 6, 10, 8, 3, 8, 2, 12, 6, 4, 7, 4, 4, 10, 6, 7, 12, 7, 6, 5, 10, 12, 3, 4,
    10, 3, 12, 7, 5, 10, 2, 10, 10, 3, 3, 10, 8, 2, 4, 10, 2, 12, 12, 4, 6, 8, 10, 5, 10, 10, 5, 5,
    10, 10, 8, 6, 3, 5, 3, 2, 3, 6, 4, 4, 10, 5, 10, 10, 12, 4, 5, 7, 12, 5, 8, 5, 7, 8, 5, 8, 4,
    5, 10, 2, 12, 4, 8, 10, 10, 3, 10, 12, 5, 7, 8, 8, 3, 10, 10, 4, 10, 12, 8, 4, 4, 3, 3, 6, 12,
    10, 6, 3, 5, 10, 3, 5, 3, 2, 4, 5, 10, 5, 12, 3, 2, 8, 8, 10, 2, 5, 10, 8, 5, 7, 4, 7, 4, 2, 4,
    2, 3, 3, 8, 7, 2, 4, 5, 4, 8, 4, 3, 10, 2, 12, 5, 5, 5, 3, 12, 5, 5, 6, 12, 7, 5, 10, 12, 8,
    10, 7, 3, 8, 10, 7, 4, 5, 10, 10, 10, 4, 4, 5, 4, 7, 4, 7, 5, 2, 10, 5, 8, 5, 2, 5, 8, 8, 10,
    3, 2, 10, 10, 5, 6, 5, 10, 5, 8, 10, 4, 10, 6, 2, 8, 2, 10, 2, 5, 4, 10, 6, 4, 8, 8, 5, 3, 5,
    3, 5, 10, 5, 12, 8, 4, 4, 10, 5, 3, 10, 12, 2, 8, 10, 10, 3, 4, 7, 4, 10, 10, 4, 4,
];
const EMBED_DIM: usize = 86; // Beers alphabet
const HIDDEN: usize = 64;
const DEFAULT_SAMPLES: usize = 40;
const SMOKE_SAMPLES: usize = 6;
const OUT_FILE: &str = "BENCH_hotpath.json";

struct BenchResult {
    bench: String,
    mean_ns: f64,
    /// Interquartile spread (Q3 − Q1) of the per-round samples, in ns —
    /// a dispersion bar so CI trending can tell a real regression from
    /// a noisy run.
    iqr_ns: f64,
    samples: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--validate") => {
            let path = args.get(1).map(String::as_str).unwrap_or(OUT_FILE);
            match validate(path) {
                Ok(n) => println!("{path}: {n} benchmark entr(y/ies), schema ok"),
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("--smoke") => run(SMOKE_SAMPLES),
        None => run(DEFAULT_SAMPLES),
        Some(other) => {
            eprintln!("error: unknown flag {other} (try --smoke or --validate PATH)");
            std::process::exit(2);
        }
    }
}

/// Run every benchmark, print a human summary (including the
/// workspace-vs-naive speedup per length) and write [`OUT_FILE`].
fn run(samples: usize) {
    let mut rng = init::seeded_rng(1);
    let net: StackedBiRnn<RnnCell> = StackedBiRnn::new(EMBED_DIM, HIDDEN, &mut rng);
    let mut grads = etsb_nn::grad_buffer_for(&net.params());
    let grad_out = vec![1.0_f32; net.output_dim()];

    let mut results: Vec<BenchResult> = Vec::new();
    for &len in &LENGTHS {
        let input = init::glorot_uniform(len, EMBED_DIM, &mut rng);

        let mut ws = Workspace::new();
        let mut cache = StackedBiRnnCache::<RnnCell>::default();
        let mut feat = vec![0.0_f32; net.output_dim()];
        let mut grad_inputs = Matrix::default();
        // Warm the workspace buffer pool so its arm measures steady state.
        net.forward_into(&input, &mut feat, &mut cache, &mut ws);
        net.backward_into(
            &cache,
            &grad_out,
            grads.slots_mut(),
            &mut grad_inputs,
            &mut ws,
        );

        // The three arms are interleaved round by round so a background
        // load spike lands on all of them, not just whichever arm owned
        // that window — the speedup ratio stays honest on a noisy box.
        let mut pre_ns = Vec::with_capacity(samples);
        let mut naive_ns = Vec::with_capacity(samples);
        let mut ws_ns = Vec::with_capacity(samples);
        for round in 0..=samples {
            let t = Instant::now();
            let (out, bcache) = hotpath_baseline::forward(&net, input.clone());
            std::hint::black_box(&out);
            std::hint::black_box(hotpath_baseline::backward(
                &net,
                &bcache,
                &grad_out,
                grads.slots_mut(),
            ));
            let pre = t.elapsed().as_nanos() as f64;

            let t = Instant::now();
            let (out, acache) = net.forward(input.clone());
            std::hint::black_box(&out);
            std::hint::black_box(net.backward(&acache, &grad_out, grads.slots_mut()));
            let naive = t.elapsed().as_nanos() as f64;

            let t = Instant::now();
            net.forward_into(&input, &mut feat, &mut cache, &mut ws);
            std::hint::black_box(&feat);
            net.backward_into(
                &cache,
                &grad_out,
                grads.slots_mut(),
                &mut grad_inputs,
                &mut ws,
            );
            std::hint::black_box(&grad_inputs);
            let wsn = t.elapsed().as_nanos() as f64;

            // Round 0 is the warm-up pass; discard it.
            if round > 0 {
                pre_ns.push(pre);
                naive_ns.push(naive);
                ws_ns.push(wsn);
            }
        }
        let (prechange, pre_iqr) = summarize(&mut pre_ns);
        let (naive, naive_iqr) = summarize(&mut naive_ns);
        let (workspace, ws_iqr) = summarize(&mut ws_ns);

        println!(
            "seq_forward_backward/{len:<4} prechange {prechange:>12.0} ns   naive {naive:>12.0} ns   workspace {workspace:>12.0} ns   speedup(vs prechange) {:>5.2}x",
            prechange / workspace
        );
        results.push(BenchResult {
            bench: format!("seq_forward_backward/prechange/{len}"),
            mean_ns: prechange,
            iqr_ns: pre_iqr,
            samples,
        });
        results.push(BenchResult {
            bench: format!("seq_forward_backward/naive/{len}"),
            mean_ns: naive,
            iqr_ns: naive_iqr,
            samples,
        });
        results.push(BenchResult {
            bench: format!("seq_forward_backward/workspace/{len}"),
            mean_ns: workspace,
            iqr_ns: ws_iqr,
            samples,
        });
    }

    bench_batch(&net, samples, &mut results, &mut rng);
    bench_inference(&net, samples, &mut results, &mut rng);

    let entries: Vec<Value> = results
        .iter()
        .map(|r| {
            Value::obj([
                ("bench".to_string(), Value::Str(r.bench.clone())),
                ("mean_ns".to_string(), Value::Num(r.mean_ns)),
                ("iqr_ns".to_string(), Value::Num(r.iqr_ns)),
                ("samples".to_string(), Value::Num(r.samples as f64)),
            ])
        })
        .collect();
    let text = Value::Arr(entries).to_json();
    if let Err(e) = std::fs::write(OUT_FILE, text) {
        eprintln!("error: writing {OUT_FILE}: {e}");
        std::process::exit(1);
    }
    println!("wrote {OUT_FILE}");
}

/// Benchmark a whole mini-batch through the stack: the per-sample
/// workspace loop (the former hot path) against one timestep-major
/// batched pass over the same sequences. Arms are interleaved round by
/// round like the per-sample benches, and the first round warms every
/// buffer pool before measurement starts.
fn bench_batch(
    net: &StackedBiRnn<RnnCell>,
    samples: usize,
    results: &mut Vec<BenchResult>,
    rng: &mut rand::rngs::StdRng,
) {
    let batch = SeqBatch::from_lengths(&BATCH_LENGTHS);
    let n = batch.n_samples();
    let inputs: Vec<Matrix> = BATCH_LENGTHS
        .iter()
        .map(|&len| init::glorot_uniform(len, EMBED_DIM, rng))
        .collect();
    let mut packed = Matrix::zeros(batch.total_rows(), EMBED_DIM);
    for (orig, input) in inputs.iter().enumerate() {
        let slot = batch.slot_of(orig);
        for t in 0..input.rows() {
            packed
                .row_mut(batch.row(slot, t))
                .copy_from_slice(input.row(t));
        }
    }
    let grad_features = Matrix::from_fn(n, net.output_dim(), |_, _| 1.0);
    let grad_out = vec![1.0_f32; net.output_dim()];
    let mut grads = etsb_nn::grad_buffer_for(&net.params());

    // Per-sample arm state.
    let mut ws_s = Workspace::new();
    let mut caches: Vec<StackedBiRnnCache<RnnCell>> =
        (0..n).map(|_| StackedBiRnnCache::default()).collect();
    let mut feat = vec![0.0_f32; net.output_dim()];
    let mut grad_inputs = Matrix::default();

    // Batched arm state.
    let mut ws_b = Workspace::new();
    let mut bcache = StackedBiRnnCache::<RnnCell>::default();
    let mut features = Matrix::default();
    let mut grad_packed = Matrix::default();

    let mut per_sample_ns = Vec::with_capacity(samples);
    let mut batched_ns = Vec::with_capacity(samples);
    for round in 0..=samples {
        let t = Instant::now();
        for (input, cache) in inputs.iter().zip(&mut caches) {
            net.forward_into(input, &mut feat, cache, &mut ws_s);
            std::hint::black_box(&feat);
        }
        for cache in &caches {
            net.backward_into(
                cache,
                &grad_out,
                grads.slots_mut(),
                &mut grad_inputs,
                &mut ws_s,
            );
        }
        std::hint::black_box(&grad_inputs);
        let per_sample = t.elapsed().as_nanos() as f64;

        let t = Instant::now();
        net.forward_batch_into(
            &packed,
            &batch,
            &mut features,
            &mut bcache,
            &mut ws_b,
            KernelPolicy::Exact,
        );
        std::hint::black_box(&features);
        net.backward_batch_into(
            &batch,
            &bcache,
            &grad_features,
            grads.slots_mut(),
            &mut grad_packed,
            &mut ws_b,
        );
        std::hint::black_box(&grad_packed);
        let batched = t.elapsed().as_nanos() as f64;

        if round > 0 {
            per_sample_ns.push(per_sample);
            batched_ns.push(batched);
        }
    }
    let (per_sample, per_sample_iqr) = summarize(&mut per_sample_ns);
    let (batched, batched_iqr) = summarize(&mut batched_ns);
    println!(
        "batch_forward_backward/B{n}  workspace {per_sample:>12.0} ns   batched {batched:>12.0} ns   speedup(vs per-sample) {:>5.2}x",
        per_sample / batched
    );
    results.push(BenchResult {
        bench: format!("batch_forward_backward/workspace/B{n}"),
        mean_ns: per_sample,
        iqr_ns: per_sample_iqr,
        samples,
    });
    results.push(BenchResult {
        bench: format!("batch_forward_backward/batched/B{n}"),
        mean_ns: batched,
        iqr_ns: batched_iqr,
        samples,
    });
}

/// Benchmark the inference hot path — the batched forward-only pass a
/// coalesced serve tick or `etsb detect` runs — under both kernel
/// policies. [`INFER_BATCH`] same-length sequences per pass, exact and
/// fast-math arms interleaved round by round; backward never runs, so
/// this isolates exactly the code the `--fast-math` flag switches.
fn bench_inference(
    net: &StackedBiRnn<RnnCell>,
    samples: usize,
    results: &mut Vec<BenchResult>,
    rng: &mut rand::rngs::StdRng,
) {
    for &len in &LENGTHS {
        let lengths = vec![len; INFER_BATCH];
        let batch = SeqBatch::from_lengths(&lengths);
        let packed = init::glorot_uniform(batch.total_rows(), EMBED_DIM, rng);

        let mut ws = Workspace::new();
        let mut cache = StackedBiRnnCache::<RnnCell>::default();
        let mut features = Matrix::default();
        // Warm both arms' buffer pools before measurement.
        for policy in [KernelPolicy::Exact, KernelPolicy::FastMath] {
            net.forward_batch_into(&packed, &batch, &mut features, &mut cache, &mut ws, policy);
        }

        let mut exact_ns = Vec::with_capacity(samples);
        let mut fast_ns = Vec::with_capacity(samples);
        for round in 0..=samples {
            let t = Instant::now();
            net.forward_batch_into(
                &packed,
                &batch,
                &mut features,
                &mut cache,
                &mut ws,
                KernelPolicy::Exact,
            );
            std::hint::black_box(&features);
            let exact = t.elapsed().as_nanos() as f64;

            let t = Instant::now();
            net.forward_batch_into(
                &packed,
                &batch,
                &mut features,
                &mut cache,
                &mut ws,
                KernelPolicy::FastMath,
            );
            std::hint::black_box(&features);
            let fast = t.elapsed().as_nanos() as f64;

            if round > 0 {
                exact_ns.push(exact);
                fast_ns.push(fast);
            }
        }
        let (exact, exact_iqr) = summarize(&mut exact_ns);
        let (fast, fast_iqr) = summarize(&mut fast_ns);
        println!(
            "inference/{len:<4}            exact {exact:>12.0} ns   fast-math {fast:>12.0} ns   speedup(vs exact) {:>5.2}x",
            exact / fast
        );
        results.push(BenchResult {
            bench: format!("inference_exact/{len}"),
            mean_ns: exact,
            iqr_ns: exact_iqr,
            samples,
        });
        results.push(BenchResult {
            bench: format!("inference_fast/{len}"),
            mean_ns: fast,
            iqr_ns: fast_iqr,
            samples,
        });
    }
}

/// Interquartile summary of the samples: `(mean, spread)`. The mean
/// drops the fastest and slowest quarter and averages the middle half —
/// robust to one-off scheduler or frequency-scaling spikes while still
/// being a mean, not a single order statistic. The spread is Q3 − Q1 of
/// the sorted samples, reported alongside so trending can weigh a mean
/// shift against the run's own noise floor.
fn summarize(samples: &mut [f64]) -> (f64, f64) {
    assert!(!samples.is_empty(), "summarize of empty sample set");
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = samples.len() / 4;
    let mid = &samples[q..samples.len() - q];
    let mean = mid.iter().sum::<f64>() / mid.len() as f64;
    let spread = samples[samples.len() - 1 - q] - samples[q];
    (mean, spread)
}

/// Schema-check a summary file: a non-empty JSON array whose entries
/// carry a string `bench`, a positive finite `mean_ns`, a finite
/// non-negative `iqr_ns` and a positive integer `samples`, covering the
/// per-sample (`seq_forward_backward/`), batched
/// (`batch_forward_backward/`) and kernel-policy (`inference_exact/`,
/// `inference_fast/`) arm families.
fn validate(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let value = json::parse(&text).map_err(|e| format!("invalid JSON: {e:?}"))?;
    let Value::Arr(entries) = value else {
        return Err("top-level value is not an array".into());
    };
    if entries.is_empty() {
        return Err("no benchmark entries".into());
    }
    for (i, entry) in entries.iter().enumerate() {
        let bench = entry
            .get("bench")
            .and_then(Value::as_str)
            .ok_or(format!("entry {i}: missing string field 'bench'"))?;
        let mean_ns = entry.get("mean_ns").and_then(Value::as_f64).ok_or(format!(
            "entry {i} ({bench}): missing number field 'mean_ns'"
        ))?;
        if !mean_ns.is_finite() || mean_ns <= 0.0 {
            return Err(format!(
                "entry {i} ({bench}): mean_ns {mean_ns} not positive"
            ));
        }
        let iqr_ns = entry.get("iqr_ns").and_then(Value::as_f64).ok_or(format!(
            "entry {i} ({bench}): missing number field 'iqr_ns'"
        ))?;
        if !iqr_ns.is_finite() || iqr_ns < 0.0 {
            return Err(format!(
                "entry {i} ({bench}): iqr_ns {iqr_ns} not a finite non-negative number"
            ));
        }
        let samples = entry.get("samples").and_then(Value::as_f64).ok_or(format!(
            "entry {i} ({bench}): missing number field 'samples'"
        ))?;
        if samples < 1.0 || samples.fract() != 0.0 {
            return Err(format!(
                "entry {i} ({bench}): samples {samples} not a positive integer"
            ));
        }
    }
    for prefix in [
        "seq_forward_backward/",
        "batch_forward_backward/",
        "inference_exact/",
        "inference_fast/",
    ] {
        let covered = entries.iter().any(|e| {
            e.get("bench")
                .and_then(Value::as_str)
                .is_some_and(|b| b.starts_with(prefix))
        });
        if !covered {
            return Err(format!("no benchmark entries under '{prefix}'"));
        }
    }
    Ok(entries.len())
}
