//! Regenerates **Figure 6**: average test-accuracy per epoch (with the
//! 95% confidence band over repetitions) for TSB-RNN vs ETSB-RNN, plus
//! the selected best-model epoch per run — one CSV series per dataset.
//!
//! ```text
//! cargo run --release -p etsb-bench --bin fig6 -- --runs 3 --out fig6.csv
//! ```
//!
//! CSV columns: `dataset,model,epoch,mean_test_acc,ci95,n_runs`; the
//! selected epochs are emitted as rows with `epoch = -1 - best_epoch`
//! markers in a second block (`dataset,model,run,best_epoch,test_acc`).

use etsb_bench::harness::{prepare_dataset, progress, ConsoleTable};
use etsb_bench::{experiment_config, parse_args, write_outputs};
use etsb_core::config::ModelKind;
use etsb_core::eval::Summary;
use etsb_core::pipeline::run_once_on_frame;
use std::collections::BTreeMap;

fn main() {
    let args = parse_args();
    let mut csv = String::from("dataset,model,epoch,mean_test_acc,ci95,n_runs\n");
    let mut markers = String::from("dataset,model,run,best_epoch,test_acc_at_best\n");
    let mut datasets = Vec::new();

    for &ds in &args.datasets {
        let (frame, info) = prepare_dataset(&args, ds);
        datasets.push(info);
        for kind in [ModelKind::Tsb, ModelKind::Etsb] {
            progress(ds, format!("{} x{}...", kind.name(), args.runs));
            let cfg = experiment_config(&args, kind);
            // epoch → accuracy across runs.
            let mut series: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
            for rep in 0..args.runs as u64 {
                let result = run_once_on_frame(&frame, &cfg, rep);
                let h = &result.history;
                for (i, &epoch) in h.eval_epochs.iter().enumerate() {
                    series.entry(epoch).or_default().push(h.test_acc[i] as f64);
                }
                markers.push_str(&format!(
                    "{},{},{},{},{}\n",
                    ds.name(),
                    kind.name(),
                    rep,
                    h.best_epoch,
                    h.test_acc_at_best()
                        .map(|a| a.to_string())
                        .unwrap_or_default()
                ));
            }
            println!("\n{} / {}:", ds.name(), kind.name());
            let table = ConsoleTable::new(&[6, 10, 8]);
            table.row(&["epoch", "test acc", "ci95"]);
            for (epoch, accs) in &series {
                let s = Summary::of(accs).expect("at least one run");
                table.row(&[
                    epoch.to_string(),
                    format!("{:.4}", s.mean),
                    format!("{:.4}", s.ci95()),
                ]);
                csv.push_str(&format!(
                    "{},{},{},{:.4},{:.4},{}\n",
                    ds.name(),
                    kind.name(),
                    epoch,
                    s.mean,
                    s.ci95(),
                    s.n
                ));
            }
        }
    }
    csv.push('\n');
    csv.push_str(&markers);
    let cfg = experiment_config(&args, ModelKind::Etsb);
    write_outputs(&args, &cfg, datasets, &csv);
    if args.out.is_none() {
        eprintln!("\n(pass --out fig6.csv to save the plottable series)");
    }
}
