//! **Extension experiment**: repair quality per dataset (the paper's
//! conclusion names detection+repair as the ultimate goal). Two detector
//! settings per dataset:
//!
//! * `oracle` — ground-truth error mask (isolates the repairer), and
//! * `etsb` — the trained ETSB-RNN's predictions (the deployable loop).
//!
//! Reported: repair precision (proposals matching ground truth) and the
//! erroneous-cell count before vs after applying the proposals.
//!
//! ```text
//! cargo run --release -p etsb-bench --bin repair_eval -- --runs 1
//! ```

use etsb_bench::harness::{prepare_dataset, progress, ConsoleTable};
use etsb_bench::{experiment_config, parse_args, write_outputs};
use etsb_core::config::ModelKind;
use etsb_core::model::AnyModel;
use etsb_core::train::train_model;
use etsb_core::{sampling, EncodedDataset};
use etsb_repair::{evaluate, Repairer};

fn main() {
    let args = parse_args();
    let table = ConsoleTable::new(&[-10, -7, 9, 9, 10, 14]);
    table.row(&[
        "dataset",
        "mask",
        "proposed",
        "correct",
        "precision",
        "errors (→)",
    ]);
    let mut csv = String::from(
        "dataset,mask,flagged,proposed,correct,repair_precision,errors_before,errors_after\n",
    );
    let mut datasets = Vec::new();
    for &ds in &args.datasets {
        let (frame, info) = prepare_dataset(&args, ds);
        datasets.push(info);
        let data = EncodedDataset::from_frame(&frame);

        // Oracle mask.
        let oracle: Vec<bool> = frame.cells().iter().map(|c| c.label).collect();

        // ETSB mask (one training run).
        let cfg = experiment_config(&args, ModelKind::Etsb);
        progress(ds, "training ETSB-RNN for the detector mask...");
        let sample = sampling::diver_set(&frame, cfg.n_label_tuples, cfg.seed);
        let (train_cells, test_cells) = data.split_by_tuples(&sample);
        let mut rng = etsb_tensor::init::seeded_rng(cfg.seed);
        let mut model = AnyModel::new(cfg.model, &data, &cfg.train, &mut rng);
        let _ = train_model(
            &mut model,
            &data,
            &train_cells,
            &test_cells,
            &cfg.train,
            cfg.seed,
        );
        let mut detected = vec![false; data.n_cells()];
        for (&cell, p) in test_cells.iter().zip(model.predict(&data, &test_cells)) {
            detected[cell] = p;
        }
        for &cell in &train_cells {
            detected[cell] = data.labels[cell];
        }

        for (name, mask) in [("oracle", &oracle), ("etsb", &detected)] {
            let repairer = Repairer::fit(&frame, mask);
            let proposals = repairer.propose_all(&frame, mask);
            let eval = evaluate(&frame, mask, &proposals);
            table.row(&[
                ds.name().to_string(),
                name.to_string(),
                eval.proposed.to_string(),
                eval.correct.to_string(),
                format!("{:.2}", eval.repair_precision),
                format!("{} → {}", eval.errors_before, eval.errors_after),
            ]);
            csv.push_str(&format!(
                "{},{},{},{},{},{:.4},{},{}\n",
                ds.name(),
                name,
                eval.flagged,
                eval.proposed,
                eval.correct,
                eval.repair_precision,
                eval.errors_before,
                eval.errors_after
            ));
        }
    }
    let cfg = experiment_config(&args, ModelKind::Etsb);
    write_outputs(&args, &cfg, datasets, &csv);
}
