//! Regenerates **Table 2**: overview of the benchmark datasets — size,
//! cell error rate, distinct characters and error types — measured on the
//! synthetic generators, with the paper's values alongside.
//!
//! ```text
//! cargo run --release -p etsb-bench --bin table2 [-- --scale 1.0]
//! ```

use etsb_bench::harness::{prepare_dataset, ConsoleTable};
use etsb_bench::{experiment_config, parse_args, write_outputs};
use etsb_core::config::ModelKind;
use etsb_table::stats::DatasetStats;

fn main() {
    let args = parse_args();
    let mut datasets = Vec::new();
    let table = ConsoleTable::new(&[-10, 12, 7, 7, 7, 7, -16]);
    table.row(&[
        "Name",
        "Size",
        "ErrRate",
        "(paper)",
        "Chars",
        "(paper)",
        "Error Types",
    ]);
    let mut csv = String::from(
        "dataset,rows,cols,error_rate,paper_error_rate,chars,paper_chars,error_types\n",
    );
    for ds in &args.datasets {
        let ds = *ds;
        let (frame, info) = prepare_dataset(&args, ds);
        datasets.push(info);
        let stats = DatasetStats::of(&frame);
        let kinds: Vec<&str> = ds.error_kinds().iter().map(|k| k.code()).collect();
        let kinds = kinds.join(", ");
        table.row(&[
            ds.name().to_string(),
            format!("{}x{}", stats.n_rows, stats.n_cols),
            format!("{:.2}", stats.error_rate),
            format!("{:.2}", ds.paper_error_rate()),
            stats.distinct_chars.to_string(),
            ds.paper_distinct_chars().to_string(),
            kinds.clone(),
        ]);
        csv.push_str(&format!(
            "{},{},{},{:.4},{:.2},{},{},\"{}\"\n",
            ds.name(),
            stats.n_rows,
            stats.n_cols,
            stats.error_rate,
            ds.paper_error_rate(),
            stats.distinct_chars,
            ds.paper_distinct_chars(),
            kinds
        ));
    }
    println!("\n(paper sizes: Beers 2410x11, Flights 2376x7, Hospital 1000x20,");
    println!(" Movies 7390x17, Rayyan 1000x10, Tax 200000x15 — Tax defaults to");
    println!(" scale 0.025 here; pass --scale 1.0 for the full row count)");
    let cfg = experiment_config(&args, ModelKind::Etsb);
    write_outputs(&args, &cfg, datasets, &csv);
}
