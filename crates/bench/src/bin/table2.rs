//! Regenerates **Table 2**: overview of the benchmark datasets — size,
//! cell error rate, distinct characters and error types — measured on the
//! synthetic generators, with the paper's values alongside.
//!
//! ```text
//! cargo run --release -p etsb-bench --bin table2 [-- --scale 1.0]
//! ```

use etsb_bench::{gen_config, maybe_write, parse_args};
use etsb_table::{stats::DatasetStats, CellFrame};

fn main() {
    let args = parse_args();
    println!(
        "{:<10} {:>12} {:>7} {:>7} {:>7} {:>7} {:<16}",
        "Name", "Size", "ErrRate", "(paper)", "Chars", "(paper)", "Error Types"
    );
    let mut csv = String::from(
        "dataset,rows,cols,error_rate,paper_error_rate,chars,paper_chars,error_types\n",
    );
    for ds in &args.datasets {
        let ds = *ds;
        let pair = ds
            .generate(&gen_config(&args, ds))
            .expect("dataset generation");
        let frame = CellFrame::merge(&pair.dirty, &pair.clean).expect("generated pair");
        let stats = DatasetStats::of(&frame);
        let kinds: Vec<&str> = ds.error_kinds().iter().map(|k| k.code()).collect();
        let kinds = kinds.join(", ");
        println!(
            "{:<10} {:>12} {:>7.2} {:>7.2} {:>7} {:>7} {:<16}",
            ds.name(),
            format!("{}x{}", stats.n_rows, stats.n_cols),
            stats.error_rate,
            ds.paper_error_rate(),
            stats.distinct_chars,
            ds.paper_distinct_chars(),
            kinds
        );
        csv.push_str(&format!(
            "{},{},{},{:.4},{:.2},{},{},\"{}\"\n",
            ds.name(),
            stats.n_rows,
            stats.n_cols,
            stats.error_rate,
            ds.paper_error_rate(),
            stats.distinct_chars,
            ds.paper_distinct_chars(),
            kinds
        ));
    }
    println!("\n(paper sizes: Beers 2410x11, Flights 2376x7, Hospital 1000x20,");
    println!(" Movies 7390x17, Rayyan 1000x10, Tax 200000x15 — Tax defaults to");
    println!(" scale 0.025 here; pass --scale 1.0 for the full row count)");
    maybe_write(&args.out, &csv);
}
