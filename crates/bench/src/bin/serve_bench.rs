//! Saturating-load benchmark for the resident detection service.
//!
//! Drives `DetectService` with closed-loop clients at stepped offered
//! loads (1, 2, 4, … concurrent clients, each submitting requests
//! back-to-back), and reports per-step latency quantiles, batch
//! occupancy, queue depth and cache hit rate — all read from the
//! service's own metrics registry by diffing a [`RegistrySnapshot`]
//! taken around each arm, so the numbers the bench reports are exactly
//! the numbers `GET /metrics` exposes. Writes `BENCH_serve.json` (a
//! JSON array that `--validate` schema-checks and `run_checks.sh`
//! gates on), a `BENCH_serve.manifest.json` provenance sidecar, and
//! `BENCH_serve.prom` (the final Prometheus exposition, lintable with
//! `trace_lint --expo`).
//!
//! ```text
//! cargo run --release -p etsb-bench --bin serve_bench             # full run
//! cargo run --release -p etsb-bench --bin serve_bench -- --smoke  # 3 steps
//! cargo run --release -p etsb-bench --bin serve_bench -- --validate BENCH_serve.json
//! ```

use etsb_core::config::{CellKind, ExperimentConfig, ModelKind, TrainConfig};
use etsb_core::manifest::{DatasetInfo, RunManifest};
use etsb_core::model::AnyModel;
use etsb_core::persist::LoadedDetector;
use etsb_core::EncodedDataset;
use etsb_obs::json::{self, Value};
use etsb_obs::registry::HistogramSnapshot;
use etsb_serve::engine::DetectService;
use etsb_serve::protocol::{Request, RequestCell, Status};
use etsb_serve::ServeConfig;
use etsb_table::{AttrIndex, CharIndex};
use etsb_tensor::init::seeded_rng;
use std::time::Instant;

const OUT_FILE: &str = "BENCH_serve.json";
const EXPO_FILE: &str = "BENCH_serve.prom";
const FULL_STEPS: [usize; 6] = [1, 2, 4, 8, 16, 32];
const SMOKE_STEPS: [usize; 3] = [1, 2, 4];
const FULL_REQUESTS_PER_CLIENT: usize = 40;
const SMOKE_REQUESTS_PER_CLIENT: usize = 8;
/// Cells per request; small enough that coalescing (not one giant
/// request) is what fills batches.
const CELLS_PER_REQUEST: usize = 4;
/// Distinct cell values cycled through by the workload: small enough
/// that the prediction cache gets real hits under load, large enough
/// that the first pass over the pool is all misses.
const VALUE_POOL: usize = 32;
const SEED: u64 = 7;

/// The same small untrained-but-deterministic detector the serve tests
/// use: load behaviour does not care whether the weights are good.
fn detector() -> LoadedDetector {
    let char_index = CharIndex::from_alphabet("abcdefghijklmnopqrstuvwxyz0123456789 .-".chars());
    let attr_index = AttrIndex::from_names(vec!["name".to_string(), "city".to_string()]);
    let train = TrainConfig {
        rnn_units: 8,
        attr_rnn_units: 4,
        head_dim: 8,
        length_dense_dim: 8,
        embed_dim: Some(6),
        cell: CellKind::Vanilla,
        ..TrainConfig::default()
    };
    let dims = EncodedDataset::empty_with_dicts(char_index.clone(), attr_index.clone());
    let model = AnyModel::new(ModelKind::Etsb, &dims, &train, &mut seeded_rng(SEED));
    LoadedDetector {
        model,
        kind: ModelKind::Etsb,
        train,
        char_index,
        attr_index,
    }
}

/// Deterministic request `k` of a client stream: cycles attribute and
/// value pools so concurrent clients overlap (cache hits) without any
/// randomness in the workload itself.
fn request(client: usize, k: usize) -> Request {
    let attrs = ["name", "city"];
    let cells = (0..CELLS_PER_REQUEST)
        .map(|c| {
            let v = (client * 13 + k * CELLS_PER_REQUEST + c) % VALUE_POOL;
            RequestCell {
                tuple_id: c as u64,
                attribute: attrs[(k + c) % attrs.len()].to_string(),
                value: format!("value-{v}"),
            }
        })
        .collect();
    Request {
        id: format!("c{client}-r{k}"),
        cells,
    }
}

/// Quantile/summary arm of one histogram delta as a JSON object.
fn histogram_json(h: &HistogramSnapshot) -> Value {
    Value::obj([
        ("count".to_string(), Value::Num(h.count as f64)),
        ("mean".to_string(), Value::Num(h.mean())),
        ("p50".to_string(), Value::Num(h.p50() as f64)),
        ("p90".to_string(), Value::Num(h.p90() as f64)),
        ("p99".to_string(), Value::Num(h.p99() as f64)),
        ("max".to_string(), Value::Num(h.max as f64)),
    ])
}

struct StepResult {
    /// Which kernel policy the serving instance ran: "exact" or
    /// "fast-math". One service per policy — the engine pins the policy
    /// for its lifetime so one prediction cache never mixes policies.
    kernel_policy: &'static str,
    clients: usize,
    requests: usize,
    errors: usize,
    elapsed_ns: u64,
    throughput_rps: f64,
    detect_latency: HistogramSnapshot,
    batch_occupancy: HistogramSnapshot,
    queue_depth: HistogramSnapshot,
    batches: u64,
    cache_hit_rate: f64,
}

impl StepResult {
    fn to_json_value(&self) -> Value {
        Value::obj([
            (
                "kernel_policy".to_string(),
                Value::Str(self.kernel_policy.to_string()),
            ),
            ("clients".to_string(), Value::Num(self.clients as f64)),
            ("requests".to_string(), Value::Num(self.requests as f64)),
            ("errors".to_string(), Value::Num(self.errors as f64)),
            ("elapsed_ns".to_string(), Value::Num(self.elapsed_ns as f64)),
            (
                "throughput_rps".to_string(),
                Value::Num(self.throughput_rps),
            ),
            (
                "detect_latency_ns".to_string(),
                histogram_json(&self.detect_latency),
            ),
            (
                "batch_occupancy_cells".to_string(),
                histogram_json(&self.batch_occupancy),
            ),
            (
                "queue_depth_cells".to_string(),
                histogram_json(&self.queue_depth),
            ),
            ("batches".to_string(), Value::Num(self.batches as f64)),
            (
                "cache_hit_rate".to_string(),
                Value::Num(self.cache_hit_rate),
            ),
        ])
    }
}

/// Run one closed-loop arm: `clients` threads each submit
/// `requests_per_client` requests back-to-back against the shared
/// service, then the arm's metrics are read as registry deltas.
fn run_step(
    service: &DetectService,
    kernel_policy: &'static str,
    clients: usize,
    requests_per_client: usize,
) -> StepResult {
    let before = service.registry().snapshot();
    let started = Instant::now();
    let errors: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                scope.spawn(move || {
                    let mut errs = 0usize;
                    for k in 0..requests_per_client {
                        let response = service.submit(request(client, k)).wait();
                        if response.status != Status::Ok {
                            errs += 1;
                        }
                    }
                    errs
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap_or(0)).sum()
    });
    let elapsed = started.elapsed();
    let after = service.registry().snapshot();

    let counter_delta = |name: &str| -> u64 {
        after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0)
    };
    let histogram_delta = |name: &str| -> HistogramSnapshot {
        match (after.histogram(name), before.histogram(name)) {
            (Some(now), Some(then)) => now.delta(then),
            (Some(now), None) => now.clone(),
            _ => HistogramSnapshot {
                bounds: Vec::new(),
                buckets: vec![0],
                count: 0,
                sum: 0,
                max: 0,
            },
        }
    };

    let requests = clients * requests_per_client;
    let hits = counter_delta("etsb_serve_cache_hits_total");
    let misses = counter_delta("etsb_serve_cache_misses_total");
    let lookups = hits + misses;
    StepResult {
        kernel_policy,
        clients,
        requests,
        errors,
        elapsed_ns: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
        throughput_rps: requests as f64 / elapsed.as_secs_f64().max(f64::MIN_POSITIVE),
        detect_latency: histogram_delta("etsb_serve_detect_latency_ns"),
        batch_occupancy: histogram_delta("etsb_serve_batch_occupancy_cells"),
        queue_depth: histogram_delta("etsb_serve_queue_depth_cells"),
        batches: counter_delta("etsb_serve_batches_total"),
        cache_hit_rate: if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        },
    }
}

fn run(steps: &[usize], requests_per_client: usize) {
    // One service per kernel policy: the engine pins the policy (and the
    // prediction cache) for its lifetime, so the fast-math arm is a
    // separate instance, exactly like `etsb serve --fast-math` would be.
    let mut results = Vec::with_capacity(steps.len() * 2);
    let mut expo = String::new();
    for (kernel_policy, fast_math) in [("exact", false), ("fast-math", true)] {
        let cfg = ServeConfig {
            fast_math,
            ..ServeConfig::default()
        };
        let service = DetectService::start(detector(), cfg);
        println!(
            "serve_bench[{kernel_policy}]: model {} (hash {})",
            service.provenance().model,
            service.provenance().model_hash
        );

        for &clients in steps {
            let step = run_step(&service, kernel_policy, clients, requests_per_client);
            println!(
                "{kernel_policy:>9}  clients {clients:>3}  reqs {:>5}  {:>9.0} req/s  p50 {:>9} ns  p99 {:>10} ns  occupancy(mean) {:>5.1}  hit-rate {:>4.2}",
                step.requests,
                step.throughput_rps,
                step.detect_latency.p50(),
                step.detect_latency.p99(),
                step.batch_occupancy.mean(),
                step.cache_hit_rate,
            );
            results.push(step);
        }
        // Keep the exact instance's exposition for the lint gate — it is
        // the default-config service `GET /metrics` mirrors.
        if kernel_policy == "exact" {
            expo = service.prometheus_text();
        }
    }

    let entries: Vec<Value> = results.iter().map(StepResult::to_json_value).collect();
    if let Err(e) = std::fs::write(OUT_FILE, Value::Arr(entries).to_json()) {
        eprintln!("error: writing {OUT_FILE}: {e}");
        std::process::exit(1);
    }
    println!("wrote {OUT_FILE}");

    // Provenance sidecar: same shape as the experiment benches', so
    // `trace_lint --manifest` validates it unchanged.
    let config = ExperimentConfig {
        model: ModelKind::Etsb,
        seed: SEED,
        ..ExperimentConfig::default()
    };
    let datasets = ["exact", "fast-math"]
        .iter()
        .flat_map(|policy| {
            steps.iter().map(move |&clients| {
                DatasetInfo::from_shape(
                    &format!("serve_load_{policy}_c{clients}"),
                    (clients * requests_per_client, CELLS_PER_REQUEST),
                )
            })
        })
        .collect();
    let manifest = RunManifest::new(&config, steps.len() * 2, datasets);
    let stem = OUT_FILE.strip_suffix(".json").unwrap_or(OUT_FILE);
    let manifest_path = format!("{stem}.manifest.json");
    if let Err(e) = manifest.write(&manifest_path) {
        eprintln!("error: writing {manifest_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {manifest_path}");

    // The final exposition, exactly as `GET /metrics` would serve it.
    if let Err(e) = std::fs::write(EXPO_FILE, expo) {
        eprintln!("error: writing {EXPO_FILE}: {e}");
        std::process::exit(1);
    }
    println!("wrote {EXPO_FILE}");
}

/// Schema-check a results file: a JSON array with at least three load
/// steps whose quantiles are ordered (`p50 <= p90 <= p99 <= max`),
/// whose `cache_hit_rate` lies in `[0, 1]`, and whose throughput and
/// latency counts are positive with zero failed requests. Every entry
/// must be tagged `kernel_policy` ("exact" or "fast-math") and both
/// policies must appear, so the fast-math arm can never silently drop
/// out of the gate.
fn validate(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let value = json::parse(&text).map_err(|e| format!("invalid JSON: {e:?}"))?;
    let Value::Arr(entries) = value else {
        return Err("top-level value is not an array".into());
    };
    if entries.len() < 3 {
        return Err(format!(
            "only {} load step(s); need at least 3",
            entries.len()
        ));
    }
    let num = |entry: &Value, key: &str| -> Result<f64, String> {
        entry
            .get(key)
            .and_then(Value::as_f64)
            .ok_or(format!("missing number field {key:?}"))
    };
    let mut policies_seen = std::collections::HashSet::new();
    for (i, entry) in entries.iter().enumerate() {
        let clients = num(entry, "clients")?;
        let context = format!("entry {i} (clients {clients})");
        if clients < 1.0 {
            return Err(format!("{context}: clients not positive"));
        }
        let policy = entry
            .get("kernel_policy")
            .and_then(Value::as_str)
            .ok_or(format!("{context}: missing string field 'kernel_policy'"))?;
        if policy != "exact" && policy != "fast-math" {
            return Err(format!(
                "{context}: kernel_policy {policy:?} not 'exact' or 'fast-math'"
            ));
        }
        policies_seen.insert(policy.to_string());
        if num(entry, "errors")? != 0.0 {
            return Err(format!("{context}: failed requests under load"));
        }
        if num(entry, "throughput_rps")? <= 0.0 {
            return Err(format!("{context}: throughput not positive"));
        }
        let rate = num(entry, "cache_hit_rate")?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("{context}: cache_hit_rate {rate} outside [0, 1]"));
        }
        for arm in [
            "detect_latency_ns",
            "batch_occupancy_cells",
            "queue_depth_cells",
        ] {
            let hist = entry
                .get(arm)
                .ok_or(format!("{context}: missing histogram arm {arm:?}"))?;
            let p50 = num(hist, "p50")?;
            let p90 = num(hist, "p90")?;
            let p99 = num(hist, "p99")?;
            let max = num(hist, "max")?;
            if !(p50 <= p90 && p90 <= p99 && p99 <= max) {
                return Err(format!(
                    "{context}: {arm} quantiles not ordered (p50 {p50}, p90 {p90}, p99 {p99}, max {max})"
                ));
            }
        }
        if num(
            entry.get("detect_latency_ns").unwrap_or(&Value::Null),
            "count",
        )
        .unwrap_or(0.0)
            <= 0.0
        {
            return Err(format!("{context}: no latency observations"));
        }
    }
    for policy in ["exact", "fast-math"] {
        if !policies_seen.contains(policy) {
            return Err(format!("no load steps with kernel_policy {policy:?}"));
        }
    }
    Ok(entries.len())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--validate") => {
            let path = args.get(1).map(String::as_str).unwrap_or(OUT_FILE);
            match validate(path) {
                Ok(n) => println!("{path}: {n} load step(s), schema ok"),
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("--smoke") => run(&SMOKE_STEPS, SMOKE_REQUESTS_PER_CLIENT),
        None => run(&FULL_STEPS, FULL_REQUESTS_PER_CLIENT),
        Some(other) => {
            eprintln!("error: unknown flag {other} (try --smoke or --validate PATH)");
            std::process::exit(2);
        }
    }
}
