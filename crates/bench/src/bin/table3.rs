//! Regenerates **Table 3**: precision / recall / F1 (mean ± S.D.) for
//! Raha, Rotom, Rotom+SSL, TSB-RNN and ETSB-RNN on the six benchmark
//! datasets with 20 labelled tuples.
//!
//! ```text
//! cargo run --release -p etsb-bench --bin table3 -- --runs 3
//! cargo run --release -p etsb-bench --bin table3 -- --paper   # 10 runs, 120 epochs
//! ```
//!
//! Rows marked `*` are this workspace's reimplementations of the
//! comparison systems (the paper quotes their original publications);
//! the `paper` column prints the published F1 for reference.

use etsb_bench::harness::{footnote, points_to_csv, run_comparison, section, ConsoleTable, System};
use etsb_bench::{experiment_config, fmt, paper, parse_args, write_outputs};
use etsb_core::config::ModelKind;
use etsb_datasets::Dataset;

fn paper_f1(system: System, ds: Dataset) -> f64 {
    match system {
        System::Raha => paper::raha(ds).map(|(_, _, f)| f).unwrap_or(f64::NAN),
        System::Rotom => paper::rotom_f1(ds).unwrap_or(f64::NAN),
        System::RotomSsl => paper::rotom_ssl_f1(ds).unwrap_or(f64::NAN),
        System::Tsb => paper::tsb(ds).2,
        System::Etsb => paper::etsb(ds).2,
    }
}

fn main() {
    let args = parse_args();
    let (points, datasets) = run_comparison(&args, &System::ALL);

    let table = ConsoleTable::new(&[-12, 6, 6, 6, 7, 9]);
    for &ds in &args.datasets {
        section(ds);
        table.row(&["system", "P", "R", "F1", "F1 S.D.", "paper F1"]);
        for p in points.iter().filter(|p| p.dataset == ds) {
            table.row(&[
                p.system.name().to_string(),
                fmt(p.precision.mean),
                fmt(p.recall.mean),
                fmt(p.f1.mean),
                fmt(p.f1.std),
                fmt(paper_f1(p.system, ds)),
            ]);
        }
    }
    footnote("* = reimplementation; paper rows quote the original publications");
    let cfg = experiment_config(&args, ModelKind::Etsb);
    write_outputs(&args, &cfg, datasets, &points_to_csv(&points));
}
