//! # etsb-bench
//!
//! Harness regenerating every table and figure of the ETSB-RNN paper's
//! evaluation (§5). One binary per artifact:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table2` | dataset overview (size, error rate, alphabet, error types) |
//! | `table3` | P/R/F1 comparison: Raha, Rotom(+SSL), TSB-RNN, ETSB-RNN |
//! | `table4` | average F1 ± S.D. with/without Flights |
//! | `table5` | training time per dataset and model |
//! | `fig6`   | test-accuracy learning curves, TSB vs ETSB |
//! | `fig7`   | train vs test accuracy curves for ETSB |
//! | `ablation_sampling` | DiverSet vs RandomSet vs RahaSet (§5.2 claim) |
//! | `ablation_inputs`   | ETSB enrichment inputs ablated (§4.3 design) |
//!
//! Common flags: `--runs N` (repetitions; paper uses 10), `--scale F`
//! (dataset row-count multiplier), `--epochs N` (paper uses 120),
//! `--dataset NAME` (restrict to one dataset), `--out FILE` (also write
//! CSV), `--paper` (paper-faithful protocol: 10 runs, 120 epochs, full
//! scale except Tax).

#![warn(missing_docs)]

pub mod harness;
pub mod hotpath_baseline;

use etsb_core::config::{ExperimentConfig, ModelKind, SamplerKind, TrainConfig};
use etsb_datasets::{Dataset, GenConfig};

/// Parsed command-line options shared by all bench binaries.
#[derive(Clone, Debug)]
pub struct BenchArgs {
    /// Repetitions per (dataset, model) point.
    pub runs: usize,
    /// Dataset scale override (default: [`default_scale`]).
    pub scale: Option<f64>,
    /// Epoch override (default 120, the paper's protocol).
    pub epochs: Option<usize>,
    /// Restrict to these datasets (default: all six).
    pub datasets: Vec<Dataset>,
    /// Optional CSV output path.
    pub out: Option<String>,
    /// Base seed.
    pub seed: u64,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            runs: 3,
            scale: None,
            epochs: None,
            datasets: Dataset::ALL.to_vec(),
            out: None,
            seed: 42,
        }
    }
}

/// Parse `std::env::args()`. Unknown flags abort with usage help.
/// Also initializes the trace sink from `ETSB_TRACE`, so every bench
/// binary honors the tracing environment without extra wiring.
pub fn parse_args() -> BenchArgs {
    if let Err(e) = etsb_obs::init_from_env() {
        die(&e);
    }
    let mut args = BenchArgs::default();
    let mut iter = std::env::args().skip(1);
    let mut datasets: Vec<Dataset> = Vec::new();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| die(&format!("{name} requires a value")))
        };
        match flag.as_str() {
            "--runs" => {
                args.runs = value("--runs")
                    .parse()
                    .unwrap_or_else(|_| die("bad --runs"))
            }
            "--scale" => {
                args.scale = Some(
                    value("--scale")
                        .parse()
                        .unwrap_or_else(|_| die("bad --scale")),
                )
            }
            "--epochs" => {
                args.epochs = Some(
                    value("--epochs")
                        .parse()
                        .unwrap_or_else(|_| die("bad --epochs")),
                )
            }
            "--seed" => {
                args.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| die("bad --seed"))
            }
            "--dataset" => {
                let name = value("--dataset");
                datasets.push(
                    Dataset::parse(&name)
                        .unwrap_or_else(|| die(&format!("unknown dataset {name}"))),
                );
            }
            "--out" => args.out = Some(value("--out")),
            "--paper" => {
                args.runs = 10;
                args.epochs = Some(120);
                args.scale = None;
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --runs N --scale F --epochs N --dataset NAME (repeatable) \
                     --seed N --out FILE --paper"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    if !datasets.is_empty() {
        args.datasets = datasets;
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg} (try --help)");
    std::process::exit(2)
}

/// Default row-count scale per dataset: full size for the five small
/// datasets, 2.5% for Tax (5,000 rows) so the suite runs on a laptop.
/// `--scale 1.0` restores the paper's 200,000-row Tax.
pub fn default_scale(ds: Dataset) -> f64 {
    match ds {
        Dataset::Tax => 0.025,
        _ => 1.0,
    }
}

/// Generation config for a dataset under these args.
pub fn gen_config(args: &BenchArgs, ds: Dataset) -> GenConfig {
    GenConfig {
        scale: args.scale.unwrap_or_else(|| default_scale(ds)),
        seed: args.seed,
    }
}

/// Experiment config for a model under these args (paper defaults unless
/// overridden).
pub fn experiment_config(args: &BenchArgs, model: ModelKind) -> ExperimentConfig {
    let mut train = TrainConfig {
        eval_every: 5,
        // Per-epoch trainset accuracy is a pure evaluation cost; only the
        // fig7 overfitting curves need it and opt back in.
        track_train_acc: false,
        ..TrainConfig::default()
    };
    if let Some(e) = args.epochs {
        train.epochs = e;
    }
    ExperimentConfig {
        model,
        sampler: SamplerKind::DiverSet,
        n_label_tuples: 20,
        train,
        seed: args.seed,
    }
}

/// Write `contents` to `path` if `--out` was given, reporting the path.
pub fn maybe_write(out: &Option<String>, contents: &str) {
    if let Some(path) = out {
        std::fs::write(path, contents).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("\nwrote {path}");
    }
}

/// Write the results CSV (if `--out` was given) plus a run-manifest
/// sidecar (`<out stem>.manifest.json`) recording this invocation's
/// provenance: seed, config, resolved workers, version, features and the
/// datasets (with cell counts) it ran over.
pub fn write_outputs(
    args: &BenchArgs,
    cfg: &ExperimentConfig,
    datasets: Vec<etsb_core::DatasetInfo>,
    csv: &str,
) {
    maybe_write(&args.out, csv);
    if let Some(path) = &args.out {
        let manifest = etsb_core::RunManifest::new(cfg, args.runs, datasets);
        let mpath = etsb_core::RunManifest::sidecar_path(path);
        manifest
            .write(&mpath)
            .unwrap_or_else(|e| die(&format!("writing {mpath}: {e}")));
        println!("wrote {mpath}");
    }
}

/// The paper's published numbers, for side-by-side printing.
pub mod paper {
    use etsb_datasets::Dataset;

    /// Table 3: (precision, recall, F1) per dataset for Raha, and F1-only
    /// for Rotom / Rotom+SSL (the paper marks P/R as n/a).
    pub fn raha(ds: Dataset) -> Option<(f64, f64, f64)> {
        match ds {
            Dataset::Beers => Some((0.99, 0.99, 0.99)),
            Dataset::Flights => Some((0.82, 0.81, 0.81)),
            Dataset::Hospital => Some((0.94, 0.59, 0.72)),
            Dataset::Movies => Some((0.85, 0.88, 0.86)),
            Dataset::Rayyan => Some((0.81, 0.78, 0.79)),
            Dataset::Tax => Some((f64::NAN, f64::NAN, 0.91)),
        }
    }

    /// Table 3: Rotom F1 (paper reports no Flights number).
    pub fn rotom_f1(ds: Dataset) -> Option<f64> {
        match ds {
            Dataset::Beers => Some(0.99),
            Dataset::Flights => None,
            Dataset::Hospital => Some(1.00),
            Dataset::Movies => Some(0.68),
            Dataset::Rayyan => Some(0.86),
            Dataset::Tax => Some(0.97),
        }
    }

    /// Table 3: Rotom+SSL F1.
    pub fn rotom_ssl_f1(ds: Dataset) -> Option<f64> {
        match ds {
            Dataset::Beers => Some(0.99),
            Dataset::Flights => None,
            Dataset::Hospital => Some(1.00),
            Dataset::Movies => Some(0.54),
            Dataset::Rayyan => Some(0.76),
            Dataset::Tax => Some(1.00),
        }
    }

    /// Table 3: TSB-RNN (P, R, F1, F1 S.D.).
    pub fn tsb(ds: Dataset) -> (f64, f64, f64, f64) {
        match ds {
            Dataset::Beers => (0.99, 0.94, 0.96, 0.01),
            Dataset::Flights => (0.77, 0.63, 0.69, 0.02),
            Dataset::Hospital => (0.98, 0.95, 0.97, 0.01),
            Dataset::Movies => (0.96, 0.79, 0.87, 0.03),
            Dataset::Rayyan => (0.83, 0.73, 0.78, 0.05),
            Dataset::Tax => (0.83, 0.90, 0.85, 0.11),
        }
    }

    /// Table 3: ETSB-RNN (P, R, F1, F1 S.D.).
    pub fn etsb(ds: Dataset) -> (f64, f64, f64, f64) {
        match ds {
            Dataset::Beers => (1.00, 0.96, 0.98, 0.01),
            Dataset::Flights => (0.81, 0.68, 0.74, 0.02),
            Dataset::Hospital => (0.98, 0.95, 0.97, 0.02),
            Dataset::Movies => (0.96, 0.81, 0.88, 0.02),
            Dataset::Rayyan => (0.87, 0.83, 0.85, 0.03),
            Dataset::Tax => (0.82, 0.92, 0.86, 0.10),
        }
    }

    /// Table 5: training seconds (TSB avg, ETSB avg) on Colab.
    pub fn train_secs(ds: Dataset) -> (f64, f64) {
        match ds {
            Dataset::Beers => (92.0, 101.0),
            Dataset::Flights => (47.0, 54.0),
            Dataset::Hospital => (283.0, 287.0),
            Dataset::Movies => (302.0, 312.0),
            Dataset::Rayyan => (199.0, 209.0),
            Dataset::Tax => (176.0, 183.0),
        }
    }
}

/// Format a float or "n/a" for NaN.
pub fn fmt(v: f64) -> String {
    if v.is_nan() {
        "n/a".to_string()
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scales() {
        assert_eq!(default_scale(Dataset::Tax), 0.025);
        assert_eq!(default_scale(Dataset::Beers), 1.0);
    }

    #[test]
    fn paper_numbers_cover_all_datasets() {
        for ds in Dataset::ALL {
            let (_, _, f1, sd) = paper::etsb(ds);
            assert!(f1 > 0.0 && sd >= 0.0);
            assert!(paper::raha(ds).is_some());
            let (t, e) = paper::train_secs(ds);
            assert!(t > 0.0 && e >= t);
        }
    }

    #[test]
    fn fmt_handles_nan() {
        assert_eq!(fmt(f64::NAN), "n/a");
        assert_eq!(fmt(0.987), "0.99");
    }

    #[test]
    fn experiment_config_paper_defaults() {
        let args = BenchArgs::default();
        let cfg = experiment_config(&args, ModelKind::Etsb);
        assert_eq!(cfg.train.epochs, 120);
        assert_eq!(cfg.n_label_tuples, 20);
        assert!(!cfg.train.track_train_acc, "benches skip train-acc curves");
    }
}
