//! Shared experiment driver and console plumbing for the bench binaries:
//! runs every system (Raha, Rotom, Rotom+SSL, TSB-RNN, ETSB-RNN) over the
//! requested datasets with the paper's repeated-runs protocol, and owns
//! the progress / table / output formatting every bin used to hand-roll.

use crate::{experiment_config, gen_config, BenchArgs};
use etsb_core::config::ModelKind;
use etsb_core::eval::{aggregate, Metrics, Summary};
use etsb_core::manifest::DatasetInfo;
use etsb_core::pipeline::run_once_on_frame;
use etsb_core::rotom::{RotomConfig, RotomDetector};
use etsb_core::EncodedDataset;
use etsb_datasets::Dataset;
use etsb_raha::RahaDetector;
use etsb_table::CellFrame;

/// Progress note on stderr — `[dataset] message` — mirrored into the
/// trace as an `event` when tracing is enabled.
pub fn progress(scope: impl std::fmt::Display, message: impl std::fmt::Display) {
    eprintln!("[{scope}] {message}");
    if etsb_obs::enabled() {
        etsb_obs::emit(
            "event",
            vec![
                ("name", etsb_obs::FieldValue::from("progress")),
                ("scope", etsb_obs::FieldValue::from(scope.to_string())),
                ("message", etsb_obs::FieldValue::from(message.to_string())),
            ],
        );
    }
}

/// Section header on stdout: a blank line and `=== title ===`.
pub fn section(title: impl std::fmt::Display) {
    println!("\n=== {title} ===");
}

/// Footnote on stdout: a blank line and the note in parentheses.
pub fn footnote(note: impl std::fmt::Display) {
    println!("\n({note})");
}

/// Fixed-width console table. Column widths are signed: negative widths
/// left-align (labels), positive widths right-align (numbers) — the
/// convention every bench table shares.
#[derive(Clone, Debug)]
pub struct ConsoleTable {
    cols: Vec<isize>,
}

impl ConsoleTable {
    /// Table with the given signed column widths.
    pub fn new(cols: &[isize]) -> ConsoleTable {
        ConsoleTable {
            cols: cols.to_vec(),
        }
    }

    /// Format one row. Cells beyond the column spec pass through
    /// unpadded (used for trailing annotations).
    pub fn line<S: AsRef<str>>(&self, cells: &[S]) -> String {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            match self.cols.get(i) {
                Some(&w) if w < 0 => {
                    out.push_str(&format!("{:<width$}", cell.as_ref(), width = (-w) as usize));
                }
                Some(&w) => {
                    out.push_str(&format!("{:>width$}", cell.as_ref(), width = w as usize));
                }
                None => out.push_str(cell.as_ref()),
            }
        }
        // Left-aligned final columns pad with trailing spaces; trim them.
        out.trim_end().to_string()
    }

    /// Print one row to stdout.
    pub fn row<S: AsRef<str>>(&self, cells: &[S]) {
        println!("{}", self.line(cells));
    }
}

/// Generate and merge one dataset under these args, with a progress
/// note; returns the frame plus its shape record for the run manifest.
pub fn prepare_dataset(args: &BenchArgs, ds: Dataset) -> (CellFrame, DatasetInfo) {
    let cfg = gen_config(args, ds);
    progress(ds, format!("generating (scale {})...", cfg.scale));
    let pair = ds.generate(&cfg).expect("dataset generation");
    let frame = CellFrame::merge(&pair.dirty, &pair.clean).expect("generated pair");
    let info = DatasetInfo::from_shape(ds.name(), pair.dirty.shape());
    (frame, info)
}

/// Systems compared in Table 3, in the paper's row order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum System {
    /// Raha baseline (reimplemented).
    Raha,
    /// Rotom-style augmentation baseline.
    Rotom,
    /// Rotom with the self-training pass.
    RotomSsl,
    /// The paper's TSB-RNN.
    Tsb,
    /// The paper's ETSB-RNN.
    Etsb,
}

impl System {
    /// All systems in table order.
    pub const ALL: [System; 5] = [
        System::Raha,
        System::Rotom,
        System::RotomSsl,
        System::Tsb,
        System::Etsb,
    ];

    /// Row label.
    pub fn name(self) -> &'static str {
        match self {
            System::Raha => "Raha*",
            System::Rotom => "Rotom*",
            System::RotomSsl => "Rotom+SSL*",
            System::Tsb => "TSB-RNN",
            System::Etsb => "ETSB-RNN",
        }
    }
}

/// One (system, dataset) measurement: P/R/F1 summaries over runs.
#[derive(Clone, Debug)]
pub struct Point {
    /// System measured.
    pub system: System,
    /// Dataset measured on.
    pub dataset: Dataset,
    /// Precision over runs.
    pub precision: Summary,
    /// Recall over runs.
    pub recall: Summary,
    /// F1 over runs.
    pub f1: Summary,
}

/// Run one system on one already-merged dataset for `runs` repetitions.
pub fn run_system(
    system: System,
    frame: &CellFrame,
    args: &BenchArgs,
    runs: usize,
) -> (Summary, Summary, Summary) {
    let metrics: Vec<Metrics> = (0..runs as u64)
        .map(|rep| match system {
            System::Raha => {
                let detector = RahaDetector::default();
                let model = detector.fit(frame);
                let sample = model.sample_tuples(20, args.seed + rep);
                let preds = model.detect(frame, &sample);
                let labels: Vec<bool> = frame.cells().iter().map(|c| c.label).collect();
                Metrics::from_predictions(&preds, &labels)
            }
            System::Rotom | System::RotomSsl => {
                let data = EncodedDataset::from_frame(frame);
                let det = RotomDetector::new(RotomConfig {
                    self_training: system == System::RotomSsl,
                    ..RotomConfig::default()
                });
                let sample = etsb_core::sampling::diver_set(frame, 20, args.seed + rep);
                let preds = det.detect(frame, &data, &sample, args.seed + rep);
                let labels: Vec<bool> = frame.cells().iter().map(|c| c.label).collect();
                Metrics::from_predictions(&preds, &labels)
            }
            System::Tsb | System::Etsb => {
                let kind = if system == System::Tsb {
                    ModelKind::Tsb
                } else {
                    ModelKind::Etsb
                };
                let cfg = experiment_config(args, kind);
                run_once_on_frame(frame, &cfg, rep).metrics
            }
        })
        .collect();
    aggregate(&metrics).expect("at least one run")
}

/// Run every requested system over every requested dataset; returns the
/// measurements plus the dataset shape records for the run manifest.
pub fn run_comparison(args: &BenchArgs, systems: &[System]) -> (Vec<Point>, Vec<DatasetInfo>) {
    let mut points = Vec::new();
    let mut infos = Vec::new();
    for &ds in &args.datasets {
        let (frame, info) = prepare_dataset(args, ds);
        infos.push(info);
        for &system in systems {
            progress(ds, format!("running {} x{}...", system.name(), args.runs));
            let (precision, recall, f1) = run_system(system, &frame, args, args.runs);
            points.push(Point {
                system,
                dataset: ds,
                precision,
                recall,
                f1,
            });
        }
    }
    (points, infos)
}

/// Serialize points as CSV (`system,dataset,metric,mean,std,n`).
pub fn points_to_csv(points: &[Point]) -> String {
    let mut out = String::from("system,dataset,metric,mean,std,n\n");
    for p in points {
        for (metric, s) in [
            ("precision", p.precision),
            ("recall", p.recall),
            ("f1", p.f1),
        ] {
            out.push_str(&format!(
                "{},{},{metric},{:.4},{:.4},{}\n",
                p.system.name(),
                p.dataset.name(),
                s.mean,
                s.std,
                s.n
            ));
        }
    }
    out
}
