//! Frozen copy of the pre-workspace sequence hot path.
//!
//! This module replicates, line for line, the [`StackedBiRnn`] forward and
//! backward passes *and* the tensor kernels they sat on before the
//! workspace/zero-allocation rewrite: per-step `vecmat`/`matvec` with a
//! fresh `Vec` per call, per-step `add_outer` weight-gradient updates, a
//! scalar (non-unrolled) `vecmat` loop and a 4-chain `dot`. It exists so
//! `seq_forward_backward` and `bench_summary` can report the speedup of
//! the current hot path against the code it replaced, measured in the
//! same binary under the same machine load — a cross-build comparison
//! would be at the mercy of background noise.
//!
//! Only the vanilla-RNN configuration the paper trains (and the benches
//! time) is replicated; do not use this for anything but benchmarks.

use etsb_nn::{RnnCell, StackedBiRnn};
use etsb_tensor::Matrix;

/// Pre-change `dot`: four independent accumulation chains.
fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0_f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let k = i * 4;
        acc[0] += a[k] * b[k];
        acc[1] += a[k + 1] * b[k + 1];
        acc[2] += a[k + 2] * b[k + 2];
        acc[3] += a[k + 3] * b[k + 3];
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for k in chunks * 4..a.len() {
        sum += a[k] * b[k];
    }
    sum
}

/// Pre-change `vecmat`: scalar row-accumulation, fresh output vector.
fn vecmat(m: &Matrix, v: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0; m.cols()];
    for (k, &vk) in v.iter().enumerate() {
        if vk == 0.0 {
            continue;
        }
        for (o, &x) in out.iter_mut().zip(m.row(k)) {
            *o += vk * x;
        }
    }
    out
}

/// Pre-change `matvec`: one `dot` per row, fresh output vector.
fn matvec(m: &Matrix, v: &[f32]) -> Vec<f32> {
    (0..m.rows()).map(|i| dot(m.row(i), v)).collect()
}

/// Pre-change `add_outer` (alpha = 1): scalar rank-1 update.
fn add_outer(out: &mut Matrix, a: &[f32], b: &[f32]) {
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0.0 {
            continue;
        }
        for (o, &bj) in out.row_mut(i).iter_mut().zip(b) {
            *o += ai * bj;
        }
    }
}

fn reverse_rows(m: &Matrix) -> Matrix {
    let (rows, cols) = m.shape();
    let mut out = Matrix::zeros(rows, cols);
    for r in 0..rows {
        out.row_mut(rows - 1 - r).copy_from_slice(m.row(r));
    }
    out
}

/// Pre-change per-cell cache (inputs + hidden states).
#[derive(Debug)]
struct CellCache {
    inputs: Matrix,
    hidden: Matrix,
}

fn cell_forward(cell: &RnnCell, inputs: Matrix) -> CellCache {
    let t_max = inputs.rows();
    let h = cell.wh.value.rows();
    let mut hidden = Matrix::zeros(t_max, h);
    let mut prev = vec![0.0_f32; h];
    for t in 0..t_max {
        let mut z = vecmat(&cell.wx.value, inputs.row(t));
        let rec = vecmat(&cell.wh.value, &prev);
        for ((zi, &ri), &bi) in z.iter_mut().zip(&rec).zip(cell.b.value.row(0)) {
            *zi = (*zi + ri + bi).tanh();
        }
        hidden.row_mut(t).copy_from_slice(&z);
        prev = z;
    }
    CellCache { inputs, hidden }
}

fn cell_backward(
    cell: &RnnCell,
    cache: &CellCache,
    grad_hidden: &Matrix,
    grads: &mut [Matrix],
) -> Matrix {
    let t_max = cache.hidden.rows();
    let h = cell.wh.value.rows();
    let (gwx, tail) = grads.split_at_mut(1);
    let (gwh, gb) = tail.split_at_mut(1);
    let (gwx, gwh, gb) = (&mut gwx[0], &mut gwh[0], &mut gb[0]);
    let mut grad_inputs = Matrix::zeros(t_max, cell.wx.value.rows());
    let mut carry = vec![0.0_f32; h];
    for t in (0..t_max).rev() {
        let h_t = cache.hidden.row(t);
        let dz: Vec<f32> = grad_hidden
            .row(t)
            .iter()
            .zip(&carry)
            .zip(h_t)
            .map(|((&g, &c), &ht)| (g + c) * (1.0 - ht * ht))
            .collect();
        etsb_tensor::add_assign(gb.row_mut(0), &dz);
        add_outer(gwx, cache.inputs.row(t), &dz);
        if t > 0 {
            add_outer(gwh, cache.hidden.row(t - 1), &dz);
        }
        grad_inputs
            .row_mut(t)
            .copy_from_slice(&matvec(&cell.wx.value, &dz));
        carry = matvec(&cell.wh.value, &dz);
    }
    grad_inputs
}

/// Cache for one pre-change bidirectional layer.
#[derive(Debug)]
struct BiCache {
    fwd: CellCache,
    bwd: CellCache,
    seq_len: usize,
}

fn bi_forward(fwd: &RnnCell, bwd: &RnnCell, inputs: Matrix) -> (Matrix, BiCache) {
    let seq_len = inputs.rows();
    let reversed = reverse_rows(&inputs);
    let fwd_cache = cell_forward(fwd, inputs);
    let out_fwd = fwd_cache.hidden.clone();
    let bwd_cache = cell_forward(bwd, reversed);
    let out_bwd = bwd_cache.hidden.clone();
    let h = fwd.wh.value.rows();
    let mut out = Matrix::zeros(seq_len, 2 * h);
    for t in 0..seq_len {
        out.row_mut(t)[..h].copy_from_slice(out_fwd.row(t));
        out.row_mut(t)[h..].copy_from_slice(out_bwd.row(seq_len - 1 - t));
    }
    (
        out,
        BiCache {
            fwd: fwd_cache,
            bwd: bwd_cache,
            seq_len,
        },
    )
}

fn bi_backward(
    fwd: &RnnCell,
    bwd: &RnnCell,
    cache: &BiCache,
    grad_out: &Matrix,
    grads: &mut [Matrix],
) -> Matrix {
    let t_max = cache.seq_len;
    let h = fwd.wh.value.rows();
    let (grads_fwd, grads_bwd) = grads.split_at_mut(3);
    let mut grad_fwd = Matrix::zeros(t_max, h);
    let mut grad_bwd = Matrix::zeros(t_max, h);
    for t in 0..t_max {
        grad_fwd.row_mut(t).copy_from_slice(&grad_out.row(t)[..h]);
        grad_bwd
            .row_mut(t_max - 1 - t)
            .copy_from_slice(&grad_out.row(t)[h..]);
    }
    let gi_fwd = cell_backward(fwd, &cache.fwd, &grad_fwd, grads_fwd);
    let gi_bwd_rev = cell_backward(bwd, &cache.bwd, &grad_bwd, grads_bwd);
    let mut grad_inputs = gi_fwd;
    let gi_bwd = reverse_rows(&gi_bwd_rev);
    grad_inputs.add_assign(&gi_bwd);
    grad_inputs
}

/// Opaque cache from [`forward`].
#[derive(Debug)]
pub struct Cache {
    l1: BiCache,
    l2: BiCache,
    seq_len: usize,
}

/// The pre-change [`StackedBiRnn::forward`] on the current network's
/// weights: same math, the old allocation pattern and the old kernels.
pub fn forward(net: &StackedBiRnn<RnnCell>, inputs: Matrix) -> (Vec<f32>, Cache) {
    let seq_len = inputs.rows();
    let (seq1, l1) = bi_forward(&net.layer1.fwd, &net.layer1.bwd, inputs);
    let (seq2, l2) = bi_forward(&net.layer2.fwd, &net.layer2.bwd, seq1);
    let h = net.layer2.fwd.wh.value.rows();
    let t_last = seq_len - 1;
    let mut out = vec![0.0_f32; 2 * h];
    out[..h].copy_from_slice(&seq2.row(t_last)[..h]);
    out[h..].copy_from_slice(&seq2.row(0)[h..]);
    (out, Cache { l1, l2, seq_len })
}

/// The pre-change [`StackedBiRnn::backward`] companion of [`forward`].
pub fn backward(
    net: &StackedBiRnn<RnnCell>,
    cache: &Cache,
    grad_out: &[f32],
    grads: &mut [Matrix],
) -> Matrix {
    let h = net.layer2.fwd.wh.value.rows();
    let (grads_l1, grads_l2) = grads.split_at_mut(6);
    let t_max = cache.seq_len;
    let mut grad_seq2 = Matrix::zeros(t_max, 2 * h);
    grad_seq2.row_mut(t_max - 1)[..h].copy_from_slice(&grad_out[..h]);
    grad_seq2.row_mut(0)[h..].copy_from_slice(&grad_out[h..]);
    let grad_seq1 = bi_backward(
        &net.layer2.fwd,
        &net.layer2.bwd,
        &cache.l2,
        &grad_seq2,
        grads_l2,
    );
    bi_backward(
        &net.layer1.fwd,
        &net.layer1.bwd,
        &cache.l1,
        &grad_seq1,
        grads_l1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsb_tensor::init;

    /// The baseline must stay a faithful replica: same math as the current
    /// hot path (tiny float drift from the different reduction orders is
    /// all that may separate them).
    #[test]
    fn baseline_matches_current_hot_path() {
        let mut rng = init::seeded_rng(11);
        let net: StackedBiRnn<RnnCell> = StackedBiRnn::new(9, 6, &mut rng);
        let input = init::glorot_uniform(13, 9, &mut rng);

        let (out_new, cache_new) = net.forward(input.clone());
        let (out_old, cache_old) = forward(&net, input);
        assert!(
            etsb_tensor::max_abs_diff(&out_new, &out_old) < 1e-5,
            "baseline forward drifted from the current implementation"
        );

        let grad_out = vec![1.0_f32; out_new.len()];
        let mut grads_new = etsb_nn::grad_buffer_for(&net.params());
        let gi_new = net.backward(&cache_new, &grad_out, grads_new.slots_mut());
        let mut grads_old = etsb_nn::grad_buffer_for(&net.params());
        let gi_old = backward(&net, &cache_old, &grad_out, grads_old.slots_mut());
        assert!(
            etsb_tensor::max_abs_diff(gi_new.as_slice(), gi_old.as_slice()) < 1e-4,
            "baseline input grads drifted from the current implementation"
        );
        for s in 0..grads_new.len() {
            assert!(
                etsb_tensor::max_abs_diff(
                    grads_new.slot(s).as_slice(),
                    grads_old.slot(s).as_slice()
                ) < 1e-4,
                "baseline grad slot {s} drifted from the current implementation"
            );
        }
    }
}
