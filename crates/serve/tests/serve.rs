//! End-to-end tests of the resident detection service: the coalescing
//! determinism contract (the batched path must be bitwise identical to
//! per-request sequential inference at any worker count), LRU bounds,
//! backpressure, timeout expiry, drain semantics, and both front ends.
//!
//! Integration tests are exempt from the library no-unwrap discipline;
//! panics here are test failures, not service behaviour.

use etsb_core::config::{CellKind, ModelKind, TrainConfig};
use etsb_core::model::AnyModel;
use etsb_core::persist::LoadedDetector;
use etsb_core::EncodedDataset;
use etsb_serve::engine::DetectService;
use etsb_serve::protocol::{parse_request, validate_response_line, Request, RequestCell, Status};
use etsb_serve::ServeConfig;
use etsb_table::{AttrIndex, CharIndex};
use etsb_tensor::init::seeded_rng;
use std::sync::atomic::AtomicBool;
use std::time::Duration;

/// A small untrained (but deterministically initialised) detector —
/// inference determinism does not care whether the weights are good.
fn detector(kind: CellKind) -> LoadedDetector {
    let char_index = CharIndex::from_alphabet("abcdefghijklmnopqrstuvwxyz0123456789 .-".chars());
    let attr_index = AttrIndex::from_names(vec!["name".to_string(), "city".to_string()]);
    let train = TrainConfig {
        rnn_units: 8,
        attr_rnn_units: 4,
        head_dim: 8,
        length_dense_dim: 8,
        embed_dim: Some(6),
        cell: kind,
        ..TrainConfig::default()
    };
    let dims = EncodedDataset::empty_with_dicts(char_index.clone(), attr_index.clone());
    let model = AnyModel::new(ModelKind::Etsb, &dims, &train, &mut seeded_rng(7));
    LoadedDetector {
        model,
        kind: ModelKind::Etsb,
        train,
        char_index,
        attr_index,
    }
}

fn req(id: &str, cells: &[(&str, &str)]) -> Request {
    Request {
        id: id.to_string(),
        cells: cells
            .iter()
            .enumerate()
            .map(|(i, (attribute, value))| RequestCell {
                tuple_id: i as u64,
                attribute: attribute.to_string(),
                value: value.to_string(),
            })
            .collect(),
    }
}

/// Requests with cross-request duplicates (cache hits), leading
/// whitespace (normalization), empty values and an empty request.
fn sample_requests() -> Vec<Request> {
    vec![
        req("r0", &[("name", "alice"), ("city", "berlin")]),
        req("r1", &[("name", "bob"), ("name", "alice")]),
        req("r2", &[("city", ""), ("city", "  berlin")]),
        req(
            "r3",
            &[("name", "alice"), ("city", "berlin"), ("name", "zz9")],
        ),
        req("r4", &[]),
        req("r5", &[("city", "berlin")]),
    ]
}

/// Reference path: every request is its own batch, no cache.
fn run_sequential(kind: CellKind, requests: &[Request]) -> Vec<String> {
    let service = DetectService::start_manual(
        detector(kind),
        ServeConfig {
            max_batch_cells: 1,
            cache_capacity: 0,
            ..ServeConfig::default()
        },
    );
    requests
        .iter()
        .map(|request| {
            let handle = service.submit(request.clone());
            service.tick();
            handle.wait().to_json_line()
        })
        .collect()
}

/// Coalesced path: all requests queued, then scored in shared batches
/// with the prediction cache enabled. `max_batch_cells` sets the batch
/// boundary; any value must yield the same bytes.
fn run_coalesced(
    kind: CellKind,
    requests: &[Request],
    max_batch_cells: usize,
) -> (Vec<String>, DetectService) {
    let service = DetectService::start_manual(
        detector(kind),
        ServeConfig {
            max_batch_cells,
            ..ServeConfig::default()
        },
    );
    let handles: Vec<_> = requests
        .iter()
        .map(|request| service.submit(request.clone()))
        .collect();
    while service.tick() {}
    let lines = handles
        .into_iter()
        .map(|handle| handle.wait().to_json_line())
        .collect();
    (lines, service)
}

#[test]
fn coalesced_matches_sequential_for_all_cell_kinds_and_worker_counts() {
    for kind in [CellKind::Vanilla, CellKind::Lstm, CellKind::Gru] {
        // Run the list twice so the second pass is served from the cache.
        let mut requests = sample_requests();
        requests.extend(sample_requests());
        let reference = run_sequential(kind, &requests);
        for workers in [1usize, 2, 4] {
            etsb_nn::parallel::set_worker_override(workers);
            let sequential = run_sequential(kind, &requests);
            // One giant batch, and small batches with odd boundaries:
            // batch composition must never show up in the bytes.
            let (one_batch, _) = run_coalesced(kind, &requests, 256);
            let (small_batches, service) = run_coalesced(kind, &requests, 5);
            etsb_nn::parallel::set_worker_override(0);
            assert_eq!(
                one_batch, sequential,
                "coalesced != sequential ({kind:?}, {workers} workers)"
            );
            assert_eq!(
                small_batches, sequential,
                "batch boundary changed results ({kind:?}, {workers} workers)"
            );
            assert_eq!(
                one_batch, reference,
                "results changed with worker count ({kind:?}, {workers} workers)"
            );
            let metrics = service.metrics();
            assert!(
                metrics.cache.hits > 0,
                "cross-batch duplicates should be served from the cache ({kind:?})"
            );
            for line in &one_batch {
                validate_response_line(line).unwrap();
            }
        }
    }
}

#[test]
fn empty_and_invalid_requests_resolve_at_admission() {
    let service = DetectService::start_manual(detector(CellKind::Vanilla), ServeConfig::default());

    let empty = service.submit(req("empty", &[])).wait();
    assert_eq!(empty.status, Status::Ok);
    assert!(empty.results.is_empty());

    let bad = service.submit(req("bad", &[("no_such_attr", "x")])).wait();
    assert_eq!(bad.status, Status::BadRequest);
    assert!(bad.error.unwrap().contains("no_such_attr"));

    let metrics = service.metrics();
    assert_eq!(metrics.requests, 2);
    assert_eq!(metrics.bad_requests, 1);
    assert_eq!(
        metrics.admitted_cells, 0,
        "neither request reached the queue"
    );
}

#[test]
fn lru_bound_holds_and_evictions_are_counted() {
    let service = DetectService::start_manual(
        detector(CellKind::Vanilla),
        ServeConfig {
            cache_capacity: 4,
            ..ServeConfig::default()
        },
    );
    for i in 0..20 {
        let value = format!("value{i}");
        service.submit(req(&format!("r{i}"), &[("name", &value)]));
    }
    while service.tick() {}
    let metrics = service.metrics();
    assert!(
        metrics.cache.len <= 4,
        "cache grew past its bound: {metrics:?}"
    );
    assert_eq!(metrics.cache.capacity, 4);
    assert!(metrics.cache.evictions > 0, "churn must evict: {metrics:?}");
}

#[test]
fn overload_applies_backpressure_until_the_queue_drains() {
    let service = DetectService::start_manual(
        detector(CellKind::Vanilla),
        ServeConfig {
            queue_capacity_cells: 2,
            ..ServeConfig::default()
        },
    );
    let admitted = service.submit(req("a", &[("name", "x"), ("city", "y")]));
    let refused = service.submit(req("b", &[("name", "z")])).wait();
    assert_eq!(refused.status, Status::Overloaded);
    assert!(refused.error.unwrap().contains("queue full"));
    assert_eq!(service.metrics().overloaded, 1);

    service.tick();
    assert_eq!(admitted.wait().status, Status::Ok);
    // Capacity freed: the same request is now admitted and scored.
    let retried = service.submit(req("b", &[("name", "z")]));
    service.tick();
    assert_eq!(retried.wait().status, Status::Ok);
}

#[test]
fn queued_requests_expire_at_their_deadline() {
    let service = DetectService::start_manual(
        detector(CellKind::Vanilla),
        ServeConfig {
            request_timeout: Duration::ZERO,
            ..ServeConfig::default()
        },
    );
    let handle = service.submit(req("t", &[("name", "x")]));
    assert!(service.tick(), "expiring a request still counts as work");
    let response = handle.wait();
    assert_eq!(response.status, Status::Timeout);
    assert_eq!(service.metrics().timeouts, 1);
    assert_eq!(
        service.metrics().batches,
        0,
        "expired requests skip inference"
    );
}

#[test]
fn shutdown_drains_queued_work_and_refuses_new_requests() {
    let mut service =
        DetectService::start_manual(detector(CellKind::Vanilla), ServeConfig::default());
    let h1 = service.submit(req("a", &[("name", "x")]));
    let h2 = service.submit(req("b", &[("city", "y")]));
    service.shutdown();
    assert_eq!(
        h1.wait().status,
        Status::Ok,
        "queued work is completed, not dropped"
    );
    assert_eq!(h2.wait().status, Status::Ok);
    let late = service.submit(req("c", &[("name", "z")])).wait();
    assert_eq!(late.status, Status::ShuttingDown);
}

#[test]
fn resident_worker_serves_concurrent_submitters_identically() {
    let requests = sample_requests();
    let reference = run_sequential(CellKind::Vanilla, &requests);
    let service = DetectService::start(detector(CellKind::Vanilla), ServeConfig::default());
    let mut lines = vec![String::new(); requests.len()];
    std::thread::scope(|scope| {
        for (slot, request) in lines.iter_mut().zip(&requests) {
            let service = &service;
            scope.spawn(move || {
                *slot = service.submit(request.clone()).wait().to_json_line();
            });
        }
    });
    assert_eq!(
        lines, reference,
        "concurrent coalesced results must match sequential"
    );
    assert!(service.metrics().batches >= 1);
}

#[test]
fn stdio_front_end_preserves_input_order_and_is_deterministic() {
    let input = "\
{\"id\":\"r0\",\"cells\":[{\"attribute\":\"name\",\"value\":\"alice\"},{\"attribute\":\"city\",\"value\":\"berlin\"}]}\n\
\n\
this is not json\n\
{\"id\":\"r1\",\"cells\":[{\"attribute\":\"nope\",\"value\":\"x\"}]}\n\
{\"id\":\"r2\",\"cells\":[]}\n\
{\"id\":\"r3\",\"cells\":[{\"attribute\":\"name\",\"value\":\"alice\"}]}\n";

    let run = |max_batch_cells: usize| -> String {
        let mut service = DetectService::start(
            detector(CellKind::Vanilla),
            ServeConfig {
                max_batch_cells,
                ..ServeConfig::default()
            },
        );
        let mut out: Vec<u8> = Vec::new();
        etsb_serve::stdio::run(&service, input.as_bytes(), &mut out).unwrap();
        service.shutdown();
        String::from_utf8(out).unwrap()
    };

    let coalesced = run(256);
    let unbatched = run(1);
    assert_eq!(
        coalesced, unbatched,
        "batching must not change the output bytes"
    );

    let lines: Vec<&str> = coalesced.lines().collect();
    assert_eq!(lines.len(), 5, "one response per non-blank input line");
    for line in &lines {
        validate_response_line(line).unwrap();
    }
    let status_of = |line: &str| {
        etsb_obs::json::parse(line)
            .unwrap()
            .get("status")
            .and_then(|v| v.as_str().map(str::to_string))
            .unwrap()
    };
    assert_eq!(status_of(lines[0]), "ok");
    assert_eq!(status_of(lines[1]), "bad_request", "unparsable line");
    assert_eq!(status_of(lines[2]), "bad_request", "unknown attribute");
    assert_eq!(status_of(lines[3]), "ok", "empty request");
    assert_eq!(status_of(lines[4]), "ok");
}

#[test]
fn http_front_end_round_trips() {
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::Ordering;

    let service = DetectService::start(detector(CellKind::Vanilla), ServeConfig::default());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stop = AtomicBool::new(false);

    let fetch = |request: String| -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    };

    std::thread::scope(|scope| {
        let server = scope.spawn(|| etsb_serve::http::run(&service, listener, &stop));

        let health = fetch("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n".to_string());
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        assert!(health.contains("{\"status\":\"ok\"}"), "{health}");

        let body = "{\"id\":\"h1\",\"cells\":[{\"attribute\":\"name\",\"value\":\"alice\"}]}";
        let detect = fetch(format!(
            "POST /detect HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ));
        assert!(detect.starts_with("HTTP/1.1 200"), "{detect}");
        let json_line = detect.split("\r\n\r\n").nth(1).unwrap();
        validate_response_line(json_line).unwrap();

        let bad = fetch(
            "POST /detect HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\nnot js!".to_string(),
        );
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");

        let metrics = fetch("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n".to_string());
        assert!(metrics.starts_with("HTTP/1.1 200"), "{metrics}");
        assert!(
            metrics.contains("Content-Type: text/plain; version=0.0.4"),
            "{metrics}"
        );
        let expo_body = metrics.split("\r\n\r\n").nth(1).unwrap();
        etsb_obs::expo::validate(expo_body).unwrap();
        assert!(
            expo_body.contains("etsb_serve_requests_total 1"),
            "the scored /detect submission should be counted: {expo_body}"
        );
        assert!(
            expo_body.contains("etsb_serve_detect_latency_ns_bucket{le=\"+Inf\"} 1"),
            "{expo_body}"
        );

        let missing = fetch("GET /nowhere HTTP/1.1\r\nHost: x\r\n\r\n".to_string());
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        stop.store(true, Ordering::SeqCst);
        server.join().unwrap().unwrap();
    });
}

#[test]
fn every_engine_response_carries_identical_provenance() {
    let service = DetectService::start_manual(detector(CellKind::Vanilla), ServeConfig::default());
    let expected = service.provenance().clone();
    assert_eq!(expected.model_hash.len(), 16, "fnv1a64 hex");
    assert!(
        expected
            .model_hash
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()),
        "{expected:?}"
    );
    assert_eq!(expected.model, "ETSB-RNN/RNN");
    assert_eq!(expected.version, env!("CARGO_PKG_VERSION"));

    let scored = service.submit(req("a", &[("name", "x")]));
    service.tick();
    let scored = scored.wait();
    let empty = service.submit(req("b", &[])).wait();
    let bad = service.submit(req("c", &[("nope", "x")])).wait();
    for response in [&scored, &empty, &bad] {
        assert_eq!(
            response.provenance.as_ref(),
            Some(&expected),
            "all engine-filled responses are stamped: {response:?}"
        );
    }
    validate_response_line(&scored.to_json_line()).unwrap();

    // Two services over the same detector stamp identical provenance
    // (it excludes anything run-dependent, e.g. worker count).
    let other = DetectService::start_manual(detector(CellKind::Vanilla), ServeConfig::default());
    assert_eq!(other.provenance(), &expected);
    // A different cell kind changes the weights and therefore the hash.
    let lstm = DetectService::start_manual(detector(CellKind::Lstm), ServeConfig::default());
    assert_ne!(lstm.provenance().model_hash, expected.model_hash);
    assert_eq!(lstm.provenance().model, "ETSB-RNN/LSTM");
}

#[test]
fn prometheus_text_is_valid_and_rateable() {
    let service = DetectService::start_manual(detector(CellKind::Vanilla), ServeConfig::default());
    // Score the same cell twice so the cache-hit mirror moves.
    for id in ["a", "b"] {
        let handle = service.submit(req(id, &[("name", "x")]));
        service.tick();
        handle.wait();
    }
    let text = service.prometheus_text();
    etsb_obs::expo::validate(&text).unwrap();
    for family in [
        "etsb_serve_requests_total",
        "etsb_serve_admitted_cells_total",
        "etsb_serve_batches_total",
        "etsb_serve_cache_hits_total",
        "etsb_serve_cache_misses_total",
        "etsb_serve_detect_latency_ns",
        "etsb_serve_batch_latency_ns",
        "etsb_serve_batch_occupancy_cells",
        "etsb_serve_queue_depth_cells",
        "etsb_serve_queue_cells",
        "etsb_serve_cache_len",
    ] {
        assert!(text.contains(family), "missing family {family}:\n{text}");
    }
    assert!(text.contains("etsb_serve_cache_hits_total 1"), "{text}");
    assert!(text.contains("etsb_serve_cache_misses_total 1"), "{text}");
    assert!(
        text.contains("etsb_serve_batch_occupancy_cells_bucket{le=\"1\"} 2"),
        "two single-cell batches: {text}"
    );

    // The exposition snapshot is itself deterministic: rendering twice
    // with no traffic in between yields identical bytes.
    assert_eq!(service.prometheus_text(), text);
}

#[test]
fn protocol_parse_and_serve_agree_on_request_shapes() {
    // A request that round-trips through the parser scores identically
    // to one constructed directly.
    let parsed = parse_request(
        "{\"id\":\"p\",\"cells\":[{\"tuple_id\":0,\"attribute\":\"name\",\"value\":\"alice\"}]}",
    )
    .unwrap();
    let built = req("p", &[("name", "alice")]);
    assert_eq!(parsed, built);
}
