//! Smoke checker for `etsb serve` output, used by `run_checks.sh`:
//!
//! * `serve_check --validate FILE` — every non-empty line of `FILE` must
//!   be a schema-valid response (see
//!   [`etsb_serve::protocol::validate_response_line`]).
//! * `serve_check --equal A B` — `A` and `B` must be byte-identical,
//!   asserting the coalescing-determinism contract end to end (a
//!   coalesced run and a batch-size-1 run must produce the same bytes).

use etsb_serve::protocol::validate_response_line;
use std::io::Write;
use std::process::ExitCode;

fn validate(path: &str, out: &mut impl Write) -> Result<(), String> {
    // etsb: allow(no-whole-file-read) -- validation tool over a bounded smoke-test transcript.
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut checked = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_response_line(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        checked += 1;
    }
    if checked == 0 {
        return Err(format!("{path}: no response lines to validate"));
    }
    writeln!(out, "serve_check: {checked} response line(s) schema-valid").map_err(|e| e.to_string())
}

fn equal(path_a: &str, path_b: &str, out: &mut impl Write) -> Result<(), String> {
    // etsb: allow(no-whole-file-read) -- byte-equality over bounded smoke-test transcripts.
    let a = std::fs::read(path_a).map_err(|e| format!("reading {path_a}: {e}"))?;
    // etsb: allow(no-whole-file-read) -- byte-equality over bounded smoke-test transcripts.
    let b = std::fs::read(path_b).map_err(|e| format!("reading {path_b}: {e}"))?;
    if a != b {
        let text_a = String::from_utf8_lossy(&a);
        let text_b = String::from_utf8_lossy(&b);
        let mut lines_b = text_b.lines();
        for (lineno, line_a) in text_a.lines().enumerate() {
            let line_b = lines_b.next().unwrap_or("<missing>");
            if line_a != line_b {
                return Err(format!(
                    "{path_a} and {path_b} differ at line {}:\n  {line_a}\n  {line_b}",
                    lineno + 1
                ));
            }
        }
        return Err(format!(
            "{path_a} and {path_b} differ (trailing content in {path_b})"
        ));
    }
    writeln!(
        out,
        "serve_check: {path_a} and {path_b} are byte-identical ({} bytes)",
        a.len()
    )
    .map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let result = match (args.first().map(String::as_str), args.len()) {
        (Some("--validate"), 2) => validate(&args[1], &mut out),
        (Some("--equal"), 3) => equal(&args[1], &args[2], &mut out),
        _ => Err("usage: serve_check --validate FILE | serve_check --equal FILE FILE".to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            let stderr = std::io::stderr();
            let _ = writeln!(stderr.lock(), "serve_check: {e}");
            ExitCode::FAILURE
        }
    }
}
