//! The resident detection engine: an admission queue that coalesces
//! concurrently arriving requests into one batched forward pass per
//! worker tick, backed by the shared bounded prediction LRU.
//!
//! # Lifecycle
//!
//! [`DetectService::start`] spawns a batcher thread that parks on the
//! queue condvar, lingers briefly once work arrives (so neighbouring
//! requests coalesce), then runs one [`tick`](DetectService::tick).
//! [`DetectService::start_manual`] spawns nothing — tests and embedders
//! drive ticks explicitly, which makes timeout and backpressure paths
//! deterministic without sleeps. [`DetectService::shutdown`] (also run
//! on drop) stops admissions, *drains* every queued request, and joins
//! the worker; queued work is completed, never discarded.
//!
//! # Determinism
//!
//! A tick concatenates per-request encodings in arrival order and runs
//! one eval-mode forward pass. Eval mode is row-independent and request
//! encoding is a pure function of each request alone, so batch
//! composition cannot change any cell's probability: coalesced serving
//! is bitwise identical to scoring each request in its own process, at
//! any worker count and any batch boundary. The cache preserves the same
//! identity because its key is the cell's complete model input.

use crate::protocol::{CellResult, Provenance, Request, Response, Status};
use crate::ServeConfig;
use etsb_core::manifest::compiled_features;
use etsb_core::persist::LoadedDetector;
use etsb_core::{CacheStats, EncodedDataset, KernelPolicy, PredictCache};
use etsb_obs::registry::{Counter, Gauge, Histogram, Registry, COUNT_BOUNDS};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Acquire a mutex, tolerating poisoning: a panic elsewhere must not
/// wedge the service, and every guarded structure is valid after any
/// completed mutation.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn cv_wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match cv.wait(guard) {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn cv_wait_timeout<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, bool) {
    match cv.wait_timeout(guard, dur) {
        Ok((g, timeout)) => (g, timeout.timed_out()),
        Err(poisoned) => {
            let (g, timeout) = poisoned.into_inner();
            (g, timeout.timed_out())
        }
    }
}

/// One-shot rendezvous between a submitter and the batcher.
#[derive(Debug)]
struct Slot {
    response: Mutex<Option<Response>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            response: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// Deliver the response (first delivery wins) and wake the waiter.
    fn fill(&self, response: Response) {
        let mut guard = lock(&self.response);
        if guard.is_none() {
            *guard = Some(response);
        }
        self.ready.notify_all();
    }
}

/// Handle returned by [`DetectService::submit`]; redeem it for the
/// response with [`wait`](ResponseHandle::wait).
#[derive(Debug)]
pub struct ResponseHandle {
    slot: Arc<Slot>,
}

impl ResponseHandle {
    /// Block until the request reaches a terminal status. Completion is
    /// guaranteed: every admitted request is answered by a tick (scored
    /// or timed out), rejected requests are answered at submission, and
    /// shutdown drains the queue before the batcher exits.
    pub fn wait(self) -> Response {
        let mut guard = lock(&self.slot.response);
        loop {
            if let Some(response) = guard.take() {
                return response;
            }
            guard = cv_wait(&self.slot.ready, guard);
        }
    }

    /// Non-blocking probe: the response, if already delivered.
    pub fn try_take(&self) -> Option<Response> {
        lock(&self.slot.response).take()
    }
}

/// A request admitted to the queue, encoded and validated up front so
/// the batcher tick does no per-request schema work.
struct Pending {
    id: String,
    /// `(tuple_id, attribute)` echo per cell, in submission order.
    echo: Vec<(u64, String)>,
    encoded: EncodedDataset,
    /// Queue-residency deadline; `None` never expires.
    deadline: Option<Instant>,
    /// Admission time, for the end-to-end detect latency histogram.
    submitted: Instant,
    slot: Arc<Slot>,
}

/// Cached handles into the service registry: resolved once at startup
/// so the hot paths record through lock-free atomics only. The names
/// are the Prometheus families exposed on `GET /metrics`.
#[derive(Debug)]
struct Instruments {
    requests: Arc<Counter>,
    admitted_cells: Arc<Counter>,
    batches: Arc<Counter>,
    bad_requests: Arc<Counter>,
    overloaded: Arc<Counter>,
    timeouts: Arc<Counter>,
    /// Monotonic mirrors of the prediction-LRU's cumulative stats
    /// (synced via `record_cumulative`, so scrapes are `rate()`-able).
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    queue_cells: Arc<Gauge>,
    cache_len: Arc<Gauge>,
    cache_capacity: Arc<Gauge>,
    /// Submit-to-delivery latency of scored requests.
    detect_latency_ns: Arc<Histogram>,
    /// Wall time of one coalesced forward pass.
    batch_latency_ns: Arc<Histogram>,
    /// Cells per coalesced batch.
    batch_occupancy: Arc<Histogram>,
    /// Cells waiting when a tick began (pre-pop).
    queue_depth: Arc<Histogram>,
}

impl Instruments {
    fn register(registry: &Registry) -> Instruments {
        Instruments {
            requests: registry.counter("etsb_serve_requests_total"),
            admitted_cells: registry.counter("etsb_serve_admitted_cells_total"),
            batches: registry.counter("etsb_serve_batches_total"),
            bad_requests: registry.counter("etsb_serve_bad_requests_total"),
            overloaded: registry.counter("etsb_serve_overloaded_total"),
            timeouts: registry.counter("etsb_serve_timeouts_total"),
            cache_hits: registry.counter("etsb_serve_cache_hits_total"),
            cache_misses: registry.counter("etsb_serve_cache_misses_total"),
            cache_evictions: registry.counter("etsb_serve_cache_evictions_total"),
            queue_cells: registry.gauge("etsb_serve_queue_cells"),
            cache_len: registry.gauge("etsb_serve_cache_len"),
            cache_capacity: registry.gauge("etsb_serve_cache_capacity"),
            detect_latency_ns: registry.histogram("etsb_serve_detect_latency_ns"),
            batch_latency_ns: registry.histogram("etsb_serve_batch_latency_ns"),
            batch_occupancy: registry
                .histogram_with_bounds("etsb_serve_batch_occupancy_cells", &COUNT_BOUNDS),
            queue_depth: registry
                .histogram_with_bounds("etsb_serve_queue_depth_cells", &COUNT_BOUNDS),
        }
    }

    /// Mirror the prediction-LRU's cumulative stats into the registry.
    /// `record_cumulative` is a `fetch_max`, so even racing syncs can
    /// never make an exposed counter go backwards.
    fn sync_cache(&self, stats: &CacheStats) {
        self.cache_hits.record_cumulative(stats.hits);
        self.cache_misses.record_cumulative(stats.misses);
        self.cache_evictions.record_cumulative(stats.evictions);
        self.cache_len.set(stats.len as f64);
        self.cache_capacity.set(stats.capacity as f64);
    }
}

/// Point-in-time service counters plus prediction-cache statistics, as
/// reported by [`DetectService::metrics`] (the CLI shutdown summary).
/// `GET /metrics` serves the full Prometheus exposition instead
/// ([`DetectService::prometheus_text`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Requests submitted (all outcomes).
    pub requests: u64,
    /// Cells admitted to the queue (excludes rejected requests).
    pub admitted_cells: u64,
    /// Coalesced forward passes run.
    pub batches: u64,
    /// Requests refused as malformed.
    pub bad_requests: u64,
    /// Requests refused by backpressure.
    pub overloaded: u64,
    /// Requests expired in the queue.
    pub timeouts: u64,
    /// Cells currently queued.
    pub queue_cells: u64,
    /// Shared prediction-LRU statistics.
    pub cache: CacheStats,
}

/// A duration in whole nanoseconds, saturating at `u64::MAX` (584
/// years — unreachable in practice, but histograms take `u64`).
fn saturating_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// FNV-1a 64-bit hash, used to fingerprint weight snapshots for
/// per-response provenance.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Build the provenance stamped on every response this service fills.
/// Deliberately excludes worker counts and timestamps: two services
/// loaded from the same detector always stamp identical bytes.
fn provenance_of(detector: &LoadedDetector, policy: KernelPolicy) -> Provenance {
    Provenance {
        model_hash: format!("{:016x}", fnv1a64(&detector.model.snapshot())),
        model: format!("{}/{}", detector.kind.name(), detector.train.cell.name()),
        version: env!("CARGO_PKG_VERSION").to_string(),
        kernel_policy: policy.name().to_string(),
        features: compiled_features(),
    }
}

struct QueueState {
    queue: VecDeque<Pending>,
    queued_cells: usize,
    shutting_down: bool,
}

struct Shared {
    detector: LoadedDetector,
    cfg: ServeConfig,
    queue: Mutex<QueueState>,
    /// Signalled on every enqueue and on shutdown.
    arrived: Condvar,
    cache: Mutex<PredictCache>,
    /// Per-service metrics registry, exposed on `GET /metrics`.
    registry: Arc<Registry>,
    ins: Instruments,
    /// Stamped on every response this service fills.
    provenance: Provenance,
    /// Inference kernel policy, fixed for the service's lifetime (one
    /// cache, one policy: cache keys do not encode the policy).
    policy: KernelPolicy,
}

/// The resident detection service. See the module docs for lifecycle
/// and determinism guarantees.
pub struct DetectService {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for DetectService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectService")
            .field("resident_worker", &self.worker.is_some())
            .finish_non_exhaustive()
    }
}

impl DetectService {
    /// Start the service with a resident batcher thread.
    pub fn start(detector: LoadedDetector, cfg: ServeConfig) -> DetectService {
        let mut service = Self::start_manual(detector, cfg);
        let shared = Arc::clone(&service.shared);
        service.worker = Some(std::thread::spawn(move || worker_loop(&shared)));
        service
    }

    /// Start the service without a batcher thread: the embedder calls
    /// [`tick`](DetectService::tick) explicitly. Used by tests to drive
    /// batching, timeout and backpressure paths deterministically.
    pub fn start_manual(detector: LoadedDetector, cfg: ServeConfig) -> DetectService {
        let cache = PredictCache::new(cfg.cache_capacity);
        let registry = Arc::new(Registry::new());
        let ins = Instruments::register(&registry);
        ins.sync_cache(&cache.stats());
        let policy = if cfg.fast_math {
            KernelPolicy::FastMath
        } else {
            KernelPolicy::Exact
        };
        let provenance = provenance_of(&detector, policy);
        DetectService {
            shared: Arc::new(Shared {
                detector,
                cfg,
                queue: Mutex::new(QueueState {
                    queue: VecDeque::new(),
                    queued_cells: 0,
                    shutting_down: false,
                }),
                arrived: Condvar::new(),
                cache: Mutex::new(cache),
                registry,
                ins,
                provenance,
                policy,
            }),
            worker: None,
        }
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.cfg
    }

    /// Submit one request. Validation (attribute resolution, encoding)
    /// and admission control run on the caller's thread; rejections
    /// (`bad_request`, `overloaded`, `shutting_down`) and empty requests
    /// resolve immediately, everything else is answered by a batcher
    /// tick.
    pub fn submit(&self, request: Request) -> ResponseHandle {
        let shared = &self.shared;
        let slot = Arc::new(Slot::new());
        let handle = ResponseHandle {
            slot: Arc::clone(&slot),
        };
        shared.ins.requests.inc();
        let _span = etsb_obs::obs_span!(
            "serve.submit",
            "cells" => request.cells.len() as u64,
        );

        if request.cells.is_empty() {
            slot.fill(
                Response::ok(request.id, Vec::new()).with_provenance(shared.provenance.clone()),
            );
            return handle;
        }

        // Resolve attributes against the training schema and encode with
        // training-time dictionaries, all before touching the queue.
        let mut pairs = Vec::with_capacity(request.cells.len());
        let mut echo = Vec::with_capacity(request.cells.len());
        for cell in &request.cells {
            match shared.detector.attr_index.index_of(&cell.attribute) {
                Some(attr) => {
                    pairs.push((attr, cell.value.as_str()));
                    echo.push((cell.tuple_id, cell.attribute.clone()));
                }
                None => {
                    shared.ins.bad_requests.inc();
                    slot.fill(
                        Response::failed(
                            request.id,
                            Status::BadRequest,
                            format!("unknown attribute {:?}", cell.attribute),
                        )
                        .with_provenance(shared.provenance.clone()),
                    );
                    return handle;
                }
            }
        }
        let encoded = match EncodedDataset::from_request_cells(
            &pairs,
            &shared.detector.char_index,
            &shared.detector.attr_index,
        ) {
            Ok(encoded) => encoded,
            Err(e) => {
                shared.ins.bad_requests.inc();
                slot.fill(
                    Response::failed(
                        request.id,
                        Status::BadRequest,
                        format!("encoding failed: {e}"),
                    )
                    .with_provenance(shared.provenance.clone()),
                );
                return handle;
            }
        };

        let n_cells = encoded.sequences.len();
        let submitted = Instant::now();
        let deadline = submitted.checked_add(shared.cfg.request_timeout);
        {
            let mut q = lock(&shared.queue);
            if q.shutting_down {
                drop(q);
                slot.fill(
                    Response::failed(
                        request.id,
                        Status::ShuttingDown,
                        "service is draining and accepts no new requests".to_string(),
                    )
                    .with_provenance(shared.provenance.clone()),
                );
                return handle;
            }
            if q.queued_cells + n_cells > shared.cfg.queue_capacity_cells {
                let queued = q.queued_cells;
                drop(q);
                shared.ins.overloaded.inc();
                slot.fill(
                    Response::failed(
                        request.id,
                        Status::Overloaded,
                        format!(
                            "admission queue full ({queued} cells queued, capacity {}, request {n_cells})",
                            shared.cfg.queue_capacity_cells
                        ),
                    )
                    .with_provenance(shared.provenance.clone()),
                );
                return handle;
            }
            q.queued_cells += n_cells;
            q.queue.push_back(Pending {
                id: request.id,
                echo,
                encoded,
                deadline,
                submitted,
                slot,
            });
            shared.ins.admitted_cells.add(n_cells as u64);
            shared.ins.queue_cells.set(q.queued_cells as f64);
            if etsb_obs::enabled() {
                etsb_obs::gauge("serve_queue_cells", q.queued_cells as f64);
            }
        }
        shared.arrived.notify_all();
        handle
    }

    /// Run one batching tick on the caller's thread: pop whole requests
    /// up to the cell budget, expire the ones past their deadline, score
    /// the rest in one coalesced forward pass, and deliver responses.
    /// Returns `false` if the queue was empty (no work performed).
    pub fn tick(&self) -> bool {
        self.shared.tick()
    }

    /// Snapshot the service counters and cache statistics.
    pub fn metrics(&self) -> ServiceMetrics {
        let ins = &self.shared.ins;
        ServiceMetrics {
            requests: ins.requests.value(),
            admitted_cells: ins.admitted_cells.value(),
            batches: ins.batches.value(),
            bad_requests: ins.bad_requests.value(),
            overloaded: ins.overloaded.value(),
            timeouts: ins.timeouts.value(),
            queue_cells: lock(&self.shared.queue).queued_cells as u64,
            cache: lock(&self.shared.cache).stats(),
        }
    }

    /// The per-service metrics registry. Shared with load harnesses so
    /// they can diff [`Registry::snapshot`]s around each arm.
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.shared.registry)
    }

    /// The provenance stamped on every response this service fills.
    pub fn provenance(&self) -> &Provenance {
        &self.shared.provenance
    }

    /// Render the registry in Prometheus text exposition format (the
    /// `GET /metrics` body). Syncs the cache mirrors and queue gauge
    /// first so a scrape is never staler than the moment it was served.
    pub fn prometheus_text(&self) -> String {
        let ins = &self.shared.ins;
        ins.sync_cache(&lock(&self.shared.cache).stats());
        ins.queue_cells
            .set(lock(&self.shared.queue).queued_cells as f64);
        etsb_obs::expo::render(&self.shared.registry.snapshot())
    }

    /// Stop admissions, drain every queued request, and join the worker.
    /// Queued work is completed, not discarded; only requests arriving
    /// after shutdown begins are refused with `shutting_down`.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        {
            let mut q = lock(&self.shared.queue);
            q.shutting_down = true;
        }
        self.shared.arrived.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        } else {
            // Manual mode drains on the caller's thread.
            while self.shared.tick() {}
        }
    }
}

impl Drop for DetectService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Shared {
    fn tick(&self) -> bool {
        let batch: Vec<Pending> = {
            let mut q = lock(&self.queue);
            if q.queue.is_empty() {
                return false;
            }
            self.ins.queue_depth.record(q.queued_cells as u64);
            let mut batch = Vec::new();
            let mut cells = 0usize;
            while let Some(front) = q.queue.front() {
                let n = front.encoded.sequences.len();
                if !batch.is_empty() && cells + n > self.cfg.max_batch_cells {
                    break;
                }
                cells += n;
                q.queued_cells = q.queued_cells.saturating_sub(n);
                if let Some(pending) = q.queue.pop_front() {
                    batch.push(pending);
                }
            }
            self.ins.queue_cells.set(q.queued_cells as f64);
            if etsb_obs::enabled() {
                etsb_obs::gauge("serve_queue_cells", q.queued_cells as f64);
            }
            batch
        };

        let started = Instant::now();
        let mut live = Vec::with_capacity(batch.len());
        for pending in batch {
            match pending.deadline {
                Some(deadline) if started >= deadline => {
                    self.ins.timeouts.inc();
                    pending.slot.fill(
                        Response::failed(
                            pending.id,
                            Status::Timeout,
                            "request expired in the admission queue".to_string(),
                        )
                        .with_provenance(self.provenance.clone()),
                    );
                }
                _ => live.push(pending),
            }
        }
        if live.is_empty() {
            // Expiring requests still counts as work performed.
            return true;
        }

        // Coalesce: concatenate per-request encodings in arrival order.
        // Each encoding is a pure function of its own request, so
        // concatenation cannot change any cell's model inputs — the
        // bitwise-determinism invariant of the whole service.
        let total: usize = live.iter().map(|p| p.encoded.sequences.len()).sum();
        let mut merged = EncodedDataset::empty_with_dicts(
            self.detector.char_index.clone(),
            self.detector.attr_index.clone(),
        );
        merged.sequences.reserve(total);
        merged.attr_ids.reserve(total);
        merged.length_norms.reserve(total);
        merged.labels.reserve(total);
        for pending in &live {
            merged
                .sequences
                .extend(pending.encoded.sequences.iter().cloned());
            merged.attr_ids.extend_from_slice(&pending.encoded.attr_ids);
            merged
                .length_norms
                .extend_from_slice(&pending.encoded.length_norms);
            merged.labels.extend_from_slice(&pending.encoded.labels);
        }
        merged.n_tuples = total;

        let cells: Vec<usize> = (0..total).collect();
        let (probs, stats) = {
            let _span = etsb_obs::obs_span!(
                "serve.batch",
                "requests" => live.len() as u64,
                "cells" => total as u64,
            );
            let mut cache = lock(&self.cache);
            let probs = self.detector.model.predict_probs_cached_with(
                &merged,
                &cells,
                &mut cache,
                self.policy,
            );
            (probs, cache.stats())
        };
        if etsb_obs::enabled() {
            // Batch-level manifest event: the response-provenance fields
            // plus which coalesced requests shared this forward pass, so
            // a trace replays exactly who was scored under which kernels.
            let request_ids: Vec<&str> = live.iter().map(|p| p.id.as_str()).collect();
            etsb_obs::obs_event!(
                "serve.batch_manifest",
                "model_hash" => self.provenance.model_hash.clone(),
                "model" => self.provenance.model.clone(),
                "kernel_policy" => self.policy.name(),
                "requests" => request_ids.join(","),
                "cells" => total as u64,
            );
        }
        self.ins.batches.inc();
        self.ins.batch_occupancy.record(total as u64);
        self.ins
            .batch_latency_ns
            .record_ns(saturating_ns(started.elapsed()));
        self.ins.sync_cache(&stats);
        if etsb_obs::enabled() {
            etsb_obs::gauge("serve_batch_cells", total as f64);
            etsb_obs::gauge(
                "serve_batch_latency_us",
                started.elapsed().as_micros() as f64,
            );
            etsb_obs::gauge("serve_cache_len", stats.len as f64);
            etsb_obs::counter("serve_cache_hits_total", stats.hits);
            etsb_obs::counter("serve_cache_misses_total", stats.misses);
            etsb_obs::counter("serve_cache_evictions_total", stats.evictions);
        }

        let threshold = self.cfg.prob_threshold;
        let delivered = Instant::now();
        let mut offset = 0usize;
        for pending in live {
            let Pending {
                id,
                echo,
                submitted,
                slot,
                ..
            } = pending;
            let n = echo.len();
            let slice = &probs[offset..offset + n];
            offset += n;
            let results: Vec<CellResult> = echo
                .into_iter()
                .zip(slice)
                .map(|((tuple_id, attribute), &prob)| CellResult {
                    tuple_id,
                    attribute,
                    prob,
                    flagged: prob >= threshold,
                })
                .collect();
            self.ins.detect_latency_ns.record_ns(saturating_ns(
                delivered.saturating_duration_since(submitted),
            ));
            slot.fill(Response::ok(id, results).with_provenance(self.provenance.clone()));
        }
        true
    }
}

/// Resident batcher: park until work arrives, linger briefly so
/// neighbouring requests coalesce, run one tick; exit once shutdown is
/// flagged *and* the queue is drained.
fn worker_loop(shared: &Shared) {
    loop {
        {
            let mut q = lock(&shared.queue);
            loop {
                if !q.queue.is_empty() {
                    break;
                }
                if q.shutting_down {
                    return;
                }
                q = cv_wait(&shared.arrived, q);
            }
            // Linger for more arrivals up to the batch budget. Purely a
            // throughput knob: batch composition never affects results.
            if let Some(deadline) = Instant::now().checked_add(shared.cfg.linger) {
                while q.queued_cells < shared.cfg.max_batch_cells && !q.shutting_down {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, timed_out) = cv_wait_timeout(&shared.arrived, q, deadline - now);
                    q = guard;
                    if timed_out {
                        break;
                    }
                }
            }
        }
        shared.tick();
    }
}
