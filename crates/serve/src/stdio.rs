//! JSONL-over-stdio front end: one request per input line, one response
//! per output line, *in input order*.
//!
//! The reader thread parses and submits lines as fast as they arrive —
//! this is what feeds the engine enough concurrent requests to coalesce
//! — while a writer thread redeems response handles strictly in
//! submission order. Output order is therefore deterministic regardless
//! of how requests were batched, which lets the `run_checks.sh` smoke
//! test compare coalesced and non-coalesced runs byte for byte.

use crate::engine::{DetectService, ResponseHandle};
use crate::protocol::{parse_request, Response, Status};
use std::io::{BufRead, Write};
use std::sync::mpsc;

enum Item {
    /// Resolved without touching the engine (parse failure).
    Immediate(Response),
    /// In flight; the writer blocks on it in submission order.
    Handle(ResponseHandle),
}

/// Pump requests from `input` through `service` and write one response
/// line per request to `output`, in input order. Returns when `input`
/// reaches end-of-file and every submitted request has been answered.
/// Blank lines are skipped; unparsable lines produce `bad_request`
/// responses (with an empty `id`) rather than aborting the stream.
pub fn run<R: BufRead, W: Write + Send>(
    service: &DetectService,
    input: R,
    output: W,
) -> std::io::Result<()> {
    let (tx, rx) = mpsc::channel::<Item>();
    let mut output = output;
    std::thread::scope(|scope| {
        let writer = scope.spawn(move || -> std::io::Result<()> {
            for item in rx {
                let response = match item {
                    Item::Immediate(response) => response,
                    Item::Handle(handle) => handle.wait(),
                };
                writeln!(output, "{}", response.to_json_line())?;
            }
            output.flush()
        });
        let mut read_error = None;
        for line in input.lines() {
            let line = match line {
                Ok(line) => line,
                Err(e) => {
                    read_error = Some(e);
                    break;
                }
            };
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let item = match parse_request(trimmed) {
                Ok(request) => Item::Handle(service.submit(request)),
                Err(e) => Item::Immediate(
                    Response::failed(String::new(), Status::BadRequest, e)
                        .with_provenance(service.provenance().clone()),
                ),
            };
            if tx.send(item).is_err() {
                break; // Writer gone (I/O error); its result says why.
            }
        }
        drop(tx); // End-of-stream for the writer.
        let wrote = match writer.join() {
            Ok(result) => result,
            Err(_) => Err(std::io::Error::other("response writer thread panicked")),
        };
        match read_error {
            Some(e) => Err(e),
            None => wrote,
        }
    })
}
