//! The request/response wire protocol: newline-delimited JSON, one
//! object per line, shared by the stdio and HTTP front ends.
//!
//! Request:
//!
//! ```json
//! {"id":"r1","cells":[{"tuple_id":0,"attribute":"city","value":"Zurich"}]}
//! ```
//!
//! Response (`results` present only for `"status":"ok"`, in the order
//! the cells were submitted; `error` present only on failure):
//!
//! ```json
//! {"id":"r1","status":"ok","results":[
//!   {"tuple_id":0,"attribute":"city","prob":0.0317,"flagged":false}]}
//! ```
//!
//! The shape follows the HoloClean `DetectEngine` contract: a detection
//! pass returns one record per cell id `(tuple_id, attribute)` with the
//! detector's verdict. Probabilities are `f32` widened exactly to JSON
//! numbers, so two byte-identical inference results always serialize to
//! byte-identical response lines — the property the determinism smoke
//! test (`serve_check`) asserts end to end.

use etsb_obs::json::{self, Value};

/// One cell submitted for detection.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestCell {
    /// Caller-side row id, echoed back untouched (defaults to 0).
    pub tuple_id: u64,
    /// Attribute name; must exist in the detector's training schema.
    pub attribute: String,
    /// The raw cell value.
    pub value: String,
}

/// One detection request: a batch of loose cells under a caller id.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Caller-chosen correlation id, echoed back untouched.
    pub id: String,
    /// Cells to score. May be empty (the response is `ok` with no
    /// results).
    pub cells: Vec<RequestCell>,
}

/// Terminal status of a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Scored; `results` carries one record per submitted cell.
    Ok,
    /// The request was malformed (unknown attribute, bad JSON shape).
    BadRequest,
    /// The admission queue was full — backpressure; retry later.
    Overloaded,
    /// The request waited in the queue past its deadline.
    Timeout,
    /// The service is draining and accepts no new work.
    ShuttingDown,
}

impl Status {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::BadRequest => "bad_request",
            Status::Overloaded => "overloaded",
            Status::Timeout => "timeout",
            Status::ShuttingDown => "shutting_down",
        }
    }
}

/// Verdict for one submitted cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellResult {
    /// Echo of the submitted `tuple_id`.
    pub tuple_id: u64,
    /// Echo of the submitted attribute name.
    pub attribute: String,
    /// Error probability from the detector.
    pub prob: f32,
    /// `prob >= threshold` (0.5 by default).
    pub flagged: bool,
}

/// Compact per-response provenance: which model produced this answer.
///
/// Stamped by the engine on every response it fills (the response-level
/// sibling of the `RunManifest` sidecar). Deliberately excludes anything
/// that varies between bitwise-identical runs — worker counts, wall
/// clocks — so two identical detectors always stamp identical bytes and
/// the `serve_check --equal` determinism smoke keeps holding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Provenance {
    /// FNV-1a 64-bit hash of the weight snapshot, as 16 hex digits.
    pub model_hash: String,
    /// Architecture: `<model kind>/<cell kind>` (e.g. `etsb/gru`).
    pub model: String,
    /// Workspace crate version.
    pub version: String,
    /// Active inference kernel policy (`exact` or `fast-math`) — fast
    /// and exact results must never be conflated by byte-equality
    /// comparisons, so the policy travels with every response.
    pub kernel_policy: String,
    /// Compiled feature flags that affect numerics or diagnostics.
    pub features: Vec<String>,
}

impl Provenance {
    /// The JSON object embedded in response lines.
    pub fn to_json_value(&self) -> Value {
        Value::obj([
            (
                "model_hash".to_string(),
                Value::Str(self.model_hash.clone()),
            ),
            ("model".to_string(), Value::Str(self.model.clone())),
            ("version".to_string(), Value::Str(self.version.clone())),
            (
                "kernel_policy".to_string(),
                Value::Str(self.kernel_policy.clone()),
            ),
            (
                "features".to_string(),
                Value::Arr(
                    self.features
                        .iter()
                        .map(|f| Value::Str(f.clone()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// One response line.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Echo of the request id.
    pub id: String,
    /// Terminal status.
    pub status: Status,
    /// Human-readable failure description (non-`ok` statuses only).
    pub error: Option<String>,
    /// Per-cell verdicts in submission order (`ok` only).
    pub results: Vec<CellResult>,
    /// Model provenance; stamped by the engine, absent on responses
    /// produced before a service was consulted (e.g. parse failures).
    pub provenance: Option<Provenance>,
}

impl Response {
    /// A successful response.
    pub fn ok(id: String, results: Vec<CellResult>) -> Response {
        Response {
            id,
            status: Status::Ok,
            error: None,
            results,
            provenance: None,
        }
    }

    /// A failed response carrying a reason.
    pub fn failed(id: String, status: Status, error: String) -> Response {
        Response {
            id,
            status,
            error: Some(error),
            results: Vec::new(),
            provenance: None,
        }
    }

    /// Stamp model provenance onto this response.
    pub fn with_provenance(mut self, provenance: Provenance) -> Response {
        self.provenance = Some(provenance);
        self
    }

    /// Serialize to one JSON line (no trailing newline). Key order is
    /// fixed by the JSON object representation (sorted keys), so equal
    /// responses always produce equal bytes.
    pub fn to_json_line(&self) -> String {
        let mut pairs = vec![
            ("id".to_string(), Value::Str(self.id.clone())),
            (
                "status".to_string(),
                Value::Str(self.status.as_str().to_string()),
            ),
        ];
        if let Some(error) = &self.error {
            pairs.push(("error".to_string(), Value::Str(error.clone())));
        }
        if let Some(provenance) = &self.provenance {
            pairs.push(("provenance".to_string(), provenance.to_json_value()));
        }
        if self.status == Status::Ok {
            let results: Vec<Value> = self
                .results
                .iter()
                .map(|r| {
                    Value::obj([
                        ("tuple_id".to_string(), Value::Num(r.tuple_id as f64)),
                        ("attribute".to_string(), Value::Str(r.attribute.clone())),
                        ("prob".to_string(), Value::Num(f64::from(r.prob))),
                        ("flagged".to_string(), Value::Bool(r.flagged)),
                    ])
                })
                .collect();
            pairs.push(("results".to_string(), Value::Arr(results)));
        }
        Value::obj(pairs).to_json()
    }
}

fn str_field(obj: &Value, key: &str) -> Result<Option<String>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(format!("\"{key}\" must be a string")),
    }
}

fn u64_field(obj: &Value, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(Value::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(Some(*n as u64)),
        Some(_) => Err(format!("\"{key}\" must be a non-negative integer")),
    }
}

/// Parse one request line. Errors describe the first structural problem;
/// the service converts them into `bad_request` responses rather than
/// dropping the line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    if !matches!(value, Value::Obj(_)) {
        return Err("request must be a JSON object".to_string());
    }
    let id = str_field(&value, "id")?.unwrap_or_default();
    let cells = match value.get("cells") {
        None => Vec::new(),
        Some(Value::Arr(items)) => {
            let mut cells = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                if !matches!(item, Value::Obj(_)) {
                    return Err(format!("cells[{i}] must be an object"));
                }
                let attribute = str_field(item, "attribute")?
                    .ok_or_else(|| format!("cells[{i}] is missing \"attribute\""))?;
                let cell_value = str_field(item, "value")?
                    .ok_or_else(|| format!("cells[{i}] is missing \"value\""))?;
                let tuple_id = u64_field(item, "tuple_id")?.unwrap_or(0);
                cells.push(RequestCell {
                    tuple_id,
                    attribute,
                    value: cell_value,
                });
            }
            cells
        }
        Some(_) => return Err("\"cells\" must be an array".to_string()),
    };
    Ok(Request { id, cells })
}

/// Known wire statuses, for validation.
const STATUSES: [&str; 5] = [
    "ok",
    "bad_request",
    "overloaded",
    "timeout",
    "shutting_down",
];

/// Validate one response line against the wire schema (used by the
/// `serve_check` smoke binary and by tests). Checks structure, status
/// vocabulary, result fields and probability range.
pub fn validate_response_line(line: &str) -> Result<(), String> {
    let value = json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    if !matches!(value, Value::Obj(_)) {
        return Err("response must be a JSON object".to_string());
    }
    if str_field(&value, "id")?.is_none() {
        return Err("missing \"id\"".to_string());
    }
    let status = str_field(&value, "status")?.ok_or_else(|| "missing \"status\"".to_string())?;
    if !STATUSES.contains(&status.as_str()) {
        return Err(format!("unknown status {status:?}"));
    }
    if status == "ok" {
        let results = match value.get("results") {
            Some(Value::Arr(items)) => items,
            _ => return Err("ok response must carry a \"results\" array".to_string()),
        };
        for (i, r) in results.iter().enumerate() {
            if u64_field(r, "tuple_id")?.is_none() {
                return Err(format!("results[{i}] is missing \"tuple_id\""));
            }
            if str_field(r, "attribute")?.is_none() {
                return Err(format!("results[{i}] is missing \"attribute\""));
            }
            let prob = match r.get("prob") {
                Some(Value::Num(p)) => *p,
                _ => return Err(format!("results[{i}] is missing \"prob\"")),
            };
            if !(0.0..=1.0).contains(&prob) {
                return Err(format!("results[{i}].prob {prob} outside [0, 1]"));
            }
            if !matches!(r.get("flagged"), Some(Value::Bool(_))) {
                return Err(format!("results[{i}] is missing \"flagged\""));
            }
        }
    } else if !matches!(value.get("error"), Some(Value::Str(_))) {
        return Err(format!("{status} response must carry an \"error\" string"));
    }
    if let Some(provenance) = value.get("provenance") {
        if !matches!(provenance, Value::Obj(_)) {
            return Err("\"provenance\" must be an object".to_string());
        }
        for key in ["model_hash", "model", "version", "kernel_policy"] {
            if str_field(provenance, key)?.is_none() {
                return Err(format!("provenance is missing \"{key}\""));
            }
        }
        if let Some(kp) = str_field(provenance, "kernel_policy")? {
            if kp != "exact" && kp != "fast-math" {
                return Err(format!(
                    "provenance.kernel_policy {kp:?} is not \"exact\" or \"fast-math\""
                ));
            }
        }
        match provenance.get("features") {
            Some(Value::Arr(items)) => {
                if items.iter().any(|f| !matches!(f, Value::Str(_))) {
                    return Err("provenance.features must be strings".to_string());
                }
            }
            _ => return Err("provenance is missing \"features\"".to_string()),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_request() {
        let req = parse_request(
            r#"{"id":"r1","cells":[{"tuple_id":3,"attribute":"v","value":"x"},{"attribute":"w","value":""}]}"#,
        )
        .unwrap();
        assert_eq!(req.id, "r1");
        assert_eq!(req.cells.len(), 2);
        assert_eq!(req.cells[0].tuple_id, 3);
        assert_eq!(req.cells[1].tuple_id, 0, "tuple_id defaults to 0");
        assert_eq!(req.cells[1].value, "");
    }

    #[test]
    fn parse_rejects_malformed_requests() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("[1,2]").is_err());
        assert!(parse_request(r#"{"cells":[{"value":"x"}]}"#).is_err());
        assert!(parse_request(r#"{"cells":[{"attribute":"v"}]}"#).is_err());
        assert!(parse_request(r#"{"cells":{"attribute":"v"}}"#).is_err());
        assert!(parse_request(r#"{"id":7}"#).is_err());
        assert!(
            parse_request(r#"{"cells":[{"attribute":"v","value":"x","tuple_id":-1}]}"#).is_err()
        );
    }

    #[test]
    fn response_round_trips_through_validation() {
        let ok = Response::ok(
            "a".into(),
            vec![CellResult {
                tuple_id: 1,
                attribute: "v".into(),
                prob: 0.25,
                flagged: false,
            }],
        );
        validate_response_line(&ok.to_json_line()).unwrap();
        let err = Response::failed("b".into(), Status::Overloaded, "queue full".into());
        validate_response_line(&err.to_json_line()).unwrap();
    }

    #[test]
    fn validation_rejects_bad_lines() {
        assert!(validate_response_line("{}").is_err());
        assert!(validate_response_line(r#"{"id":"a","status":"nope"}"#).is_err());
        assert!(validate_response_line(r#"{"id":"a","status":"ok"}"#).is_err());
        assert!(validate_response_line(r#"{"id":"a","status":"timeout"}"#).is_err());
        assert!(validate_response_line(
            r#"{"id":"a","status":"ok","results":[{"tuple_id":0,"attribute":"v","prob":1.5,"flagged":true}]}"#
        )
        .is_err());
    }

    #[test]
    fn provenance_round_trips_and_validates() {
        let provenance = Provenance {
            model_hash: "00deadbeef00cafe".into(),
            model: "etsb/vanilla".into(),
            version: "0.1.0".into(),
            kernel_policy: "exact".into(),
            features: vec!["sanitize".into()],
        };
        let line = Response::ok("a".into(), Vec::new())
            .with_provenance(provenance.clone())
            .to_json_line();
        validate_response_line(&line).unwrap();
        assert!(line.contains("\"provenance\""), "{line}");
        assert!(
            line.contains("\"model_hash\":\"00deadbeef00cafe\""),
            "{line}"
        );
        assert!(line.contains("\"kernel_policy\":\"exact\""), "{line}");
        // Unknown kernel policies are rejected: fast/exact conflation is
        // exactly what the field exists to prevent.
        assert!(validate_response_line(
            r#"{"id":"a","status":"ok","results":[],"provenance":{"model_hash":"h","model":"m","version":"v","kernel_policy":"warp","features":[]}}"#
        )
        .is_err());
        let failed = Response::failed("b".into(), Status::Timeout, "expired".into())
            .with_provenance(provenance)
            .to_json_line();
        validate_response_line(&failed).unwrap();
        // Malformed provenance objects are rejected.
        assert!(validate_response_line(
            r#"{"id":"a","status":"ok","results":[],"provenance":{"model":"etsb"}}"#
        )
        .is_err());
        assert!(validate_response_line(
            r#"{"id":"a","status":"ok","results":[],"provenance":"etsb"}"#
        )
        .is_err());
    }

    #[test]
    fn equal_results_serialize_to_equal_bytes() {
        let r = |p: f32| {
            Response::ok(
                "x".into(),
                vec![CellResult {
                    tuple_id: 0,
                    attribute: "v".into(),
                    prob: p,
                    flagged: p >= 0.5,
                }],
            )
            .to_json_line()
        };
        assert_eq!(r(0.123_456_79_f32), r(0.123_456_79_f32));
        assert_ne!(r(0.1), r(0.100_000_01));
    }
}
