//! Minimal HTTP/1.1 front end — enough protocol for `curl` and load
//! generators, nothing more. One short-lived connection per request
//! (`Connection: close`), handled on a scoped thread so many callers can
//! block in the engine simultaneously and coalesce into shared batches.
//!
//! Routes:
//!
//! * `GET /healthz` — liveness probe, always `200 {"status":"ok"}`.
//! * `GET /metrics` — the service metrics registry in Prometheus text
//!   exposition format (version 0.0.4): request/cache counters as
//!   cumulative `_total` series, queue/cache gauges, and latency and
//!   occupancy histograms with cumulative `le` buckets.
//! * `POST /detect` — one request object (the [`crate::protocol`] wire
//!   format) in the body; the response body is the matching response
//!   object. Statuses map to `200` (ok), `400` (bad_request), `503`
//!   (overloaded, shutting_down) and `504` (timeout).

use crate::engine::DetectService;
use crate::protocol::{parse_request, Response, Status};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Largest accepted `POST /detect` body.
const MAX_BODY_BYTES: usize = 16 << 20;

/// Accept loop: serve connections until `stop` becomes true, polling the
/// (non-blocking) listener every few milliseconds so shutdown does not
/// wait for a final connection. Each connection is handled on a scoped
/// thread; the function returns only once all of them finished.
pub fn run(
    service: &DetectService,
    listener: TcpListener,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    std::thread::scope(|scope| {
        loop {
            if stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    scope.spawn(move || {
                        // Connection-level I/O errors only affect that
                        // peer; the accept loop keeps serving.
                        let _ = handle_connection(service, stream);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
    })
}

fn status_line(status: Status) -> (u16, &'static str) {
    match status {
        Status::Ok => (200, "OK"),
        Status::BadRequest => (400, "Bad Request"),
        Status::Overloaded => (503, "Service Unavailable"),
        Status::Timeout => (504, "Gateway Timeout"),
        Status::ShuttingDown => (503, "Service Unavailable"),
    }
}

const JSON_CONTENT_TYPE: &str = "application/json";

fn write_response(
    stream: &mut TcpStream,
    code: u16,
    phrase: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {code} {phrase}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

fn handle_connection(service: &DetectService, stream: TcpStream) -> std::io::Result<()> {
    // The accepted socket may inherit the listener's non-blocking mode.
    stream.set_nonblocking(false)?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut stream = stream;

    let mut request_line = String::new();
    if reader.read_line(&mut request_line)? == 0 {
        return Ok(()); // Peer connected and said nothing.
    }
    let mut parts = request_line.trim_end().splitn(3, ' ');
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }

    match (method, path) {
        ("GET", "/healthz") => write_response(
            &mut stream,
            200,
            "OK",
            JSON_CONTENT_TYPE,
            "{\"status\":\"ok\"}",
        ),
        ("GET", "/metrics") => write_response(
            &mut stream,
            200,
            "OK",
            etsb_obs::expo::CONTENT_TYPE,
            &service.prometheus_text(),
        ),
        ("POST", "/detect") => {
            if content_length > MAX_BODY_BYTES {
                return write_response(
                    &mut stream,
                    413,
                    "Payload Too Large",
                    JSON_CONTENT_TYPE,
                    "{\"error\":\"body too large\"}",
                );
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body)?;
            let text = String::from_utf8_lossy(&body);
            let response = match parse_request(text.trim()) {
                Ok(request) => service.submit(request).wait(),
                Err(e) => Response::failed(String::new(), Status::BadRequest, e),
            };
            let (code, phrase) = status_line(response.status);
            write_response(
                &mut stream,
                code,
                phrase,
                JSON_CONTENT_TYPE,
                &response.to_json_line(),
            )
        }
        _ => write_response(
            &mut stream,
            404,
            "Not Found",
            JSON_CONTENT_TYPE,
            "{\"error\":\"not found\"}",
        ),
    }
}
