//! Resident detection service: keep a trained detector warm in memory
//! and score cells on demand, instead of paying model load + dictionary
//! rebuild on every `etsb detect` invocation.
//!
//! The service is deliberately dependency-light — `std` threads, a
//! `Mutex`/`Condvar` admission queue, and the vendored workspace crates;
//! no async runtime. Three layers:
//!
//! * [`protocol`] — the newline-delimited JSON wire format (requests,
//!   responses, schema validation), shared by both front ends.
//! * [`engine`] — [`engine::DetectService`]: the admission queue that
//!   *coalesces* concurrently arriving requests into one batched forward
//!   pass per worker tick, the shared bounded prediction LRU
//!   ([`etsb_core::PredictCache`]), backpressure, per-request timeouts
//!   and graceful drain.
//! * [`stdio`] / [`http`] — front ends: JSONL over stdin/stdout for
//!   pipelines, and a minimal HTTP/1.1 listener for remote callers.
//!
//! # Why coalescing is safe
//!
//! Inference runs in eval mode, where every layer (BatchNorm included,
//! via running statistics) is row-independent: a cell's probability does
//! not depend on which other cells share its forward pass. Request
//! encoding ([`etsb_core::EncodedDataset::from_request_cells`]) is a
//! pure function of the request alone. Concatenating many requests into
//! one batch therefore changes *throughput only* — the served
//! probabilities are bitwise identical to scoring each request alone,
//! at any worker count and any batch boundary. The same argument lets
//! results be served from a cache keyed by the cell's model inputs.
//! `tests/serve.rs` and the `serve_check` smoke binary assert this end
//! to end.

pub mod engine;
pub mod http;
pub mod protocol;
pub mod stdio;

use std::time::Duration;

/// Tunables for [`engine::DetectService`]. Defaults favour small-model
/// latency; every knob is surfaced as an `etsb serve` flag.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Cell budget per coalesced forward pass. A tick takes whole
    /// requests until adding the next would exceed this (a single
    /// request larger than the budget still runs, alone).
    pub max_batch_cells: usize,
    /// How long a worker tick lingers for more arrivals once at least
    /// one request is queued, trading latency for batch occupancy.
    pub linger: Duration,
    /// Admission-queue bound in cells; requests that would overflow it
    /// are refused with `overloaded` (backpressure, not buffering).
    pub queue_capacity_cells: usize,
    /// Queue residency deadline; requests still queued past it are
    /// answered `timeout` instead of being scored.
    pub request_timeout: Duration,
    /// Bound of the shared prediction LRU, in distinct cells. Zero
    /// disables caching.
    pub cache_capacity: usize,
    /// A cell is flagged when its probability reaches this threshold.
    pub prob_threshold: f32,
    /// Score with the FastMath inference kernels
    /// ([`etsb_core::KernelPolicy::FastMath`]) instead of the exact
    /// bitwise path. The active policy is recorded in every response's
    /// `provenance.kernel_policy`, so exact and fast results are never
    /// conflated by byte-equality checks downstream.
    pub fast_math: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch_cells: 256,
            linger: Duration::from_millis(2),
            queue_capacity_cells: 4096,
            request_timeout: Duration::from_secs(1),
            cache_capacity: 65536,
            prob_threshold: 0.5,
            fast_math: false,
        }
    }
}
