//! # etsb-table
//!
//! A deliberately small, string-typed dataframe layer plus the ETSB-RNN
//! data-preparation pipeline (§4.1 of Holzer & Stockinger, EDBT 2022).
//!
//! The paper's reference implementation leans on pandas for four steps:
//! loading the dirty/clean CSV pair, a structure transformation (trimming,
//! id column, column renaming), the wide→long *merge* that produces one
//! row per cell with its correctness label, and dictionary generation
//! (character and attribute indexes). This crate reimplements exactly
//! those steps:
//!
//! * [`Table`] — a wide-format table of string cells,
//! * [`csv`] — RFC-4180-style CSV reading and writing,
//! * [`CellFrame`] / [`Cell`] — the long-format merge of a dirty/clean
//!   pair, carrying `value_x`, `value_y`, `label`, `empty`, `concat` and
//!   `length_norm` exactly as Figure 3 describes,
//! * [`CharIndex`] / [`AttrIndex`] — the value and attribute dictionaries
//!   of step (4), with index 0 reserved for padding,
//! * [`scan`] — the streaming counterpart: chunk-at-a-time merge over a
//!   [`scan::RowSource`] with O(chunk) memory and bit-identical cells,
//! * [`stats`] — the dataset statistics reported in the paper's Table 2.

#![warn(missing_docs)]

mod cellframe;
mod dict;
mod error;
mod table;

pub mod csv;
pub mod scan;
pub mod stats;

pub use cellframe::{normalize_value, normalize_value_into, Cell, CellFrame, MAX_VALUE_LEN};
pub use dict::{AttrIndex, CharIndex, CharIndexBuilder, PAD_INDEX};
pub use error::TableError;
pub use table::Table;
