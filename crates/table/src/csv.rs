//! Minimal RFC-4180-style CSV reading and writing.
//!
//! Supports quoted fields, embedded commas, escaped quotes (`""`) and
//! embedded newlines inside quoted fields — everything the benchmark
//! datasets (Movies titles with commas, Rayyan abstracts with quotes)
//! require. The first record is always treated as the header.
//!
//! Reading is incremental: [`CsvReader`] pulls one record at a time from
//! any [`BufRead`] and parses it into a reusable [`RecordBuf`], so a
//! million-row file is never resident as a single `String` and
//! steady-state parsing performs no heap allocations. [`parse`] and
//! [`read_file`] are thin wrappers over the same state machine.

use crate::{Table, TableError};
use std::io::BufRead;
use std::path::Path;

/// Parse CSV text into a [`Table`]. The first record is the header.
pub fn parse(text: &str) -> Result<Table, TableError> {
    read_table(text.as_bytes())
}

/// Read and parse a CSV file incrementally (the file is never resident
/// as one string).
pub fn read_file(path: impl AsRef<Path>) -> Result<Table, TableError> {
    let file = std::fs::File::open(path)?;
    read_table(std::io::BufReader::new(file))
}

/// Parse a whole table from any buffered reader. The first record is the
/// header.
pub fn read_table(input: impl BufRead) -> Result<Table, TableError> {
    let mut reader = CsvReader::new(input);
    let mut record = RecordBuf::new();
    if reader.read_record(&mut record)?.is_none() {
        return Err(TableError::Csv {
            line: 1,
            message: "empty input".into(),
        });
    }
    let mut table = Table::new(record.to_vec());
    let width = table.n_cols();
    while let Some(line) = reader.read_record(&mut record)? {
        if record.len() != width {
            return Err(TableError::RaggedRow {
                line,
                expected: width,
                found: record.len(),
            });
        }
        table.push_row(record.to_vec());
    }
    Ok(table)
}

/// Serialize a [`Table`] to CSV text (header first, `\n` line endings).
pub fn to_string(table: &Table) -> String {
    let mut out = String::new();
    write_record(&mut out, table.columns().iter().map(String::as_str));
    for row in table.iter_rows() {
        write_record(&mut out, row.iter().map(String::as_str));
    }
    out
}

/// Write a [`Table`] to a CSV file.
pub fn write_file(table: &Table, path: impl AsRef<Path>) -> Result<(), TableError> {
    std::fs::write(path, to_string(table))?;
    Ok(())
}

fn write_record<'a>(out: &mut String, fields: impl Iterator<Item = &'a str>) {
    let fields: Vec<&str> = fields.collect();
    // A record that is a single empty field would serialize to a blank
    // line, which parsers (including this one) skip; quote it instead.
    if fields == [""] {
        out.push_str("\"\"\n");
        return;
    }
    let mut first = true;
    for field in fields {
        if !first {
            out.push(',');
        }
        first = false;
        if field.contains([',', '"', '\n', '\r']) {
            out.push('"');
            for ch in field.chars() {
                if ch == '"' {
                    out.push('"');
                }
                out.push(ch);
            }
            out.push('"');
        } else {
            out.push_str(field);
        }
    }
    out.push('\n');
}

/// A reusable buffer holding the fields of one CSV record.
///
/// Field strings are retained (cleared, not dropped) between records, so
/// once the buffer has grown to the widest/longest record seen, parsing
/// further records performs no heap allocations.
#[derive(Debug, Default)]
pub struct RecordBuf {
    fields: Vec<String>,
    len: usize,
}

impl RecordBuf {
    /// An empty record buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The fields of the most recently parsed record.
    pub fn fields(&self) -> &[String] {
        &self.fields[..self.len]
    }

    /// Number of fields in the current record.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no record.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copy the current record out as owned strings.
    pub fn to_vec(&self) -> Vec<String> {
        self.fields().to_vec()
    }

    /// Reset to a single empty field (every record has at least one).
    fn start(&mut self) {
        self.len = 0;
        self.open_field();
    }

    /// Terminate the current field and open the next one.
    fn open_field(&mut self) -> &mut String {
        if self.len == self.fields.len() {
            self.fields.push(String::new());
        }
        self.fields[self.len].clear();
        self.len += 1;
        &mut self.fields[self.len - 1]
    }

    /// The field currently being filled.
    fn current(&mut self) -> &mut String {
        let i = self.len - 1;
        &mut self.fields[i]
    }
}

/// Incremental CSV record reader over any [`BufRead`].
///
/// Reads one physical line at a time (continuing across lines while a
/// quoted field is open) and parses it into a caller-supplied
/// [`RecordBuf`], so peak memory is one record — never the whole file.
#[derive(Debug)]
pub struct CsvReader<R> {
    input: R,
    /// Reusable buffer holding the raw bytes of one physical line.
    line_buf: String,
    /// 1-based number of the next physical line to be read.
    next_line: usize,
}

impl<R: BufRead> CsvReader<R> {
    /// Wrap a buffered reader positioned at the start of the input.
    pub fn new(input: R) -> Self {
        Self {
            input,
            line_buf: String::new(),
            next_line: 1,
        }
    }

    /// Read the next record into `record`, returning the 1-based line it
    /// started on, or `None` at end of input. Blank lines are skipped.
    ///
    /// Grammar notes (RFC 4180 with the liberties the benchmark datasets
    /// need): a quote may only open at the start of a field; `""` inside
    /// a quoted field is a literal quote; after a closing quote only a
    /// comma, a line ending or end of input may follow; a bare `\r` that
    /// is not part of a `\r\n` line ending is field data, not a
    /// terminator.
    pub fn read_record(&mut self, record: &mut RecordBuf) -> Result<Option<usize>, TableError> {
        'next_record: loop {
            let start_line = self.next_line;
            record.start();
            let mut in_quotes = false;
            let mut after_close = false;
            let mut any_content = false;
            let mut started = false;
            loop {
                self.line_buf.clear();
                let n = self
                    .input
                    .read_line(&mut self.line_buf)
                    .map_err(TableError::from)?;
                if n == 0 {
                    if in_quotes {
                        return Err(TableError::Csv {
                            line: self.next_line,
                            message: "unterminated quoted field".into(),
                        });
                    }
                    if started
                        && (any_content || record.len() > 1 || !record.fields()[0].is_empty())
                    {
                        return Ok(Some(start_line));
                    }
                    return Ok(None);
                }
                started = true;
                let line = self.next_line;
                let terminated = self.line_buf.ends_with('\n');
                if terminated {
                    self.next_line += 1;
                }
                let mut chars = self.line_buf.chars().peekable();
                while let Some(ch) = chars.next() {
                    if in_quotes {
                        if ch == '"' {
                            if chars.peek() == Some(&'"') {
                                chars.next();
                                record.current().push('"');
                            } else {
                                in_quotes = false;
                                after_close = true;
                            }
                        } else {
                            record.current().push(ch);
                        }
                        continue;
                    }
                    match ch {
                        '"' => {
                            if after_close || !record.current().is_empty() {
                                return Err(TableError::Csv {
                                    line,
                                    message: "quote inside unquoted field".into(),
                                });
                            }
                            in_quotes = true;
                            any_content = true;
                        }
                        ',' => {
                            record.open_field();
                            after_close = false;
                            any_content = true;
                        }
                        '\r' if chars.peek() == Some(&'\n') => {
                            // CRLF: swallow the CR; the LF terminates the
                            // record on the next iteration.
                        }
                        '\n' => {
                            // End of record (the chunk's final character).
                        }
                        _ => {
                            if after_close {
                                return Err(TableError::Csv {
                                    line,
                                    message: "unexpected text after closing quote".into(),
                                });
                            }
                            record.current().push(ch);
                            any_content = true;
                        }
                    }
                }
                if !in_quotes && terminated {
                    if !any_content && record.len() == 1 && record.fields()[0].is_empty() {
                        // Blank line: skip it and look for the next record.
                        continue 'next_record;
                    }
                    return Ok(Some(start_line));
                }
                // Still inside a quoted field (the record spans lines), or
                // the input ended without a trailing newline — keep going.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_round_trip() {
        let mut t = Table::with_columns(&["a", "b"]);
        t.push_row_strs(&["1", "hello"]);
        t.push_row_strs(&["2", "world"]);
        let text = to_string(&t);
        assert_eq!(parse(&text).unwrap(), t);
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let mut t = Table::with_columns(&["title", "n"]);
        t.push_row_strs(&["Frankie, and \"Johnny\"", "1"]);
        t.push_row_strs(&["line\nbreak", "2"]);
        let text = to_string(&t);
        assert_eq!(parse(&text).unwrap(), t);
    }

    #[test]
    fn parse_hand_written_csv() {
        let t = parse("a,b\n\"x,y\",2\n\"he said \"\"hi\"\"\",3\n").unwrap();
        assert_eq!(t.cell(0, 0), "x,y");
        assert_eq!(t.cell(1, 0), "he said \"hi\"");
    }

    #[test]
    fn empty_fields_survive() {
        let t = parse("a,b,c\n,,\n1,,3\n").unwrap();
        assert_eq!(t.row(0), &["", "", ""]);
        assert_eq!(t.row(1), &["1", "", "3"]);
    }

    #[test]
    fn crlf_line_endings() {
        let t = parse("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(t.shape(), (1, 2));
        assert_eq!(t.cell(0, 1), "2");
    }

    #[test]
    fn missing_trailing_newline() {
        let t = parse("a,b\n1,2").unwrap();
        assert_eq!(t.shape(), (1, 2));
    }

    #[test]
    fn ragged_row_is_an_error() {
        let err = parse("a,b\n1\n").unwrap_err();
        assert!(matches!(
            err,
            TableError::RaggedRow {
                line: 2,
                expected: 2,
                found: 1
            }
        ));
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        assert!(matches!(parse("a\n\"oops\n"), Err(TableError::Csv { .. })));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(parse("").is_err());
    }

    #[test]
    fn unicode_cells_round_trip() {
        let mut t = Table::with_columns(&["city"]);
        t.push_row_strs(&["Zürich"]);
        t.push_row_strs(&["東京"]);
        assert_eq!(parse(&to_string(&t)).unwrap(), t);
    }

    #[test]
    fn bare_cr_outside_quotes_is_field_data() {
        // A \r not followed by \n is not a line ending; it used to be
        // silently dropped.
        let t = parse("a\nx\rb\n").unwrap();
        assert_eq!(t.cell(0, 0), "x\rb");
        // And it round-trips because the writer quotes it.
        assert_eq!(parse(&to_string(&t)).unwrap(), t);
    }

    #[test]
    fn text_after_closing_quote_is_an_error() {
        // Used to be silently appended to the field.
        let err = parse("a\n\"x\"y\n").unwrap_err();
        assert!(matches!(err, TableError::Csv { line: 2, .. }));
    }

    #[test]
    fn quote_reopened_after_close_is_an_error() {
        let err = parse("a\n\"x\"\"y\"z\n").unwrap_err();
        assert!(matches!(err, TableError::Csv { line: 2, .. }));
    }

    #[test]
    fn blank_lines_are_skipped_and_line_numbers_stay_accurate() {
        let t = parse("a\n\n1\n\n2\n").unwrap();
        assert_eq!(t.shape(), (2, 1));
        let err = parse("a,b\n\n1\n").unwrap_err();
        assert!(matches!(err, TableError::RaggedRow { line: 3, .. }));
    }

    #[test]
    fn incremental_reader_yields_records_with_start_lines() {
        let text = "a,b\n\"multi\nline\",2\n3,4\n";
        let mut reader = CsvReader::new(std::io::BufReader::with_capacity(4, text.as_bytes()));
        let mut record = RecordBuf::new();
        assert_eq!(reader.read_record(&mut record).unwrap(), Some(1));
        assert_eq!(record.fields(), ["a", "b"]);
        assert_eq!(reader.read_record(&mut record).unwrap(), Some(2));
        assert_eq!(record.fields(), ["multi\nline", "2"]);
        assert_eq!(reader.read_record(&mut record).unwrap(), Some(4));
        assert_eq!(record.fields(), ["3", "4"]);
        assert_eq!(reader.read_record(&mut record).unwrap(), None);
    }

    #[test]
    fn record_buffer_is_reused_across_records() {
        let text = "a,b\n1,2\n3,4\n";
        let mut reader = CsvReader::new(text.as_bytes());
        let mut record = RecordBuf::new();
        let mut last = Vec::new();
        while reader.read_record(&mut record).unwrap().is_some() {
            last = record.to_vec();
        }
        // The same buffer served every record; the last one is intact.
        assert_eq!(last, ["3", "4"]);
    }
}
