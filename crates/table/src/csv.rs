//! Minimal RFC-4180-style CSV reading and writing.
//!
//! Supports quoted fields, embedded commas, escaped quotes (`""`) and
//! embedded newlines inside quoted fields — everything the benchmark
//! datasets (Movies titles with commas, Rayyan abstracts with quotes)
//! require. The first record is always treated as the header.

use crate::{Table, TableError};
use std::path::Path;

/// Parse CSV text into a [`Table`]. The first record is the header.
pub fn parse(text: &str) -> Result<Table, TableError> {
    let records = parse_records(text)?;
    let mut iter = records.into_iter();
    let (header, _) = iter.next().ok_or(TableError::Csv {
        line: 1,
        message: "empty input".into(),
    })?;
    let mut table = Table::new(header);
    let width = table.n_cols();
    for (record, line) in iter {
        if record.len() != width {
            return Err(TableError::RaggedRow {
                line,
                expected: width,
                found: record.len(),
            });
        }
        table.push_row(record);
    }
    Ok(table)
}

/// Read and parse a CSV file.
pub fn read_file(path: impl AsRef<Path>) -> Result<Table, TableError> {
    let text = std::fs::read_to_string(path)?;
    parse(&text)
}

/// Serialize a [`Table`] to CSV text (header first, `\n` line endings).
pub fn to_string(table: &Table) -> String {
    let mut out = String::new();
    write_record(&mut out, table.columns().iter().map(String::as_str));
    for row in table.iter_rows() {
        write_record(&mut out, row.iter().map(String::as_str));
    }
    out
}

/// Write a [`Table`] to a CSV file.
pub fn write_file(table: &Table, path: impl AsRef<Path>) -> Result<(), TableError> {
    std::fs::write(path, to_string(table))?;
    Ok(())
}

fn write_record<'a>(out: &mut String, fields: impl Iterator<Item = &'a str>) {
    let fields: Vec<&str> = fields.collect();
    // A record that is a single empty field would serialize to a blank
    // line, which parsers (including this one) skip; quote it instead.
    if fields == [""] {
        out.push_str("\"\"\n");
        return;
    }
    let mut first = true;
    for field in fields {
        if !first {
            out.push(',');
        }
        first = false;
        if field.contains([',', '"', '\n', '\r']) {
            out.push('"');
            for ch in field.chars() {
                if ch == '"' {
                    out.push('"');
                }
                out.push(ch);
            }
            out.push('"');
        } else {
            out.push_str(field);
        }
    }
    out.push('\n');
}

/// State machine CSV record parser. Returns each record with the 1-based
/// line number it started on (for error messages).
#[allow(clippy::type_complexity)]
fn parse_records(text: &str) -> Result<Vec<(Vec<String>, usize)>, TableError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut record_start_line = 1usize;
    let mut chars = text.chars().peekable();
    let mut any_content = false;

    while let Some(ch) = chars.next() {
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push('\n');
                }
                _ => field.push(ch),
            }
            continue;
        }
        match ch {
            '"' => {
                if field.is_empty() {
                    in_quotes = true;
                    any_content = true;
                } else {
                    return Err(TableError::Csv {
                        line,
                        message: "quote inside unquoted field".into(),
                    });
                }
            }
            ',' => {
                record.push(std::mem::take(&mut field));
                any_content = true;
            }
            '\r' => {
                // Swallow; a following \n terminates the record.
            }
            '\n' => {
                if any_content || !field.is_empty() || !record.is_empty() {
                    record.push(std::mem::take(&mut field));
                    records.push((std::mem::take(&mut record), record_start_line));
                }
                line += 1;
                record_start_line = line;
                any_content = false;
            }
            _ => {
                field.push(ch);
                any_content = true;
            }
        }
    }
    if in_quotes {
        return Err(TableError::Csv {
            line,
            message: "unterminated quoted field".into(),
        });
    }
    if any_content || !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push((record, record_start_line));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_round_trip() {
        let mut t = Table::with_columns(&["a", "b"]);
        t.push_row_strs(&["1", "hello"]);
        t.push_row_strs(&["2", "world"]);
        let text = to_string(&t);
        assert_eq!(parse(&text).unwrap(), t);
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let mut t = Table::with_columns(&["title", "n"]);
        t.push_row_strs(&["Frankie, and \"Johnny\"", "1"]);
        t.push_row_strs(&["line\nbreak", "2"]);
        let text = to_string(&t);
        assert_eq!(parse(&text).unwrap(), t);
    }

    #[test]
    fn parse_hand_written_csv() {
        let t = parse("a,b\n\"x,y\",2\n\"he said \"\"hi\"\"\",3\n").unwrap();
        assert_eq!(t.cell(0, 0), "x,y");
        assert_eq!(t.cell(1, 0), "he said \"hi\"");
    }

    #[test]
    fn empty_fields_survive() {
        let t = parse("a,b,c\n,,\n1,,3\n").unwrap();
        assert_eq!(t.row(0), &["", "", ""]);
        assert_eq!(t.row(1), &["1", "", "3"]);
    }

    #[test]
    fn crlf_line_endings() {
        let t = parse("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(t.shape(), (1, 2));
        assert_eq!(t.cell(0, 1), "2");
    }

    #[test]
    fn missing_trailing_newline() {
        let t = parse("a,b\n1,2").unwrap();
        assert_eq!(t.shape(), (1, 2));
    }

    #[test]
    fn ragged_row_is_an_error() {
        let err = parse("a,b\n1\n").unwrap_err();
        assert!(matches!(
            err,
            TableError::RaggedRow {
                line: 2,
                expected: 2,
                found: 1
            }
        ));
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        assert!(matches!(parse("a\n\"oops\n"), Err(TableError::Csv { .. })));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(parse("").is_err());
    }

    #[test]
    fn unicode_cells_round_trip() {
        let mut t = Table::with_columns(&["city"]);
        t.push_row_strs(&["Zürich"]);
        t.push_row_strs(&["東京"]);
        assert_eq!(parse(&to_string(&t)).unwrap(), t);
    }
}
