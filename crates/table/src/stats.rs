//! Dataset statistics, as reported in the paper's Table 2.

use crate::CellFrame;
use serde::Serialize;

/// Summary statistics of a dirty/clean dataset pair.
#[derive(Clone, Debug, Serialize)]
pub struct DatasetStats {
    /// Number of tuples (wide-table rows).
    pub n_rows: usize,
    /// Number of attributes.
    pub n_cols: usize,
    /// Fraction of erroneous cells.
    pub error_rate: f64,
    /// Distinct characters across dirty values (value-dictionary size).
    pub distinct_chars: usize,
    /// Number of cells whose dirty value is empty.
    pub empty_cells: usize,
    /// Longest dirty value (post-truncation), in characters.
    pub max_value_len: usize,
}

impl DatasetStats {
    /// Compute statistics for a merged frame.
    pub fn of(frame: &CellFrame) -> Self {
        let empty_cells = frame.cells().iter().filter(|c| c.empty).count();
        let max_value_len = frame
            .cells()
            .iter()
            .map(|c| c.value_x.chars().count())
            .max()
            .unwrap_or(0);
        Self {
            n_rows: frame.n_tuples(),
            n_cols: frame.n_attrs(),
            error_rate: frame.error_rate(),
            distinct_chars: frame.distinct_chars(),
            empty_cells,
            max_value_len,
        }
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x{} cells, error rate {:.2}, {} distinct chars, {} empty cells, max len {}",
            self.n_rows,
            self.n_cols,
            self.error_rate,
            self.distinct_chars,
            self.empty_cells,
            self.max_value_len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Table;

    #[test]
    fn stats_of_small_frame() {
        let mut d = Table::with_columns(&["a", "b"]);
        d.push_row_strs(&["xy", ""]);
        d.push_row_strs(&["x", "zzz"]);
        let mut c = Table::with_columns(&["a", "b"]);
        c.push_row_strs(&["xy", "q"]);
        c.push_row_strs(&["x", "zzz"]);
        let frame = CellFrame::merge(&d, &c).unwrap();
        let s = DatasetStats::of(&frame);
        assert_eq!(s.n_rows, 2);
        assert_eq!(s.n_cols, 2);
        assert_eq!(s.error_rate, 0.25);
        assert_eq!(s.distinct_chars, 3); // x, y, z
        assert_eq!(s.empty_cells, 1);
        assert_eq!(s.max_value_len, 3);
    }
}
