//! Chunked, shard-at-a-time scanning of a dirty/clean row stream.
//!
//! The in-memory path materializes the whole table ([`Table`] →
//! [`CellFrame`]) before anything is encoded; peak memory is O(table).
//! This module is the streaming alternative: a [`RowSource`] yields raw
//! rows one at a time (from memory, from CSV files, or from a synthetic
//! generator), [`scan_stats`] makes one cheap pass to collect the two
//! pieces of *global* state the per-cell features need (per-attribute
//! maximum normalized value lengths and, optionally, the character
//! dictionary), and [`FrameScan`] then re-reads the source in bounded
//! [`ChunkedFrame`]s whose cells are bit-identical to the corresponding
//! slice of `CellFrame::merge` — same normalization, same labels, same
//! `length_norm` — with stable global `tuple_id`s.
//!
//! All buffers are reused across chunks, so steady-state scanning
//! performs no heap allocations and peak memory is
//! O(`chunk_rows` × attrs), independent of the number of rows.

use crate::cellframe::{normalize_value_into, Cell};
use crate::csv::{CsvReader, RecordBuf};
use crate::dict::CharIndexBuilder;
use crate::{CharIndex, Table, TableError};
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};

/// A resettable stream of raw dirty/clean row pairs.
///
/// Implementations fill the caller's row buffers (reusing their string
/// capacity) instead of returning owned rows, so a full scan does no
/// steady-state allocation. For sources without ground truth (the apply
/// path, synthetic load generators) the clean row simply repeats the
/// dirty row, which reproduces the self-merge the in-memory path uses.
pub trait RowSource {
    /// Column names, in order. Fixed for the lifetime of the source.
    fn columns(&self) -> &[String];

    /// Fill `dirty` and `clean` with the next row's raw values.
    /// Returns `false` at end of input.
    fn next_row(
        &mut self,
        dirty: &mut Vec<String>,
        clean: &mut Vec<String>,
    ) -> Result<bool, TableError>;

    /// Rewind to the first data row for another pass.
    fn reset(&mut self) -> Result<(), TableError>;
}

/// Copy `fields` into `row`, reusing the row's string capacity.
pub fn fill_row(row: &mut Vec<String>, fields: &[String]) {
    row.resize_with(fields.len(), String::new);
    for (dst, src) in row.iter_mut().zip(fields) {
        dst.clear();
        dst.push_str(src);
    }
}

/// [`RowSource`] over in-memory [`Table`]s (the bridge between the legacy
/// path and the streaming one, and the reference in equivalence tests).
#[derive(Debug)]
pub struct TableSource<'a> {
    dirty: &'a Table,
    clean: &'a Table,
    next: usize,
}

impl<'a> TableSource<'a> {
    /// Stream a dirty/clean pair. Errors when the shapes differ, exactly
    /// like [`CellFrame::merge`](crate::CellFrame::merge).
    pub fn pair(dirty: &'a Table, clean: &'a Table) -> Result<Self, TableError> {
        if dirty.shape() != clean.shape() {
            return Err(TableError::ShapeMismatch {
                dirty: dirty.shape(),
                clean: clean.shape(),
            });
        }
        Ok(Self {
            dirty,
            clean,
            next: 0,
        })
    }

    /// Stream a dirty table with itself as ground truth (no labels).
    pub fn dirty_only(dirty: &'a Table) -> Self {
        Self {
            dirty,
            clean: dirty,
            next: 0,
        }
    }
}

impl RowSource for TableSource<'_> {
    fn columns(&self) -> &[String] {
        self.clean.columns()
    }

    fn next_row(
        &mut self,
        dirty: &mut Vec<String>,
        clean: &mut Vec<String>,
    ) -> Result<bool, TableError> {
        if self.next >= self.dirty.n_rows() {
            return Ok(false);
        }
        fill_row(dirty, self.dirty.row(self.next));
        fill_row(clean, self.clean.row(self.next));
        self.next += 1;
        Ok(true)
    }

    fn reset(&mut self) -> Result<(), TableError> {
        self.next = 0;
        Ok(())
    }
}

/// [`RowSource`] over on-disk CSV files, read incrementally via
/// [`CsvReader`] — the file is never resident as a whole.
#[derive(Debug)]
pub struct CsvSource {
    dirty_path: PathBuf,
    clean_path: Option<PathBuf>,
    columns: Vec<String>,
    dirty: CsvReader<BufReader<File>>,
    clean: Option<CsvReader<BufReader<File>>>,
    dirty_rec: RecordBuf,
    clean_rec: RecordBuf,
}

impl CsvSource {
    /// Open a dirty CSV and optionally its clean counterpart. Headers are
    /// read eagerly; the clean header names win (mirroring
    /// `CellFrame::merge`, where the paper renames the dirty header to
    /// the clean one) and both files must have the same width.
    pub fn open(
        dirty_path: impl AsRef<Path>,
        clean_path: Option<&Path>,
    ) -> Result<Self, TableError> {
        let mut source = Self {
            dirty_path: dirty_path.as_ref().to_path_buf(),
            clean_path: clean_path.map(Path::to_path_buf),
            columns: Vec::new(),
            dirty: Self::reader(dirty_path.as_ref())?,
            clean: None,
            dirty_rec: RecordBuf::new(),
            clean_rec: RecordBuf::new(),
        };
        source.reset()?;
        Ok(source)
    }

    fn reader(path: &Path) -> Result<CsvReader<BufReader<File>>, TableError> {
        Ok(CsvReader::new(BufReader::new(File::open(path)?)))
    }

    fn header(
        reader: &mut CsvReader<BufReader<File>>,
        record: &mut RecordBuf,
    ) -> Result<Vec<String>, TableError> {
        if reader.read_record(record)?.is_none() {
            return Err(TableError::Csv {
                line: 1,
                message: "empty input".into(),
            });
        }
        Ok(record.to_vec())
    }
}

impl RowSource for CsvSource {
    fn columns(&self) -> &[String] {
        &self.columns
    }

    fn next_row(
        &mut self,
        dirty: &mut Vec<String>,
        clean: &mut Vec<String>,
    ) -> Result<bool, TableError> {
        let width = self.columns.len();
        let Some(line) = self.dirty.read_record(&mut self.dirty_rec)? else {
            if let Some(reader) = self.clean.as_mut() {
                if reader.read_record(&mut self.clean_rec)?.is_some() {
                    return Err(TableError::Csv {
                        line: 0,
                        message: "clean file has more rows than dirty".into(),
                    });
                }
            }
            return Ok(false);
        };
        if self.dirty_rec.len() != width {
            return Err(TableError::RaggedRow {
                line,
                expected: width,
                found: self.dirty_rec.len(),
            });
        }
        fill_row(dirty, self.dirty_rec.fields());
        if let Some(reader) = self.clean.as_mut() {
            let Some(clean_line) = reader.read_record(&mut self.clean_rec)? else {
                return Err(TableError::Csv {
                    line,
                    message: "dirty file has more rows than clean".into(),
                });
            };
            if self.clean_rec.len() != width {
                return Err(TableError::RaggedRow {
                    line: clean_line,
                    expected: width,
                    found: self.clean_rec.len(),
                });
            }
            fill_row(clean, self.clean_rec.fields());
        } else {
            fill_row(clean, self.dirty_rec.fields());
        }
        Ok(true)
    }

    fn reset(&mut self) -> Result<(), TableError> {
        self.dirty = Self::reader(&self.dirty_path)?;
        let dirty_header = Self::header(&mut self.dirty, &mut self.dirty_rec)?;
        self.clean = match &self.clean_path {
            Some(path) => {
                let mut reader = Self::reader(path)?;
                let clean_header = Self::header(&mut reader, &mut self.clean_rec)?;
                if clean_header.len() != dirty_header.len() {
                    return Err(TableError::Csv {
                        line: 1,
                        message: format!(
                            "dirty/clean header width mismatch: {} vs {}",
                            dirty_header.len(),
                            clean_header.len()
                        ),
                    });
                }
                self.columns = clean_header;
                Some(reader)
            }
            None => {
                self.columns = dirty_header;
                None
            }
        };
        Ok(())
    }
}

/// Global per-attribute statistics from one streaming pass: everything
/// the chunked encoder needs beyond the dictionaries themselves.
#[derive(Clone, Debug)]
pub struct ScanStats {
    /// Number of data rows in the source.
    pub n_rows: usize,
    /// Per-attribute maximum normalized dirty-value length in characters
    /// — the `length_norm` denominators of `CellFrame::merge`.
    pub max_len: Vec<usize>,
}

/// One cheap pass over the source: row count, per-attribute maxima and
/// the incrementally built character dictionary. The source is reset
/// afterwards, ready for the chunked encode pass.
///
/// The returned [`CharIndex`] is identical to
/// [`CharIndex::build`](crate::CharIndex::build) on the fully
/// materialized frame: both observe the normalized dirty values in
/// row-major order (see [`CharIndexBuilder`]).
pub fn scan_stats<S: RowSource + ?Sized>(
    source: &mut S,
) -> Result<(ScanStats, CharIndex), TableError> {
    let n_cols = source.columns().len();
    let mut max_len = vec![0usize; n_cols];
    let mut builder = CharIndexBuilder::new();
    let mut dirty: Vec<String> = Vec::new();
    let mut clean: Vec<String> = Vec::new();
    let mut scratch = String::new();
    let mut n_rows = 0usize;
    while source.next_row(&mut dirty, &mut clean)? {
        for (raw, slot) in dirty.iter().zip(max_len.iter_mut()) {
            normalize_value_into(raw, &mut scratch);
            *slot = (*slot).max(scratch.chars().count());
            builder.observe(&scratch);
        }
        n_rows += 1;
    }
    source.reset()?;
    Ok((ScanStats { n_rows, max_len }, builder.finish()))
}

/// A bounded, reusable window of merged cells: the streaming counterpart
/// of [`CellFrame`](crate::CellFrame). Cell structs and their strings are
/// recycled between chunks, so refilling a chunk does no steady-state
/// allocation.
#[derive(Debug, Default)]
pub struct ChunkedFrame {
    first_tuple: usize,
    n_rows: usize,
    n_attrs: usize,
    len: usize,
    cells: Vec<Cell>,
}

impl ChunkedFrame {
    /// An empty chunk buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Global tuple id of the first row in this chunk.
    pub fn first_tuple(&self) -> usize {
        self.first_tuple
    }

    /// Number of rows currently in the chunk.
    pub fn n_tuples(&self) -> usize {
        self.n_rows
    }

    /// Number of attributes per row.
    pub fn n_attrs(&self) -> usize {
        self.n_attrs
    }

    /// The chunk's cells, row-major, with **global** `tuple_id`s — the
    /// exact slice `CellFrame::merge(..).cells()` would hold at
    /// `[first_tuple * n_attrs ..][.. n_tuples * n_attrs]`.
    pub fn cells(&self) -> &[Cell] {
        &self.cells[..self.len]
    }

    /// Resident heap footprint of the chunk buffer in bytes (cell structs
    /// plus their string capacities) — the peak-memory proxy reported by
    /// the streaming gauges.
    pub fn resident_bytes(&self) -> usize {
        let strings: usize = self
            .cells
            .iter()
            .map(|c| c.value_x.capacity() + c.value_y.capacity())
            .sum();
        self.cells.capacity() * std::mem::size_of::<Cell>() + strings
    }

    fn begin(&mut self, first_tuple: usize, n_attrs: usize) {
        self.first_tuple = first_tuple;
        self.n_attrs = n_attrs;
        self.n_rows = 0;
        self.len = 0;
    }

    fn push_row(&mut self, tuple_id: usize, dirty: &[String], clean: &[String], max_len: &[usize]) {
        for attr in 0..self.n_attrs {
            if self.len == self.cells.len() {
                self.cells.push(Cell {
                    tuple_id: 0,
                    attr: 0,
                    value_x: String::new(),
                    value_y: String::new(),
                    label: false,
                    empty: true,
                    length_norm: 0.0,
                });
            }
            let cell = &mut self.cells[self.len];
            self.len += 1;
            normalize_value_into(&dirty[attr], &mut cell.value_x);
            normalize_value_into(&clean[attr], &mut cell.value_y);
            cell.tuple_id = tuple_id;
            cell.attr = attr;
            cell.label = cell.value_x != cell.value_y;
            cell.empty = cell.value_x.is_empty();
            let len = cell.value_x.chars().count();
            let col_max = max_len[attr];
            cell.length_norm = if col_max == 0 {
                0.0
            } else {
                len as f32 / col_max as f32
            };
        }
        self.n_rows += 1;
    }
}

/// Chunk-at-a-time iterator over a [`RowSource`]: yields successive
/// [`ChunkedFrame`]s of at most `chunk_rows` rows with stable global
/// tuple ids.
#[derive(Debug)]
pub struct FrameScan<S> {
    source: S,
    chunk_rows: usize,
    max_len: Vec<usize>,
    next_tuple: usize,
    dirty_row: Vec<String>,
    clean_row: Vec<String>,
}

impl<S: RowSource> FrameScan<S> {
    /// Start a chunked pass. `max_len` are the global per-attribute
    /// maxima from [`scan_stats`] (or from a persisted/in-memory frame).
    ///
    /// # Panics
    /// If `chunk_rows` is 0.
    pub fn new(source: S, max_len: Vec<usize>, chunk_rows: usize) -> Self {
        assert!(chunk_rows > 0, "FrameScan: chunk_rows must be positive");
        assert_eq!(
            max_len.len(),
            source.columns().len(),
            "FrameScan: max_len width must match the source columns"
        );
        Self {
            source,
            chunk_rows,
            max_len,
            next_tuple: 0,
            dirty_row: Vec::new(),
            clean_row: Vec::new(),
        }
    }

    /// Column names of the underlying source.
    pub fn columns(&self) -> &[String] {
        self.source.columns()
    }

    /// The global per-attribute maxima this scan normalizes against.
    pub fn max_len(&self) -> &[usize] {
        &self.max_len
    }

    /// Fill `chunk` with the next window of rows. Returns `false` when
    /// the source is exhausted (the chunk is then empty).
    pub fn next_chunk(&mut self, chunk: &mut ChunkedFrame) -> Result<bool, TableError> {
        chunk.begin(self.next_tuple, self.source.columns().len());
        for _ in 0..self.chunk_rows {
            if !self
                .source
                .next_row(&mut self.dirty_row, &mut self.clean_row)?
            {
                break;
            }
            chunk.push_row(
                self.next_tuple,
                &self.dirty_row,
                &self.clean_row,
                &self.max_len,
            );
            self.next_tuple += 1;
        }
        Ok(chunk.n_tuples() > 0)
    }

    /// Rewind to the first row to scan again with the same statistics.
    pub fn reset(&mut self) -> Result<(), TableError> {
        self.next_tuple = 0;
        self.source.reset()
    }

    /// Give the source back (e.g. to rescan with different settings).
    pub fn into_source(self) -> S {
        self.source
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{csv, CellFrame, CharIndex};

    fn pair() -> (Table, Table) {
        let mut dirty = Table::with_columns(&["age", "city"]);
        dirty.push_row_strs(&["21", " Romr"]);
        dirty.push_row_strs(&["", "Paris"]);
        dirty.push_row_strs(&["7", "Lima"]);
        dirty.push_row_strs(&["303", "Oslo"]);
        dirty.push_row_strs(&["44", ""]);
        let mut clean = Table::with_columns(&["age", "city"]);
        clean.push_row_strs(&["21", "Rome"]);
        clean.push_row_strs(&["30", "Paris"]);
        clean.push_row_strs(&["7", "Lima"]);
        clean.push_row_strs(&["33", "Oslo"]);
        clean.push_row_strs(&["44", "Kyiv"]);
        (dirty, clean)
    }

    #[test]
    fn scan_stats_match_the_merge_pass() {
        let (d, c) = pair();
        let frame = CellFrame::merge(&d, &c).unwrap();
        let mut source = TableSource::pair(&d, &c).unwrap();
        let (stats, dict) = scan_stats(&mut source).unwrap();
        assert_eq!(stats.n_rows, 5);
        // Denominators implied by the frame's length_norm: recompute from
        // the frame's own pass-1 logic.
        assert_eq!(stats.max_len, vec![3, 5]);
        assert_eq!(dict.entries(), CharIndex::build(&frame).entries());
    }

    #[test]
    fn chunked_cells_equal_the_merged_frame_for_every_chunk_size() {
        let (d, c) = pair();
        let frame = CellFrame::merge(&d, &c).unwrap();
        for chunk_rows in [1usize, 2, 3, 5, 100] {
            let mut source = TableSource::pair(&d, &c).unwrap();
            let (stats, _) = scan_stats(&mut source).unwrap();
            let mut scan = FrameScan::new(source, stats.max_len.clone(), chunk_rows);
            let mut chunk = ChunkedFrame::new();
            let mut streamed: Vec<Cell> = Vec::new();
            while scan.next_chunk(&mut chunk).unwrap() {
                assert!(chunk.n_tuples() <= chunk_rows);
                assert_eq!(chunk.first_tuple() * chunk.n_attrs(), streamed.len());
                streamed.extend_from_slice(chunk.cells());
            }
            assert_eq!(streamed, frame.cells(), "chunk_rows={chunk_rows}");
        }
    }

    #[test]
    fn dirty_only_source_reproduces_the_self_merge() {
        let (d, _) = pair();
        let frame = CellFrame::merge(&d, &d).unwrap();
        let mut source = TableSource::dirty_only(&d);
        let (stats, _) = scan_stats(&mut source).unwrap();
        let mut scan = FrameScan::new(source, stats.max_len, 2);
        let mut chunk = ChunkedFrame::new();
        let mut streamed: Vec<Cell> = Vec::new();
        while scan.next_chunk(&mut chunk).unwrap() {
            streamed.extend_from_slice(chunk.cells());
        }
        assert_eq!(streamed, frame.cells());
        assert!(streamed.iter().all(|cell| !cell.label));
    }

    #[test]
    fn csv_source_streams_like_the_in_memory_table() {
        let (d, c) = pair();
        let dir = std::env::temp_dir().join(format!("etsb_scan_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dirty_path = dir.join("dirty.csv");
        let clean_path = dir.join("clean.csv");
        csv::write_file(&d, &dirty_path).unwrap();
        csv::write_file(&c, &clean_path).unwrap();

        let mut source = CsvSource::open(&dirty_path, Some(clean_path.as_path())).unwrap();
        assert_eq!(source.columns(), c.columns());
        let (stats, dict) = scan_stats(&mut source).unwrap();
        let frame = CellFrame::merge(&d, &c).unwrap();
        assert_eq!(dict.entries(), CharIndex::build(&frame).entries());

        let mut scan = FrameScan::new(source, stats.max_len, 2);
        let mut chunk = ChunkedFrame::new();
        let mut streamed: Vec<Cell> = Vec::new();
        while scan.next_chunk(&mut chunk).unwrap() {
            streamed.extend_from_slice(chunk.cells());
        }
        assert_eq!(streamed, frame.cells());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chunk_buffer_is_reused_and_reports_resident_bytes() {
        let (d, c) = pair();
        let mut source = TableSource::pair(&d, &c).unwrap();
        let (stats, _) = scan_stats(&mut source).unwrap();
        let mut scan = FrameScan::new(source, stats.max_len, 2);
        let mut chunk = ChunkedFrame::new();
        let mut peak = 0usize;
        while scan.next_chunk(&mut chunk).unwrap() {
            peak = peak.max(chunk.resident_bytes());
        }
        assert!(peak > 0);
        // The buffer never holds more than chunk_rows × attrs cells.
        assert!(chunk.resident_bytes() <= peak);
        assert!(chunk.cells.len() <= 2 * 2);
    }

    #[test]
    fn row_count_mismatch_is_an_error() {
        let (d, c) = pair();
        let dir = std::env::temp_dir().join(format!("etsb_scan_mismatch_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dirty_path = dir.join("dirty.csv");
        let clean_path = dir.join("clean.csv");
        let mut short = Table::new(c.columns().to_vec());
        short.push_row(c.row(0).to_vec());
        csv::write_file(&d, &dirty_path).unwrap();
        csv::write_file(&short, &clean_path).unwrap();

        let mut source = CsvSource::open(&dirty_path, Some(clean_path.as_path())).unwrap();
        let mut dirty = Vec::new();
        let mut clean = Vec::new();
        let mut err = None;
        loop {
            match source.next_row(&mut dirty, &mut clean) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(TableError::Csv { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
