//! The long-format merge of a dirty/clean table pair (§4.1, step 3).
//!
//! Every cell of the wide tables becomes one [`Cell`] record carrying the
//! dirty value (`value_x`), the ground-truth value (`value_y`), the
//! correctness label, the `empty` flag and the normalized length used by
//! the ETSB-RNN model. The frame stores cells in row-major order (all
//! attributes of tuple 0, then tuple 1, …), mirroring the `id_`-sorted
//! long dataframe of the paper's Figure 3.

use crate::{Table, TableError};

/// Values longer than this many characters are truncated, exactly as the
/// paper does for hospital/movies/rayyan ("If the value has more than 128
/// characters … we cut them off").
pub const MAX_VALUE_LEN: usize = 128;

/// Normalize one raw cell value exactly as [`CellFrame::merge`] does:
/// trim leading whitespace, then cap at [`MAX_VALUE_LEN`] characters.
///
/// This is the single normalization used everywhere a raw string enters
/// the model's view of the data — the in-memory merge, the streaming
/// scan and serve-request encoding all call it, which is what makes the
/// chunked path bitwise-identical to the in-memory one.
pub fn normalize_value(raw: &str) -> String {
    let mut out = String::new();
    normalize_value_into(raw, &mut out);
    out
}

/// Allocation-free variant of [`normalize_value`]: clears `out` and
/// fills it with the normalized value, reusing its capacity.
pub fn normalize_value_into(raw: &str, out: &mut String) {
    out.clear();
    let trimmed = raw.trim_start();
    for (n, ch) in trimmed.chars().enumerate() {
        if n == MAX_VALUE_LEN {
            return;
        }
        out.push(ch);
    }
}

/// One cell of the merged long-format dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    /// Tuple id (`id_` in the paper): the 0-based row of the wide table.
    pub tuple_id: usize,
    /// 0-based attribute (column) index.
    pub attr: usize,
    /// Dirty value, leading-whitespace-trimmed and length-capped.
    pub value_x: String,
    /// Clean (ground-truth) value, same normalization.
    pub value_y: String,
    /// `true` when `value_x` differs from `value_y` (an error).
    pub label: bool,
    /// `true` when `value_x` is empty — input to DiverSet's tie-break.
    pub empty: bool,
    /// `len(value_x) / max len(value_x) within this attribute` (0 when the
    /// attribute is entirely empty).
    pub length_norm: f32,
}

impl Cell {
    /// The `concat` column of the paper: attribute name joined with the
    /// dirty value, used by DiverSet to track *seen attribute values*.
    /// The unit separator cannot occur in CSV data, so the pairing is
    /// collision-free.
    pub fn concat(&self, attrs: &[String]) -> String {
        format!("{}\u{1f}{}", attrs[self.attr], self.value_x)
    }
}

/// Long-format merged dataset: the paper's `df`.
#[derive(Clone, Debug)]
pub struct CellFrame {
    attrs: Vec<String>,
    n_tuples: usize,
    cells: Vec<Cell>,
}

impl CellFrame {
    /// Merge a dirty/clean pair (§4.1 steps 1–3): trim leading
    /// whitespace, align columns by position (the paper renames the dirty
    /// header to the clean one), truncate long values, compute labels,
    /// `empty` flags and `length_norm`.
    ///
    /// Returns an error when the tables' shapes differ.
    pub fn merge(dirty: &Table, clean: &Table) -> Result<Self, TableError> {
        if dirty.shape() != clean.shape() {
            return Err(TableError::ShapeMismatch {
                dirty: dirty.shape(),
                clean: clean.shape(),
            });
        }
        let (n_rows, n_cols) = dirty.shape();
        let attrs: Vec<String> = clean.columns().to_vec();

        // First pass: per-attribute maximum dirty-value length.
        let mut max_len = vec![0usize; n_cols];
        for r in 0..n_rows {
            for (c, slot) in max_len.iter_mut().enumerate() {
                let len = normalize_value(dirty.cell(r, c)).chars().count();
                *slot = (*slot).max(len);
            }
        }

        let mut cells = Vec::with_capacity(n_rows * n_cols);
        for r in 0..n_rows {
            for (c, &col_max) in max_len.iter().enumerate() {
                let value_x = normalize_value(dirty.cell(r, c));
                let value_y = normalize_value(clean.cell(r, c));
                let len = value_x.chars().count();
                cells.push(Cell {
                    tuple_id: r,
                    attr: c,
                    label: value_x != value_y,
                    empty: value_x.is_empty(),
                    length_norm: if col_max == 0 {
                        0.0
                    } else {
                        len as f32 / col_max as f32
                    },
                    value_x,
                    value_y,
                });
            }
        }
        Ok(Self {
            attrs,
            n_tuples: n_rows,
            cells,
        })
    }

    /// Attribute (column) names.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// Number of attributes per tuple.
    pub fn n_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Number of tuples (wide-table rows).
    pub fn n_tuples(&self) -> usize {
        self.n_tuples
    }

    /// All cells, row-major.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The cells of one tuple.
    pub fn tuple(&self, tuple_id: usize) -> &[Cell] {
        let a = self.n_attrs();
        &self.cells[tuple_id * a..(tuple_id + 1) * a]
    }

    /// Global index of a cell in [`CellFrame::cells`].
    pub fn cell_index(&self, tuple_id: usize, attr: usize) -> usize {
        tuple_id * self.n_attrs() + attr
    }

    /// Fraction of cells whose label is `true` (the paper's "error rate").
    pub fn error_rate(&self) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells.iter().filter(|c| c.label).count() as f64 / self.cells.len() as f64
    }

    /// Number of distinct characters across all dirty values (the paper's
    /// "Different Characters" column of Table 2).
    pub fn distinct_chars(&self) -> usize {
        let mut seen = std::collections::BTreeSet::new();
        for cell in &self.cells {
            seen.extend(cell.value_x.chars());
        }
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Table, Table) {
        let mut dirty = Table::with_columns(&["age", "city"]);
        dirty.push_row_strs(&["21", " Romr"]);
        dirty.push_row_strs(&["", "Paris"]);
        let mut clean = Table::with_columns(&["age", "city"]);
        clean.push_row_strs(&["21", "Rome"]);
        clean.push_row_strs(&["30", "Paris"]);
        (dirty, clean)
    }

    #[test]
    fn merge_labels_and_flags() {
        let (d, c) = pair();
        let frame = CellFrame::merge(&d, &c).unwrap();
        assert_eq!(frame.n_tuples(), 2);
        assert_eq!(frame.n_attrs(), 2);
        let cells = frame.cells();
        assert!(!cells[0].label); // 21 == 21
        assert!(cells[1].label); // Romr != Rome (after trim)
        assert!(cells[2].label && cells[2].empty); // "" != 30
        assert!(!cells[3].label);
        assert_eq!(frame.error_rate(), 0.5);
    }

    #[test]
    fn leading_whitespace_trimmed_before_compare() {
        let (d, c) = pair();
        let frame = CellFrame::merge(&d, &c).unwrap();
        assert_eq!(frame.cells()[1].value_x, "Romr");
    }

    #[test]
    fn length_norm_relative_to_attribute_max() {
        let (d, c) = pair();
        let frame = CellFrame::merge(&d, &c).unwrap();
        // city column: "Romr" (4) and "Paris" (5) → norms 0.8 and 1.0.
        assert!((frame.cells()[1].length_norm - 0.8).abs() < 1e-6);
        assert!((frame.cells()[3].length_norm - 1.0).abs() < 1e-6);
        // age column: "21" (2) and "" (0) → norms 1.0 and 0.0.
        assert!((frame.cells()[0].length_norm - 1.0).abs() < 1e-6);
        assert_eq!(frame.cells()[2].length_norm, 0.0);
    }

    #[test]
    fn long_values_truncated() {
        let long = "x".repeat(300);
        let mut d = Table::with_columns(&["a"]);
        d.push_row(vec![long.clone()]);
        let mut c = Table::with_columns(&["a"]);
        c.push_row(vec![long]);
        let frame = CellFrame::merge(&d, &c).unwrap();
        assert_eq!(frame.cells()[0].value_x.chars().count(), MAX_VALUE_LEN);
        // Equal after truncation → still labelled correct.
        assert!(!frame.cells()[0].label);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let (d, _) = pair();
        let mut c = Table::with_columns(&["age", "city"]);
        c.push_row_strs(&["21", "Rome"]);
        assert!(matches!(
            CellFrame::merge(&d, &c),
            Err(TableError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn concat_is_collision_free() {
        let (d, c) = pair();
        let frame = CellFrame::merge(&d, &c).unwrap();
        let concat = frame.cells()[1].concat(frame.attrs());
        assert_eq!(concat, format!("city\u{1f}Romr"));
    }

    #[test]
    fn tuple_view_and_index() {
        let (d, c) = pair();
        let frame = CellFrame::merge(&d, &c).unwrap();
        assert_eq!(frame.tuple(1).len(), 2);
        assert_eq!(frame.tuple(1)[0].value_x, "");
        assert_eq!(frame.cell_index(1, 1), 3);
    }

    #[test]
    fn distinct_chars_counts_dirty_side() {
        let (d, c) = pair();
        let frame = CellFrame::merge(&d, &c).unwrap();
        // "21", "Romr", "", "Paris" → {2,1,R,o,m,r,P,a,i,s} = 10
        assert_eq!(frame.distinct_chars(), 10);
    }
}
