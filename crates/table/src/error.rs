//! Error type shared by the table layer.

/// Errors raised while loading, parsing or merging tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// CSV syntax error at a given 1-based line.
    Csv {
        /// 1-based line of the offending record.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A data row's width differs from the header width.
    RaggedRow {
        /// 1-based line of the offending record.
        line: usize,
        /// Header width.
        expected: usize,
        /// Fields found on the row.
        found: usize,
    },
    /// The dirty and clean tables cannot be merged.
    ShapeMismatch {
        /// Shape of the dirty table.
        dirty: (usize, usize),
        /// Shape of the clean table.
        clean: (usize, usize),
    },
    /// A column name was not found.
    UnknownColumn(String),
    /// An I/O failure, flattened to a message so the error stays `Clone`.
    Io(String),
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::Csv { line, message } => write!(f, "CSV error at line {line}: {message}"),
            TableError::RaggedRow {
                line,
                expected,
                found,
            } => {
                write!(f, "line {line}: expected {expected} fields, found {found}")
            }
            TableError::ShapeMismatch { dirty, clean } => write!(
                f,
                "dirty table is {}x{} but clean table is {}x{}",
                dirty.0, dirty.1, clean.0, clean.1
            ),
            TableError::UnknownColumn(name) => write!(f, "unknown column {name:?}"),
            TableError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for TableError {}

impl From<std::io::Error> for TableError {
    fn from(e: std::io::Error) -> Self {
        TableError::Io(e.to_string())
    }
}
