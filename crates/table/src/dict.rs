//! Dictionary generation (§4.1, step 4): the *value dictionary* mapping
//! characters to indexes and the *attribute dictionary* mapping attribute
//! names to indexes.

use crate::CellFrame;
use std::collections::HashMap;

/// Index 0 is reserved: it pads short sequences ("we pad short sequences
/// of characters with the end-indicator") and doubles as the
/// out-of-vocabulary bucket for characters never seen at dictionary-build
/// time (relevant only when a trained model is applied to new data).
pub const PAD_INDEX: usize = 0;

/// The paper's `char_index`: every distinct character of the dirty values
/// gets an index starting at 1.
#[derive(Clone, Debug)]
pub struct CharIndex {
    map: HashMap<char, usize>,
}

impl CharIndex {
    /// Build from every `value_x` in the frame. Characters are numbered in
    /// first-occurrence order, which makes the dictionary deterministic
    /// for a given frame.
    pub fn build(frame: &CellFrame) -> Self {
        let mut builder = CharIndexBuilder::new();
        for cell in frame.cells() {
            builder.observe(&cell.value_x);
        }
        builder.finish()
    }

    /// Export the dictionary as `(char, index)` pairs sorted by index —
    /// the serialization form used by model persistence.
    pub fn entries(&self) -> Vec<(char, usize)> {
        // Iterate-then-sort by the unique index: the hash order never
        // survives to the output, and lookups stay O(1) on the hot path.
        // etsb: allow(hash-iter-order)
        let mut v: Vec<(char, usize)> = self.map.iter().map(|(&c, &i)| (c, i)).collect();
        v.sort_by_key(|&(_, i)| i);
        v
    }

    /// Rebuild a dictionary from [`CharIndex::entries`] output.
    ///
    /// # Panics
    /// If indexes are not exactly `1..=n` (a corrupt serialization).
    pub fn from_entries(entries: Vec<(char, usize)>) -> Self {
        let mut map = HashMap::with_capacity(entries.len());
        for (expected, (ch, idx)) in entries.into_iter().enumerate() {
            assert_eq!(
                idx,
                expected + 1,
                "CharIndex::from_entries: non-contiguous index {idx}"
            );
            map.insert(ch, idx);
        }
        Self { map }
    }

    /// Build from an explicit alphabet (for tests and synthetic data).
    pub fn from_alphabet(alphabet: impl IntoIterator<Item = char>) -> Self {
        let mut map = HashMap::new();
        for ch in alphabet {
            let next = map.len() + 1;
            map.entry(ch).or_insert(next);
        }
        Self { map }
    }

    /// Number of distinct characters (excluding the pad slot).
    pub fn n_chars(&self) -> usize {
        self.map.len()
    }

    /// Vocabulary size including the pad/unknown slot at index 0 — the
    /// row count for the embedding table.
    pub fn vocab_size(&self) -> usize {
        self.map.len() + 1
    }

    /// Index of one character (`PAD_INDEX` when unseen).
    pub fn index_of(&self, ch: char) -> usize {
        self.map.get(&ch).copied().unwrap_or(PAD_INDEX)
    }

    /// Encode a value to its index sequence at true length. The empty
    /// string encodes as a single pad token so every sequence has at
    /// least one step (the RNN requires non-empty input, and "emptiness"
    /// itself is a signal the model should see).
    pub fn encode(&self, value: &str) -> Vec<usize> {
        let mut out = Vec::new();
        self.encode_into(value, &mut out);
        out
    }

    /// Allocation-reusing variant of [`Self::encode`]: clears `out` and
    /// fills it with the index sequence (at least one step).
    pub fn encode_into(&self, value: &str, out: &mut Vec<usize>) {
        out.clear();
        if value.is_empty() {
            out.push(PAD_INDEX);
            return;
        }
        out.extend(value.chars().map(|ch| self.index_of(ch)));
    }

    /// Encode and right-pad with `PAD_INDEX` to exactly `len` (values
    /// longer than `len` are truncated). Mirrors the paper's fixed-width
    /// trainset matrices; the models in this workspace use [`Self::encode`]
    /// instead and run sequences at true length.
    pub fn encode_padded(&self, value: &str, len: usize) -> Vec<usize> {
        let mut out: Vec<usize> = value
            .chars()
            .take(len)
            .map(|ch| self.index_of(ch))
            .collect();
        out.resize(len, PAD_INDEX);
        out
    }
}

/// Incremental [`CharIndex`] construction for the streaming data path.
///
/// Feeding every *normalized* dirty value to [`CharIndexBuilder::observe`]
/// in row-major order (all attributes of tuple 0, then tuple 1, …)
/// produces a dictionary identical to [`CharIndex::build`] on the fully
/// materialized frame: both number characters in first-occurrence order
/// over the same character stream. `CharIndex::build` is itself
/// implemented on this builder, so the equivalence is structural, not
/// coincidental.
#[derive(Clone, Debug, Default)]
pub struct CharIndexBuilder {
    map: HashMap<char, usize>,
}

impl CharIndexBuilder {
    /// An empty builder (vocabulary of just the pad slot).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record every character of one normalized dirty value.
    pub fn observe(&mut self, value: &str) {
        for ch in value.chars() {
            let next = self.map.len() + 1;
            self.map.entry(ch).or_insert(next);
        }
    }

    /// Number of distinct characters observed so far.
    pub fn n_chars(&self) -> usize {
        self.map.len()
    }

    /// Freeze the builder into an immutable dictionary.
    pub fn finish(self) -> CharIndex {
        CharIndex { map: self.map }
    }
}

/// The paper's `attribute_index`: attribute name → index. Attribute ids
/// feed the ETSB-RNN metadata path.
#[derive(Clone, Debug)]
pub struct AttrIndex {
    names: Vec<String>,
}

impl AttrIndex {
    /// Build from a frame's attribute list.
    pub fn build(frame: &CellFrame) -> Self {
        Self {
            names: frame.attrs().to_vec(),
        }
    }

    /// Build from an explicit name list (model persistence).
    pub fn from_names(names: Vec<String>) -> Self {
        Self { names }
    }

    /// All attribute names in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of attributes — the embedding row count for the metadata
    /// path.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when there are no attributes.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Index of an attribute by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Name of the attribute at `idx`.
    pub fn name_of(&self, idx: usize) -> &str {
        &self.names[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Table;

    fn frame() -> CellFrame {
        let mut d = Table::with_columns(&["a", "b"]);
        d.push_row_strs(&["ab", "ba"]);
        d.push_row_strs(&["", "abc"]);
        let mut c = Table::with_columns(&["a", "b"]);
        c.push_row_strs(&["ab", "ba"]);
        c.push_row_strs(&["x", "abc"]);
        CellFrame::merge(&d, &c).unwrap()
    }

    #[test]
    fn build_numbers_chars_from_one() {
        let idx = CharIndex::build(&frame());
        // First-occurrence order: a=1, b=2, c=3.
        assert_eq!(idx.index_of('a'), 1);
        assert_eq!(idx.index_of('b'), 2);
        assert_eq!(idx.index_of('c'), 3);
        assert_eq!(idx.n_chars(), 3);
        assert_eq!(idx.vocab_size(), 4);
    }

    #[test]
    fn unseen_char_maps_to_pad() {
        let idx = CharIndex::build(&frame());
        assert_eq!(idx.index_of('z'), PAD_INDEX);
    }

    #[test]
    fn encode_true_length_and_empty() {
        let idx = CharIndex::build(&frame());
        assert_eq!(idx.encode("ab"), vec![1, 2]);
        assert_eq!(idx.encode(""), vec![PAD_INDEX]);
    }

    #[test]
    fn encode_padded_pads_and_truncates() {
        let idx = CharIndex::build(&frame());
        assert_eq!(idx.encode_padded("ab", 4), vec![1, 2, 0, 0]);
        assert_eq!(idx.encode_padded("abc", 2), vec![1, 2]);
    }

    #[test]
    fn incremental_builder_matches_batch_build() {
        let f = frame();
        let batch = CharIndex::build(&f);
        let mut builder = CharIndexBuilder::new();
        for cell in f.cells() {
            builder.observe(&cell.value_x);
        }
        assert_eq!(builder.n_chars(), batch.n_chars());
        let inc = builder.finish();
        assert_eq!(batch.entries(), inc.entries());
    }

    #[test]
    fn attr_index_round_trip() {
        let a = AttrIndex::build(&frame());
        assert_eq!(a.len(), 2);
        assert_eq!(a.index_of("b"), Some(1));
        assert_eq!(a.name_of(0), "a");
        assert_eq!(a.index_of("zzz"), None);
    }

    #[test]
    fn from_alphabet_matches_paper_example() {
        // §3.1: 'a':1 … 'z':26, so "bazy" → [2, 1, 26, 25].
        let idx = CharIndex::from_alphabet('a'..='z');
        let encoded = idx.encode("bazy");
        assert_eq!(encoded, vec![2, 1, 26, 25]);
        assert_eq!(idx.vocab_size(), 27);
    }
}

#[cfg(test)]
mod persist_tests {
    use super::*;

    #[test]
    fn entries_round_trip() {
        let idx = CharIndex::from_alphabet("hello world".chars());
        let entries = idx.entries();
        let back = CharIndex::from_entries(entries);
        for ch in "hello world".chars() {
            assert_eq!(idx.index_of(ch), back.index_of(ch));
        }
        assert_eq!(idx.vocab_size(), back.vocab_size());
    }

    #[test]
    #[should_panic(expected = "non-contiguous")]
    fn corrupt_entries_rejected() {
        let _ = CharIndex::from_entries(vec![('a', 1), ('b', 3)]);
    }

    #[test]
    fn attr_from_names() {
        let a = AttrIndex::from_names(vec!["x".into(), "y".into()]);
        assert_eq!(a.names(), &["x".to_string(), "y".to_string()]);
        assert_eq!(a.index_of("y"), Some(1));
    }
}
