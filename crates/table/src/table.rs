//! Wide-format string table.

use crate::TableError;

/// A wide-format table: named columns, rows of string cells.
///
/// All cells are strings — exactly the representation the paper's pipeline
/// works with, since the detector is a character-level model and never
/// parses values into native types.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table with the given column names.
    ///
    /// # Panics
    /// If column names are empty or duplicated.
    pub fn new(columns: Vec<String>) -> Self {
        assert!(!columns.is_empty(), "Table: at least one column required");
        for (i, c) in columns.iter().enumerate() {
            assert!(
                !columns[..i].contains(c),
                "Table: duplicate column name {c:?}"
            );
        }
        Self {
            columns,
            rows: Vec::new(),
        }
    }

    /// Convenience constructor from string slices.
    pub fn with_columns(columns: &[&str]) -> Self {
        Self::new(columns.iter().map(|s| s.to_string()).collect())
    }

    /// Append a row.
    ///
    /// # Panics
    /// If the row width differs from the column count.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "Table::push_row: row of width {} into table of width {}",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Append a row of string slices.
    pub fn push_row_strs(&mut self, row: &[&str]) {
        self.push_row(row.iter().map(|s| s.to_string()).collect());
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows.len(), self.columns.len())
    }

    /// Cell at `(row, col)`.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Replace the cell at `(row, col)`.
    pub fn set_cell(&mut self, row: usize, col: usize, value: impl Into<String>) {
        self.rows[row][col] = value.into();
    }

    /// Row `r` as a slice of cells.
    pub fn row(&self, r: usize) -> &[String] {
        &self.rows[r]
    }

    /// Index of the column named `name`.
    pub fn column_index(&self, name: &str) -> Result<usize, TableError> {
        self.columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| TableError::UnknownColumn(name.to_string()))
    }

    /// Iterator over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[String]> {
        self.rows.iter().map(Vec::as_slice)
    }

    /// Strip *preceding* whitespace from every cell, as §4.1 step (2)
    /// prescribes ("we remove preceding white spaces").
    pub fn trim_leading_whitespace(&mut self) {
        for row in &mut self.rows {
            for cell in row {
                let trimmed = cell.trim_start();
                if trimmed.len() != cell.len() {
                    *cell = trimmed.to_string();
                }
            }
        }
    }

    /// Rename columns wholesale, as §4.1 step (2) does to align dirty and
    /// clean headers.
    ///
    /// # Panics
    /// If the new name count differs from the column count.
    pub fn rename_columns(&mut self, names: Vec<String>) {
        assert_eq!(
            names.len(),
            self.columns.len(),
            "rename_columns: {} names for {} columns",
            names.len(),
            self.columns.len()
        );
        self.columns = names;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::with_columns(&["a", "b"]);
        t.push_row_strs(&["1", " x"]);
        t.push_row_strs(&["2", "y "]);
        t
    }

    #[test]
    fn shape_and_access() {
        let t = sample();
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.cell(0, 1), " x");
        assert_eq!(t.column_index("b").unwrap(), 1);
        assert!(t.column_index("zzz").is_err());
    }

    #[test]
    fn trim_leading_only() {
        let mut t = sample();
        t.trim_leading_whitespace();
        assert_eq!(t.cell(0, 1), "x");
        // Trailing whitespace is preserved (the paper only strips leading).
        assert_eq!(t.cell(1, 1), "y ");
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_rejected() {
        let _ = Table::with_columns(&["a", "a"]);
    }

    #[test]
    #[should_panic(expected = "push_row")]
    fn ragged_row_rejected() {
        let mut t = Table::with_columns(&["a", "b"]);
        t.push_row_strs(&["only-one"]);
    }

    #[test]
    fn rename_and_set() {
        let mut t = sample();
        t.rename_columns(vec!["c1".into(), "c2".into()]);
        assert_eq!(t.columns(), &["c1".to_string(), "c2".to_string()]);
        t.set_cell(0, 0, "99");
        assert_eq!(t.cell(0, 0), "99");
    }
}
