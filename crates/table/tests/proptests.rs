//! Property-based tests for CSV round-tripping, the merge pipeline and
//! the dictionaries.

use etsb_table::{csv, CellFrame, CharIndex, Table, PAD_INDEX};
use proptest::prelude::*;

/// Any printable-ish cell content, including the characters CSV must
/// quote and multi-byte unicode.
fn cell() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~äöüé日,\"\n]{0,12}").expect("valid regex")
}

fn table(max_rows: usize) -> impl Strategy<Value = Table> {
    (1usize..5, 1usize..=max_rows).prop_flat_map(|(cols, rows)| {
        proptest::collection::vec(proptest::collection::vec(cell(), cols), rows).prop_map(
            move |data| {
                let names: Vec<String> = (0..cols).map(|c| format!("c{c}")).collect();
                let mut t = Table::new(names);
                for row in data {
                    t.push_row(row);
                }
                t
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csv_round_trips_arbitrary_cells(t in table(8)) {
        let text = csv::to_string(&t);
        let back = csv::parse(&text).unwrap();
        prop_assert_eq!(t, back);
    }

    #[test]
    fn merge_label_iff_values_differ(t in table(6)) {
        // Self-merge: every label must be false.
        let frame = CellFrame::merge(&t, &t).unwrap();
        prop_assert!(frame.cells().iter().all(|c| !c.label));
        prop_assert_eq!(frame.error_rate(), 0.0);
    }

    #[test]
    fn merge_shape_is_rows_times_cols(t in table(6)) {
        let frame = CellFrame::merge(&t, &t).unwrap();
        prop_assert_eq!(frame.cells().len(), t.n_rows() * t.n_cols());
        prop_assert_eq!(frame.n_tuples(), t.n_rows());
    }

    #[test]
    fn length_norm_bounds(t in table(6)) {
        let frame = CellFrame::merge(&t, &t).unwrap();
        prop_assert!(frame
            .cells()
            .iter()
            .all(|c| (0.0..=1.0).contains(&c.length_norm)));
        // Some cell in each non-degenerate attribute reaches norm 1.
        for attr in 0..frame.n_attrs() {
            let max = frame
                .cells()
                .iter()
                .filter(|c| c.attr == attr)
                .map(|c| c.length_norm)
                .fold(0.0f32, f32::max);
            let any_nonempty = frame
                .cells()
                .iter()
                .any(|c| c.attr == attr && !c.value_x.is_empty());
            if any_nonempty {
                prop_assert!((max - 1.0).abs() < 1e-6, "attr {attr}: max norm {max}");
            }
        }
    }

    #[test]
    fn dictionary_encodes_every_seen_value(t in table(6)) {
        let frame = CellFrame::merge(&t, &t).unwrap();
        let dict = CharIndex::build(&frame);
        for cell in frame.cells() {
            let enc = dict.encode(&cell.value_x);
            prop_assert!(!enc.is_empty(), "sequences are never empty");
            if cell.value_x.is_empty() {
                prop_assert_eq!(&enc, &vec![PAD_INDEX]);
            } else {
                // Every character of a seen value has a nonzero index.
                prop_assert!(enc.iter().all(|&i| i != PAD_INDEX && i < dict.vocab_size()));
            }
        }
    }

    #[test]
    fn padded_encoding_has_exact_width(v in cell(), len in 1usize..20) {
        let mut t = Table::with_columns(&["a"]);
        t.push_row(vec![v]);
        let frame = CellFrame::merge(&t, &t).unwrap();
        let dict = CharIndex::build(&frame);
        let enc = dict.encode_padded(&frame.cells()[0].value_x, len);
        prop_assert_eq!(enc.len(), len);
    }

    #[test]
    fn distinct_chars_counts_exactly(t in table(6)) {
        let frame = CellFrame::merge(&t, &t).unwrap();
        let dict = CharIndex::build(&frame);
        prop_assert_eq!(frame.distinct_chars(), dict.n_chars());
    }
}
