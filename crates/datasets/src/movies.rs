//! Movies generator: 7,390 x 17, error rate 0.06, MV + FI.
//!
//! §5.1/§5.5: formatting issues in RatingCount ('379,998' rather than
//! '379998.0'), name ('Frankie & Johnny' rather than 'Frankie and
//! Johnny'), RatingValue ('8.0' rather than '8'); missing values in
//! Duration — where `NaN` is *sometimes the correct value*, the ambiguity
//! the paper blames for its misses; and truncated Creator credits
//! ('Roger Kumble' instead of 'Choderlos de Laclos, Roger Kumble').

use crate::corrupt::{add_thousands_separators, missing_value, ErrorKind, Injector};
use crate::vocab;
use crate::{Dataset, GenConfig};
use etsb_table::{Table, TableError};
use rand::Rng;

const COLUMNS: [&str; 17] = [
    "id",
    "name",
    "year",
    "release_date",
    "director",
    "creator",
    "actors",
    "cast",
    "language",
    "country",
    "duration",
    "rating_value",
    "rating_count",
    "review_count",
    "genre",
    "filming_locations",
    "description",
];

pub(crate) fn generate(cfg: &GenConfig) -> Result<(Table, Table), TableError> {
    let mut rng = cfg.rng(Dataset::Movies);
    let n_rows = cfg.rows(Dataset::Movies.paper_rows());

    let languages = [
        "English", "French", "Spanish", "Japanese", "German", "Italian", "Korean",
    ];
    let countries = [
        "USA",
        "France",
        "Spain",
        "Japan",
        "Germany",
        "Italy",
        "South Korea",
        "UK",
    ];

    let mut clean = Table::with_columns(&COLUMNS);
    for i in 0..n_rows {
        let name = format!(
            "{} {} and {}",
            vocab::pick(&mut rng, vocab::MOVIE_WORDS),
            vocab::pick(&mut rng, vocab::MOVIE_NOUNS),
            vocab::pick(&mut rng, vocab::MOVIE_NOUNS),
        );
        let year = rng.gen_range(1960..2021);
        let creator = vocab::pick(&mut rng, vocab::MOVIE_CREATORS);
        let actors = format!(
            "{} {}, {} {}",
            vocab::pick(&mut rng, vocab::FIRST_NAMES),
            vocab::pick(&mut rng, vocab::LAST_NAMES),
            vocab::pick(&mut rng, vocab::FIRST_NAMES),
            vocab::pick(&mut rng, vocab::LAST_NAMES),
        );
        // Duration is genuinely missing for a share of titles: the §5.5
        // ambiguity ('NaN' correct in some rows, '96 min' in others).
        let duration = if rng.gen_bool(0.15) {
            "NaN".to_string()
        } else {
            format!("{} min", rng.gen_range(62..205))
        };
        let lang_idx = rng.gen_range(0..languages.len());
        clean.push_row(vec![
            format!("tt{:07}", 100_000 + i),
            name,
            year.to_string(),
            format!(
                "{} {} {year}",
                rng.gen_range(1..29),
                vocab::pick(&mut rng, vocab::MONTHS_ABBR)
            ),
            format!(
                "{} {}",
                vocab::pick(&mut rng, vocab::FIRST_NAMES),
                vocab::pick(&mut rng, vocab::LAST_NAMES)
            ),
            creator.to_string(),
            actors.clone(),
            actors,
            languages[lang_idx].to_string(),
            countries[lang_idx.min(countries.len() - 1)].to_string(),
            duration,
            rng.gen_range(2..10).to_string(),
            rng.gen_range(1_000..900_000).to_string(),
            rng.gen_range(10..2_000).to_string(),
            vocab::pick(&mut rng, vocab::MOVIE_GENRES).to_string(),
            format!(
                "{}, {}",
                vocab::pick(&mut rng, vocab::CITY_STATE).0,
                countries[lang_idx.min(countries.len() - 1)]
            ),
            format!(
                "A {} story of love and betrayal.",
                vocab::pick(&mut rng, vocab::MOVIE_GENRES).to_lowercase()
            ),
        ]);
    }

    let mut dirty = clean.clone();
    let col = |name: &str| {
        COLUMNS
            .iter()
            .position(|c| *c == name)
            .ok_or_else(|| TableError::UnknownColumn(name.to_string()))
    };
    let (c_name, c_creator, c_duration, c_rating_value, c_rating_count, c_year) = (
        col("name")?,
        col("creator")?,
        col("duration")?,
        col("rating_value")?,
        col("rating_count")?,
        col("year")?,
    );

    let mix = [
        (ErrorKind::FormattingIssue, 0.65),
        (ErrorKind::MissingValue, 0.35),
    ];
    Injector::new(
        n_rows * COLUMNS.len(),
        Dataset::Movies.paper_error_rate(),
        &mix,
        &mut rng,
    )
    .run(&mut dirty, |kind, _r, c, old, rng| match kind {
        ErrorKind::FormattingIssue => {
            if c == c_name && old.contains(" and ") {
                Some(old.replacen(" and ", " & ", 1))
            } else if c == c_rating_count {
                add_thousands_separators(old)
            } else if c == c_rating_value {
                // '8' → '8.0'.
                crate::corrupt::add_decimal_suffix(old)
            } else if c == c_year {
                // Several year indications instead of only one.
                let y: i32 = old.parse().ok()?;
                Some(format!("{y} {}", y + 1))
            } else if c == c_creator && old.contains(", ") {
                // Truncated credit: keep only the part after the comma.
                old.split(", ").last().map(str::to_string)
            } else {
                None
            }
        }
        ErrorKind::MissingValue => {
            if c == c_duration && old != "NaN" {
                Some("NaN".to_string())
            } else if c == c_duration {
                None
            } else if rng.gen_bool(0.5) {
                Some(missing_value(rng))
            } else {
                None
            }
        }
        _ => None,
    });
    Ok((dirty, clean))
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsb_table::CellFrame;

    #[test]
    fn nan_duration_is_sometimes_correct() {
        let cfg = GenConfig {
            scale: 0.05,
            seed: 11,
        };
        let (dirty, clean) = generate(&cfg).expect("generate");
        let frame = CellFrame::merge(&dirty, &clean).unwrap();
        let c_dur = 10;
        let correct_nan = frame
            .cells()
            .iter()
            .filter(|c| c.attr == c_dur && c.value_x == "NaN" && !c.label)
            .count();
        let wrong_nan = frame
            .cells()
            .iter()
            .filter(|c| c.attr == c_dur && c.value_x == "NaN" && c.label)
            .count();
        assert!(correct_nan > 0, "NaN should sometimes be the ground truth");
        assert!(wrong_nan > 0, "NaN should sometimes be an injected error");
    }

    #[test]
    fn ampersand_and_comma_errors_exist() {
        let cfg = GenConfig {
            scale: 0.05,
            seed: 12,
        };
        let (dirty, clean) = generate(&cfg).expect("generate");
        let frame = CellFrame::merge(&dirty, &clean).unwrap();
        assert!(frame
            .cells()
            .iter()
            .any(|c| c.label && c.value_x.contains(" & ")));
        assert!(frame.cells().iter().any(|c| c.label
            && c.value_x.contains(',')
            && c.value_x.bytes().all(|b| b.is_ascii_digit() || b == b',')));
    }

    #[test]
    fn alphabet_is_large_like_the_paper() {
        // Movies has the biggest alphabet in Table 2 (135): accented names
        // and punctuation push the synthetic one up too.
        let cfg = GenConfig {
            scale: 0.05,
            seed: 13,
        };
        let (dirty, clean) = generate(&cfg).expect("generate");
        let frame = CellFrame::merge(&dirty, &clean).unwrap();
        assert!(
            frame.distinct_chars() > 70,
            "alphabet {}",
            frame.distinct_chars()
        );
    }
}
