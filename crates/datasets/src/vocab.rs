//! Shared word lists used by the dataset generators.
//!
//! The lists double as the "knowledge base" for the KATARA-style strategy
//! in `etsb-raha` (the paper's Raha baseline consults DBpedia; our
//! substitution consults these domain dictionaries — see DESIGN.md §5).

/// US city / state pairs; the (city → state) functional dependency is what
/// Beers and Tax violate with their VAD errors.
pub const CITY_STATE: &[(&str, &str)] = &[
    ("San Diego", "CA"),
    ("San Francisco", "CA"),
    ("Los Angeles", "CA"),
    ("Portland", "OR"),
    ("Eugene", "OR"),
    ("Seattle", "WA"),
    ("Spokane", "WA"),
    ("Denver", "CO"),
    ("Boulder", "CO"),
    ("Austin", "TX"),
    ("Houston", "TX"),
    ("Dallas", "TX"),
    ("Chicago", "IL"),
    ("Springfield", "IL"),
    ("Boston", "MA"),
    ("Cambridge", "MA"),
    ("New York", "NY"),
    ("Buffalo", "NY"),
    ("Miami", "FL"),
    ("Orlando", "FL"),
    ("Atlanta", "GA"),
    ("Savannah", "GA"),
    ("Phoenix", "AZ"),
    ("Tucson", "AZ"),
    ("Nashville", "TN"),
    ("Memphis", "TN"),
    ("Birmingham", "AL"),
    ("Montgomery", "AL"),
    ("Detroit", "MI"),
    ("Ann Arbor", "MI"),
    ("Cleveland", "OH"),
    ("Columbus", "OH"),
    ("Philadelphia", "PA"),
    ("Pittsburgh", "PA"),
    ("Baltimore", "MD"),
    ("Annapolis", "MD"),
    ("Richmond", "VA"),
    ("Norfolk", "VA"),
    ("Milwaukee", "WI"),
    ("Madison", "WI"),
];

/// First names for Tax and Rayyan authors.
pub const FIRST_NAMES: &[&str] = &[
    "James",
    "Mary",
    "John",
    "Patricia",
    "Robert",
    "Jennifer",
    "Michael",
    "Linda",
    "William",
    "Elizabeth",
    "David",
    "Barbara",
    "Richard",
    "Susan",
    "Joseph",
    "Jessica",
    "Thomas",
    "Sarah",
    "Charles",
    "Karen",
    "Christopher",
    "Nancy",
    "Daniel",
    "Lisa",
    "Matthew",
    "Betty",
    "Anthony",
    "Margaret",
    "Mark",
    "Sandra",
    "Donald",
    "Ashley",
    "Steven",
    "Kimberly",
    "Paul",
    "Emily",
    "Andrew",
    "Donna",
    "Joshua",
    "Michelle",
    "Jun'ichi",
    "Kenji",
    "Akiko",
    "Wei",
    "Ling",
];

/// Last names for Tax and Rayyan authors.
pub const LAST_NAMES: &[&str] = &[
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Rodriguez",
    "Martinez",
    "Hernandez",
    "Lopez",
    "Gonzalez",
    "Wilson",
    "Anderson",
    "Thomas",
    "Taylor",
    "Moore",
    "Jackson",
    "Martin",
    "Lee",
    "Perez",
    "Thompson",
    "White",
    "Harris",
    "Sanchez",
    "Clark",
    "Ramirez",
    "Lewis",
    "Robinson",
    "Walker",
    "Young",
    "Allen",
    "King",
    "Wright",
    "Scott",
    "Torres",
    "Nguyen",
    "Hill",
    "Flores",
    "O'Brien",
    "O'Connor",
    "McDonald",
];

/// Beer style names (Beers dataset).
pub const BEER_STYLES: &[&str] = &[
    "American IPA",
    "American Pale Ale (APA)",
    "American Amber / Red Ale",
    "American Blonde Ale",
    "American Double / Imperial IPA",
    "American Porter",
    "American Stout",
    "American Brown Ale",
    "Belgian Pale Ale",
    "Saison / Farmhouse Ale",
    "Hefeweizen",
    "Witbier",
    "Kolsch",
    "Fruit / Vegetable Beer",
    "Scotch Ale / Wee Heavy",
    "Oatmeal Stout",
    "Milk / Sweet Stout",
    "Extra Special / Strong Bitter (ESB)",
    "English Brown Ale",
    "Cream Ale",
];

/// Brewery name fragments (combined pairwise).
pub const BREWERY_WORDS: &[&str] = &[
    "Anchor",
    "Cascade",
    "Summit",
    "Ironworks",
    "Granite",
    "River",
    "Harbor",
    "Canyon",
    "Redwood",
    "Frontier",
    "Prairie",
    "Lighthouse",
    "Timber",
    "Copper",
    "Eagle",
    "Falcon",
    "Juniper",
    "Alpine",
    "Mesa",
    "Bluff",
];

/// Second half of brewery names.
pub const BREWERY_SUFFIXES: &[&str] = &[
    "Brewing Company",
    "Brewery",
    "Beer Co.",
    "Brewing Co.",
    "Ales",
    "Brewhouse",
];

/// Beer name fragments.
pub const BEER_WORDS: &[&str] = &[
    "Hoppy", "Golden", "Amber", "Midnight", "Summer", "Winter", "Wild", "Lucky", "Rusty", "Smoky",
    "Velvet", "Crimson", "Nordic", "Coastal", "Valley", "Sunset", "Harvest", "Frost", "Thunder",
    "Quiet",
];

/// Nouns completing beer names.
pub const BEER_NOUNS: &[&str] = &[
    "Trail", "Fox", "Badger", "Session", "Anthem", "Harvest", "Haze", "Peak", "Drifter", "Lantern",
    "Compass", "Meadow", "Falls", "Hollow", "Ridge", "Otter",
];

/// Airline codes (Flights dataset).
pub const AIRLINES: &[&str] = &["AA", "UA", "DL", "WN", "B6", "AS", "NK", "F9"];

/// Airport codes (Flights dataset).
pub const AIRPORTS: &[&str] = &[
    "JFK", "SFO", "LAX", "ORD", "DFW", "DEN", "SEA", "ATL", "BOS", "MIA", "PHX", "IAH", "EWR",
    "MSP", "DTW", "PHL", "LGA", "BWI", "SLC", "SAN",
];

/// Flight-information sources (Flights dataset).
pub const FLIGHT_SOURCES: &[&str] = &[
    "aa",
    "airtravelcenter",
    "allegiantair",
    "boston",
    "businesstravellogue",
    "CO",
    "dfw",
    "flightarrivals",
    "flightaware",
    "flightexplorer",
    "flightstats",
    "flightview",
    "flightwise",
    "flylouisville",
    "flytecomm",
    "foxbusiness",
    "gofox",
    "helloflight",
    "iad",
    "ifly",
    "mia",
    "mytripandmore",
    "orbitz",
    "ord",
    "panynj",
    "phl",
    "quicktrip",
    "travelocity",
    "usatoday",
    "weather",
    "world-flight-tracker",
    "wunderground",
];

/// Hospital measure descriptions (Hospital dataset).
pub const HOSPITAL_MEASURES: &[&str] = &[
    "heart attack patients given aspirin at arrival",
    "heart attack patients given aspirin at discharge",
    "heart attack patients given beta blocker at arrival",
    "heart attack patients given beta blocker at discharge",
    "heart failure patients given ace inhibitor or arb for lvsd",
    "heart failure patients given an evaluation of left ventricular systolic function",
    "heart failure patients given discharge instructions",
    "pneumonia patients given initial antibiotic within 6 hours after arrival",
    "pneumonia patients given the most appropriate initial antibiotic",
    "pneumonia patients whose initial emergency room blood culture was performed prior",
    "surgery patients who were given an antibiotic at the right time",
    "surgery patients whose preventive antibiotics were stopped at the right time",
    "surgery patients needing hair removed from the surgical area before surgery",
    "patients who got treatment at the right time to help prevent blood clots",
    "heart attack patients given smoking cessation advice",
    "heart failure patients given smoking cessation advice",
    "pneumonia patients given smoking cessation advice",
    "pneumonia patients assessed and given pneumococcal vaccination",
    "all heart surgery patients whose blood sugar is kept under good control",
    "surgery patients whose doctors ordered treatments to prevent blood clots",
];

/// Hospital names (Hospital dataset).
pub const HOSPITAL_NAMES: &[&str] = &[
    "callahan eye foundation hospital",
    "marshall medical center south",
    "eliza coffee memorial hospital",
    "mizell memorial hospital",
    "crenshaw community hospital",
    "marshall medical center north",
    "st vincents east",
    "dekalb regional medical center",
    "shelby baptist medical center",
    "cullman regional medical center",
    "thomas hospital",
    "andalusia regional hospital",
    "cherokee medical center",
    "hartselle medical center",
    "huntsville hospital",
    "jackson hospital and clinic",
    "gadsden regional medical center",
    "riverview regional medical center",
    "community hospital inc",
    "wedowee hospital",
];

/// Condition categories (Hospital dataset).
pub const HOSPITAL_CONDITIONS: &[&str] = &[
    "heart attack",
    "heart failure",
    "pneumonia",
    "surgical infection prevention",
];

/// Movie title fragments (Movies dataset).
pub const MOVIE_WORDS: &[&str] = &[
    "Midnight",
    "Crimson",
    "Forgotten",
    "Silent",
    "Electric",
    "Golden",
    "Shattered",
    "Hidden",
    "Burning",
    "Frozen",
    "Savage",
    "Gentle",
    "Distant",
    "Broken",
    "Rising",
    "Falling",
    "Eternal",
    "Final",
    "First",
    "Lost",
    "Lucky",
    "Paper",
    "Glass",
    "Iron",
    "Velvet",
    "Neon",
];

/// Movie title nouns.
pub const MOVIE_NOUNS: &[&str] = &[
    "Empire",
    "Garden",
    "Promise",
    "Horizon",
    "Symphony",
    "Voyage",
    "Kingdom",
    "Echo",
    "Shadow",
    "River",
    "Mirror",
    "Harvest",
    "Tempest",
    "Lantern",
    "Crossing",
    "Covenant",
    "Reckoning",
    "Odyssey",
    "Carnival",
    "Labyrinth",
];

/// Movie genres.
pub const MOVIE_GENRES: &[&str] = &[
    "Drama",
    "Comedy",
    "Action",
    "Thriller",
    "Romance",
    "Horror",
    "Science Fiction",
    "Documentary",
    "Animation",
    "Crime",
    "Adventure",
    "Fantasy",
    "Mystery",
    "Western",
];

/// Director/creator names (Movies dataset) — includes the multi-part
/// credits whose partial loss §5.5 describes.
pub const MOVIE_CREATORS: &[&str] = &[
    "Roger Kumble",
    "Choderlos de Laclos, Roger Kumble",
    "Sofia Marchetti",
    "Akira Tanaka, Sofia Marchetti",
    "Len Wiseman",
    "Kurt Wimmer, Len Wiseman",
    "Jane Doe",
    "María Álvarez",
    "François Truffaud",
    "Björn Askelsson",
    "Paweł Kowalski",
    "José García, Ana López",
    "Renée Dubois",
    "Søren Kierkegaardsen",
    "Zoë Quinn",
    "Héctor Ramírez",
];

/// Journal titles (Rayyan dataset).
pub const JOURNALS: &[&str] = &[
    "The Lancet",
    "Journal of Clinical Oncology",
    "New England Journal of Medicine",
    "Annals of Internal Medicine",
    "British Medical Journal",
    "Cochrane Database of Systematic Reviews",
    "Journal of the American Medical Association",
    "Pediatrics",
    "Critical Care Medicine",
    "Journal of Epidemiology & Community Health",
    "American Journal of Public Health",
    "Clinical Infectious Diseases",
    "Archives of Internal Medicine",
    "European Heart Journal",
    "Diabetes Care",
];

/// Scientific article title fragments (Rayyan dataset).
pub const ARTICLE_WORDS: &[&str] = &[
    "randomized",
    "controlled",
    "trial",
    "systematic",
    "review",
    "meta-analysis",
    "cohort",
    "efficacy",
    "safety",
    "treatment",
    "intervention",
    "outcomes",
    "prevalence",
    "incidence",
    "screening",
    "therapy",
    "diagnosis",
    "management",
    "prevention",
    "mortality",
    "morbidity",
    "double-blind",
    "placebo",
    "follow-up",
    "risk",
    "factors",
];

/// Month abbreviations used by Rayyan's date formats.
pub const MONTHS_ABBR: &[&str] = &[
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// Uniformly pick one entry from a non-empty list.
///
/// Centralizes the generators' vocabulary sampling so the non-emptiness
/// argument lives in exactly one place: every list in this module (and
/// every ad-hoc list the generators pass) is a non-empty literal.
pub fn pick<'a, T, R: rand::Rng>(rng: &mut R, list: &'a [T]) -> &'a T {
    use rand::seq::SliceRandom;
    // etsb: allow(no-unwrap) -- callers pass non-empty literal lists; see doc above.
    list.choose(rng).expect("vocab::pick: empty list")
}
