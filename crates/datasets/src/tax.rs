//! Tax generator: 200,000 x 15 at full scale, error rate 0.04,
//! T + FI + VAD.
//!
//! §5.1: typos in f_name ('Jun"ichi' rather than 'Jun'ichi') and city
//! ('ARCHIE-*' rather than 'ARCHIE'), formatting issues in zip ('01907'
//! rather than '1907' — note the original dataset treats the *added*
//! leading zero as the error) and rates ('7.0' rather than '7'), VAD
//! between state/city and marital_status/has_child.

use crate::corrupt::{add_decimal_suffix, ErrorKind, Injector};
use crate::vocab;
use crate::{Dataset, GenConfig};
use etsb_table::Table;
use rand::rngs::StdRng;
use rand::Rng;

/// Column indices into [`COLUMNS`], fixed at compile time so the error
/// injector below needs no runtime name lookup. The
/// `column_constants_match_names` test pins each one to its name.
const C_FNAME: usize = 0;
const C_LNAME: usize = 1;
const C_CITY: usize = 5;
const C_STATE: usize = 6;
const C_ZIP: usize = 7;
const C_MARITAL: usize = 8;
const C_CHILD: usize = 9;
const C_RATE: usize = 11;

const COLUMNS: [&str; 15] = [
    "f_name",
    "l_name",
    "gender",
    "area_code",
    "phone",
    "city",
    "state",
    "zip",
    "marital_status",
    "has_child",
    "salary",
    "rate",
    "single_exemp",
    "married_exemp",
    "child_exemp",
];

/// Name-targeted typo: quote swap (Jun'ichi → Jun"ichi) or appended
/// garbage (ARCHIE → ARCHIE-*), the two corruptions §5.1 quotes.
fn name_typo(value: &str, rng: &mut StdRng) -> Option<String> {
    if value.is_empty() {
        return None;
    }
    if value.contains('\'') {
        Some(value.replacen('\'', "\"", 1))
    } else if rng.gen_bool(0.5) {
        Some(format!("{value}-*"))
    } else {
        crate::corrupt::typo(value, rng)
    }
}

pub(crate) fn generate(cfg: &GenConfig) -> (Table, Table) {
    let mut rng = cfg.rng(Dataset::Tax);
    let n_rows = cfg.rows(Dataset::Tax.paper_rows());

    let mut clean = Table::with_columns(&COLUMNS);
    for _ in 0..n_rows {
        let (city, state) = *vocab::pick(&mut rng, vocab::CITY_STATE);
        let married = rng.gen_bool(0.5);
        let has_child = married && rng.gen_bool(0.5);
        let salary = rng.gen_range(20_000..200_000);
        clean.push_row(vec![
            vocab::pick(&mut rng, vocab::FIRST_NAMES).to_uppercase(),
            vocab::pick(&mut rng, vocab::LAST_NAMES).to_uppercase(),
            if rng.gen_bool(0.5) {
                "M".to_string()
            } else {
                "F".to_string()
            },
            rng.gen_range(200..990).to_string(),
            format!(
                "{}-{:04}",
                rng.gen_range(200..990),
                rng.gen_range(0..10_000)
            ),
            city.to_uppercase(),
            state.to_string(),
            format!("{:05}", rng.gen_range(1000..99_999)),
            if married {
                "M".to_string()
            } else {
                "S".to_string()
            },
            if has_child {
                "Y".to_string()
            } else {
                "N".to_string()
            },
            salary.to_string(),
            rng.gen_range(2..9).to_string(),
            rng.gen_range(0..8000).to_string(),
            if married {
                rng.gen_range(1000..9000).to_string()
            } else {
                "0".to_string()
            },
            if has_child {
                rng.gen_range(500..4000).to_string()
            } else {
                "0".to_string()
            },
        ]);
    }

    let mut dirty = clean.clone();
    let mix = [
        (ErrorKind::Typo, 0.40),
        (ErrorKind::FormattingIssue, 0.40),
        (ErrorKind::ViolatedDependency, 0.20),
    ];
    Injector::new(
        n_rows * COLUMNS.len(),
        Dataset::Tax.paper_error_rate(),
        &mix,
        &mut rng,
    )
    .run(&mut dirty, |kind, _r, c, old, rng| match kind {
        ErrorKind::Typo => {
            if c == C_FNAME || c == C_LNAME || c == C_CITY {
                name_typo(old, rng)
            } else {
                None
            }
        }
        ErrorKind::FormattingIssue => {
            if c == C_ZIP {
                crate::corrupt::strip_leading_zero(old).or_else(|| Some(format!("0{old}")))
            } else if c == C_RATE {
                add_decimal_suffix(old)
            } else {
                None
            }
        }
        ErrorKind::ViolatedDependency => {
            if c == C_STATE {
                let (_, wrong) = vocab::pick(rng, vocab::CITY_STATE);
                (*wrong != old).then(|| wrong.to_string())
            } else if c == C_MARITAL {
                Some(if old == "M" {
                    "S".to_string()
                } else {
                    "M".to_string()
                })
            } else if c == C_CHILD {
                Some(if old == "Y" {
                    "N".to_string()
                } else {
                    "Y".to_string()
                })
            } else {
                None
            }
        }
        _ => None,
    });
    (dirty, clean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsb_table::CellFrame;
    use rand::SeedableRng;

    #[test]
    fn column_constants_match_names() {
        for (idx, name) in [
            (C_FNAME, "f_name"),
            (C_LNAME, "l_name"),
            (C_CITY, "city"),
            (C_STATE, "state"),
            (C_ZIP, "zip"),
            (C_MARITAL, "marital_status"),
            (C_CHILD, "has_child"),
            (C_RATE, "rate"),
        ] {
            assert_eq!(COLUMNS[idx], name, "constant for {name} points at {idx}");
        }
    }

    #[test]
    fn name_typo_matches_paper_examples() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(name_typo("JUN'ICHI", &mut rng).unwrap(), "JUN\"ICHI");
        let archie = name_typo("ARCHIE", &mut rng);
        assert!(archie.is_some());
    }

    #[test]
    fn zip_errors_change_width() {
        let cfg = GenConfig {
            scale: 0.01,
            seed: 31,
        };
        let (dirty, clean) = generate(&cfg);
        let frame = CellFrame::merge(&dirty, &clean).unwrap();
        let zip_errors = frame
            .cells()
            .iter()
            .filter(|c| c.label && c.attr == 7)
            .collect::<Vec<_>>();
        assert!(!zip_errors.is_empty());
        assert!(zip_errors
            .iter()
            .all(|c| c.value_x.len() != c.value_y.len()));
    }

    #[test]
    fn full_scale_row_count_honours_scale() {
        let cfg = GenConfig {
            scale: 0.001,
            seed: 32,
        };
        let (dirty, _) = generate(&cfg);
        assert_eq!(dirty.n_rows(), 200);
    }
}
