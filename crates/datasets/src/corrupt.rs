//! Error-injection machinery shared by all generators.
//!
//! A generator first produces a *clean* table, then drives an [`Injector`]
//! that corrupts a target fraction of cells. Each corruption is performed
//! by a dataset-specific closure which returns the dirty replacement (or
//! `None` when the chosen cell cannot host the chosen error kind); the
//! injector guarantees that counted corruptions actually changed the
//! value, so the realized error rate matches the paper's Table 2.

use etsb_table::Table;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::Serialize;

/// The paper's error taxonomy (taken from Raha, see Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize)]
pub enum ErrorKind {
    /// `MV` — value replaced by the empty string or a `NaN` marker.
    MissingValue,
    /// `T` — character-level typo.
    Typo,
    /// `FI` — same semantic value, wrong surface form.
    FormattingIssue,
    /// `VAD` — value conflicts with another attribute of the same tuple.
    ViolatedDependency,
}

impl ErrorKind {
    /// Short code used in Table 2 ("MV", "T", "FI", "VAD").
    pub fn code(self) -> &'static str {
        match self {
            ErrorKind::MissingValue => "MV",
            ErrorKind::Typo => "T",
            ErrorKind::FormattingIssue => "FI",
            ErrorKind::ViolatedDependency => "VAD",
        }
    }
}

/// Drives corruption of a clean table into a dirty copy.
#[derive(Debug)]
pub struct Injector<'a> {
    rng: &'a mut StdRng,
    /// (cell count to corrupt per kind) — derived from rate and mix.
    plan: Vec<(ErrorKind, usize)>,
}

impl<'a> Injector<'a> {
    /// Plan corruption of `rate * n_cells` cells, split across `mix`
    /// according to its weights (which need not sum to 1; they are
    /// normalized).
    ///
    /// # Panics
    /// If `rate` is outside `[0, 1]` or `mix` is empty / all-zero.
    pub fn new(n_cells: usize, rate: f64, mix: &[(ErrorKind, f64)], rng: &'a mut StdRng) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "Injector: rate {rate} outside [0,1]"
        );
        assert!(!mix.is_empty(), "Injector: empty error mix");
        let total_w: f64 = mix.iter().map(|(_, w)| w).sum();
        assert!(total_w > 0.0, "Injector: zero-weight error mix");
        let total_errors = (n_cells as f64 * rate).round() as usize;
        let mut plan = Vec::with_capacity(mix.len());
        let mut assigned = 0usize;
        for (i, (kind, w)) in mix.iter().enumerate() {
            let count = if i + 1 == mix.len() {
                total_errors - assigned
            } else {
                ((total_errors as f64) * (w / total_w)).round() as usize
            };
            let count = count.min(total_errors - assigned);
            assigned += count;
            plan.push((*kind, count));
        }
        Self { rng, plan }
    }

    /// Corrupt `dirty` in place. For each planned error the injector picks
    /// uniformly random cells and asks `corrupt(kind, row, col, value,
    /// rng)` for a replacement until one cell accepts (returns
    /// `Some(new_value)` with `new_value != value`). Cells already
    /// corrupted are never corrupted twice.
    ///
    /// Returns the per-kind counts actually applied (a kind can fall
    /// short only if the table runs out of eligible cells — generators
    /// size their domains so this does not happen, and tests assert it).
    pub fn run(
        mut self,
        dirty: &mut Table,
        mut corrupt: impl FnMut(ErrorKind, usize, usize, &str, &mut StdRng) -> Option<String>,
    ) -> Vec<(ErrorKind, usize)> {
        let _span = etsb_obs::span("corrupt");
        let (n_rows, n_cols) = dirty.shape();
        let mut untouched: Vec<(usize, usize)> = (0..n_rows)
            .flat_map(|r| (0..n_cols).map(move |c| (r, c)))
            .collect();
        untouched.shuffle(self.rng);

        let mut applied = Vec::with_capacity(self.plan.len());
        for (kind, want) in std::mem::take(&mut self.plan) {
            let mut done = 0usize;
            let mut skipped: Vec<(usize, usize)> = Vec::new();
            while done < want {
                let Some((r, c)) = untouched.pop() else { break };
                let old = dirty.cell(r, c).to_string();
                match corrupt(kind, r, c, &old, self.rng) {
                    Some(new) if new != old => {
                        dirty.set_cell(r, c, new);
                        done += 1;
                    }
                    _ => skipped.push((r, c)),
                }
            }
            // Cells this kind could not corrupt stay available for the
            // next kinds; reinsert at random positions.
            for cell in skipped {
                let at = self.rng.gen_range(0..=untouched.len());
                untouched.insert(at, cell);
            }
            applied.push((kind, done));
        }
        if etsb_obs::enabled() {
            for (kind, done) in &applied {
                etsb_obs::emit(
                    "counter",
                    vec![
                        ("name", etsb_obs::FieldValue::from("corrupt_applied")),
                        ("kind", etsb_obs::FieldValue::from(kind.code())),
                        ("value", etsb_obs::FieldValue::from(*done)),
                    ],
                );
            }
        }
        applied
    }
}

// ---------------------------------------------------------------------
// Shared corruption operators.
// ---------------------------------------------------------------------

/// Replace a value with a missing-value marker (`""` or `"NaN"`).
pub fn missing_value(rng: &mut StdRng) -> String {
    if rng.gen_bool(0.5) {
        String::new()
    } else {
        "NaN".to_string()
    }
}

/// Classic typo: substitute, duplicate, delete or transpose one character.
/// Returns `None` for empty input.
pub fn typo(value: &str, rng: &mut StdRng) -> Option<String> {
    let chars: Vec<char> = value.chars().collect();
    if chars.is_empty() {
        return None;
    }
    let pos = rng.gen_range(0..chars.len());
    let mut out = chars.clone();
    match rng.gen_range(0..4u8) {
        0 => {
            // Substitute with a nearby lowercase letter.
            let repl = (b'a' + rng.gen_range(0..26u8)) as char;
            if out[pos] == repl {
                return None;
            }
            out[pos] = repl;
        }
        1 => out.insert(pos, out[pos]),
        2 => {
            if out.len() == 1 {
                return None;
            }
            out.remove(pos);
        }
        _ => {
            if pos + 1 >= out.len() || out[pos] == out[pos + 1] {
                return None;
            }
            out.swap(pos, pos + 1);
        }
    }
    Some(out.into_iter().collect())
}

/// Hospital-style typo: replace one or two alphabetic characters with
/// `x` — the paper's example "hexrt fxilure" corrupts two ("Birmingxam"
/// corrupts one).
pub fn x_typo(value: &str, rng: &mut StdRng) -> Option<String> {
    let chars: Vec<char> = value.chars().collect();
    let mut candidates: Vec<usize> = chars
        .iter()
        .enumerate()
        .filter(|(_, c)| c.is_ascii_alphabetic() && **c != 'x' && **c != 'X')
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    candidates.shuffle(rng);
    let n = if candidates.len() >= 2 && rng.gen_bool(0.6) {
        2
    } else {
        1
    };
    let mut out = chars;
    for &pos in candidates.iter().take(n) {
        out[pos] = 'x';
    }
    Some(out.into_iter().collect())
}

/// Insert thousands separators into an integer string
/// (`"379998"` → `"379,998"`). Returns `None` for short or non-numeric
/// input.
pub fn add_thousands_separators(value: &str) -> Option<String> {
    if value.len() < 4 || !value.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let bytes = value.as_bytes();
    let mut out = String::with_capacity(value.len() + value.len() / 3);
    let lead = bytes.len() % 3;
    for (i, b) in bytes.iter().enumerate() {
        if i != 0 && (i + 3 - lead).is_multiple_of(3) {
            out.push(',');
        }
        out.push(*b as char);
    }
    Some(out)
}

/// Strip a leading zero (`"01907"` → `"1907"`).
pub fn strip_leading_zero(value: &str) -> Option<String> {
    let rest = value.strip_prefix('0')?;
    if rest.is_empty() {
        return None;
    }
    Some(rest.to_string())
}

/// Append a decimal suffix (`"7"` → `"7.0"`, `"8"` → `"8.0"`).
pub fn add_decimal_suffix(value: &str) -> Option<String> {
    if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    Some(format!("{value}.0"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsb_tensor_free::seeded;

    /// Tiny local helper so these tests do not depend on etsb-tensor.
    mod etsb_tensor_free {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        pub fn seeded(seed: u64) -> StdRng {
            StdRng::seed_from_u64(seed)
        }
    }

    fn table(n_rows: usize, n_cols: usize) -> Table {
        let cols: Vec<String> = (0..n_cols).map(|c| format!("c{c}")).collect();
        let mut t = Table::new(cols);
        for r in 0..n_rows {
            t.push_row((0..n_cols).map(|c| format!("v{r}_{c}")).collect());
        }
        t
    }

    #[test]
    fn injector_hits_requested_rate() {
        let clean = table(100, 5);
        let mut dirty = clean.clone();
        let mut rng = seeded(1);
        let plan = Injector::new(
            500,
            0.10,
            &[(ErrorKind::Typo, 0.5), (ErrorKind::MissingValue, 0.5)],
            &mut rng,
        );
        let applied = plan.run(&mut dirty, |kind, _, _, old, rng| match kind {
            ErrorKind::Typo => typo(old, rng),
            ErrorKind::MissingValue => Some(missing_value(rng)),
            _ => None,
        });
        let total: usize = applied.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 50);
        let mut diff = 0;
        for r in 0..100 {
            for c in 0..5 {
                if dirty.cell(r, c) != clean.cell(r, c) {
                    diff += 1;
                }
            }
        }
        assert_eq!(diff, 50);
    }

    #[test]
    fn injector_zero_rate_is_noop() {
        let clean = table(10, 3);
        let mut dirty = clean.clone();
        let mut rng = seeded(2);
        let applied = Injector::new(30, 0.0, &[(ErrorKind::Typo, 1.0)], &mut rng)
            .run(&mut dirty, |_, _, _, old, rng| typo(old, rng));
        assert_eq!(applied[0].1, 0);
        assert_eq!(dirty, clean);
    }

    #[test]
    fn injector_never_double_corrupts() {
        // Corrupt 100% of cells: every cell must differ, and each exactly once.
        let clean = table(20, 2);
        let mut dirty = clean.clone();
        let mut rng = seeded(3);
        Injector::new(40, 1.0, &[(ErrorKind::MissingValue, 1.0)], &mut rng)
            .run(&mut dirty, |_, _, _, _, rng| Some(missing_value(rng)));
        for r in 0..20 {
            for c in 0..2 {
                assert_ne!(dirty.cell(r, c), clean.cell(r, c));
            }
        }
    }

    #[test]
    fn typo_changes_value() {
        let mut rng = seeded(4);
        for _ in 0..200 {
            if let Some(t) = typo("hello world", &mut rng) {
                assert_ne!(t, "hello world");
            }
        }
        assert_eq!(typo("", &mut rng), None);
    }

    #[test]
    fn x_typo_injects_x() {
        let mut rng = seeded(5);
        let out = x_typo("heart failure", &mut rng).unwrap();
        assert_ne!(out, "heart failure");
        assert_eq!(out.len(), "heart failure".len());
        assert!(out.contains('x'));
        assert_eq!(x_typo("12345", &mut rng), None);
    }

    #[test]
    fn thousands_separators() {
        assert_eq!(add_thousands_separators("379998").unwrap(), "379,998");
        assert_eq!(add_thousands_separators("1234567").unwrap(), "1,234,567");
        assert_eq!(add_thousands_separators("999"), None);
        assert_eq!(add_thousands_separators("12a4"), None);
    }

    #[test]
    fn leading_zero_and_decimal() {
        assert_eq!(strip_leading_zero("01907").unwrap(), "1907");
        assert_eq!(strip_leading_zero("1907"), None);
        assert_eq!(strip_leading_zero("0"), None);
        assert_eq!(add_decimal_suffix("7").unwrap(), "7.0");
        assert_eq!(add_decimal_suffix("7.5"), None);
    }

    #[test]
    fn error_kind_codes() {
        assert_eq!(ErrorKind::MissingValue.code(), "MV");
        assert_eq!(ErrorKind::ViolatedDependency.code(), "VAD");
    }
}
