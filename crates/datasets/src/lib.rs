//! # etsb-datasets
//!
//! Seeded synthetic generators for the six benchmark datasets of the
//! ETSB-RNN paper (Beers, Flights, Hospital, Movies, Rayyan, Tax).
//!
//! The originals are distributed with the Raha repository and are not
//! available in this offline environment, so each generator synthesizes a
//! dirty/clean pair with the *same shape statistics* the paper's Table 2
//! reports — row/column counts, cell error rate, approximate alphabet
//! size — and the same error-type mix (missing values, typos, formatting
//! issues, violated attribute dependencies), including every idiosyncrasy
//! the paper's error analysis (§5.5) calls out:
//!
//! * Hospital typos inject the character `x` ("hexrt fxilure") and are
//!   trivially learnable;
//! * Flights carries multi-source departure/arrival conflicts that are
//!   character-plausible and therefore invisible to a character-level
//!   model (its known failure mode);
//! * Movies has `NaN` Duration cells that are *sometimes* the correct
//!   ground truth (the ambiguity §5.5 describes);
//! * Tax truncates leading zeros from ZIP codes and sprinkles typos into
//!   proper names.
//!
//! Every generator is deterministic in its `(scale, seed)` arguments.
//!
//! ```
//! use etsb_datasets::{Dataset, GenConfig};
//! let pair = Dataset::Beers.generate(&GenConfig { scale: 0.05, seed: 7 }).expect("dataset generation");
//! assert_eq!(pair.dirty.shape(), pair.clean.shape());
//! ```

#![warn(missing_docs)]

mod beers;
mod corrupt;
mod dataset;
mod flights;
mod hospital;
mod movies;
mod rayyan;
mod tax;
mod vocab;

pub use corrupt::{ErrorKind, Injector};
pub use dataset::{Dataset, DatasetPair, GenConfig};
