//! Rayyan generator: 1,000 x 10, error rate 0.09, MV + T + FI + VAD.
//!
//! §5.1: formatting issues in journal_issn ('Mar-22' rather than
//! '22-Mar') and article_pagination ('70-6' rather than 'Jun-70'),
//! missing values in article_jissue, typos in journal/article titles.
//! §5.5 notes the errors are "mostly due to non-recognized special
//! characters", so titles carry a spread of unicode punctuation.

use crate::corrupt::{missing_value, typo, ErrorKind, Injector};
use crate::vocab;
use crate::{Dataset, GenConfig};
use etsb_table::{Table, TableError};
use rand::rngs::StdRng;
use rand::Rng;

/// Encoding damage: replace one character with a mojibake sequence — the
/// "non-recognized special characters" the paper's error analysis blames
/// for most Rayyan errors.
fn mojibake(value: &str, rng: &mut StdRng) -> Option<String> {
    const GARBAGE: [&str; 6] = ["\u{fffd}", "Ã©", "â€™", "Ã¤", "â€œ", "Â±"];
    let chars: Vec<char> = value.chars().collect();
    if chars.is_empty() {
        return None;
    }
    let pos = rng.gen_range(0..chars.len());
    let g = GARBAGE[rng.gen_range(0..GARBAGE.len())];
    let mut out: String = chars[..pos].iter().collect();
    out.push_str(g);
    out.extend(&chars[pos + 1..]);
    (out != value).then_some(out)
}

const COLUMNS: [&str; 10] = [
    "article_id",
    "article_title",
    "journal_title",
    "journal_issn",
    "article_jvolume",
    "article_jissue",
    "article_pagination",
    "author_list",
    "journal_abbreviation",
    "article_language",
];

pub(crate) fn generate(cfg: &GenConfig) -> Result<(Table, Table), TableError> {
    let mut rng = cfg.rng(Dataset::Rayyan);
    let n_rows = cfg.rows(Dataset::Rayyan.paper_rows());

    let languages = ["eng", "fre", "ger", "spa", "ita", "jpn"];
    let decorations = ["—", "–", "“", "”", "‘", "’", "±", "≥", "≤", "µ", "α", "β"];

    let mut clean = Table::with_columns(&COLUMNS);
    for i in 0..n_rows {
        let w = |rng: &mut rand::rngs::StdRng| vocab::pick(rng, vocab::ARTICLE_WORDS).to_string();
        let deco = vocab::pick(&mut rng, &decorations);
        let title = format!(
            "A {} {} of {} {} {deco} a {} study",
            w(&mut rng),
            w(&mut rng),
            w(&mut rng),
            w(&mut rng),
            w(&mut rng)
        );
        let authors = format!(
            "{}, {}. and {}, {}.",
            vocab::pick(&mut rng, vocab::LAST_NAMES),
            vocab::pick(&mut rng, vocab::FIRST_NAMES)
                .chars()
                .next()
                .unwrap_or('A'),
            vocab::pick(&mut rng, vocab::LAST_NAMES),
            vocab::pick(&mut rng, vocab::FIRST_NAMES)
                .chars()
                .next()
                .unwrap_or('B'),
        );
        let journal = vocab::pick(&mut rng, vocab::JOURNALS);
        let day = rng.gen_range(1..=28);
        let month = vocab::pick(&mut rng, vocab::MONTHS_ABBR);
        let p_start = rng.gen_range(1..900);
        clean.push_row(vec![
            (2_000_000 + i).to_string(),
            title,
            journal.to_string(),
            format!("{day}-{month}"),
            rng.gen_range(1..80).to_string(),
            rng.gen_range(1..12).to_string(),
            format!("{p_start}-{}", p_start + rng.gen_range(2..30)),
            authors,
            journal
                .split(' ')
                .map(|w| &w[..1.min(w.len())])
                .collect::<Vec<_>>()
                .join(""),
            vocab::pick(&mut rng, &languages).to_string(),
        ]);
    }

    let mut dirty = clean.clone();
    let col = |name: &str| {
        COLUMNS
            .iter()
            .position(|c| *c == name)
            .ok_or_else(|| TableError::UnknownColumn(name.to_string()))
    };
    let (c_title, c_journal, c_issn, c_issue, c_pages, c_volume) = (
        col("article_title")?,
        col("journal_title")?,
        col("journal_issn")?,
        col("article_jissue")?,
        col("article_pagination")?,
        col("article_jvolume")?,
    );

    let mix = [
        (ErrorKind::FormattingIssue, 0.40),
        (ErrorKind::Typo, 0.25),
        (ErrorKind::MissingValue, 0.25),
        (ErrorKind::ViolatedDependency, 0.10),
    ];
    Injector::new(
        n_rows * COLUMNS.len(),
        Dataset::Rayyan.paper_error_rate(),
        &mix,
        &mut rng,
    )
    .run(&mut dirty, |kind, _r, c, old, rng| match kind {
        ErrorKind::FormattingIssue => {
            if c == c_issn {
                // '22-Mar' → 'Mar-22' (the Excel-style date flip).
                let (day, month) = old.split_once('-')?;
                Some(format!("{month}-{day}"))
            } else if c == c_pages {
                // '70-76' → '70-6' (truncated page range).
                let (start, end) = old.split_once('-')?;
                let shortened = &end[end.len().saturating_sub(1)..];
                let candidate = format!("{start}-{shortened}");
                (candidate != old).then_some(candidate)
            } else {
                None
            }
        }
        ErrorKind::Typo => {
            if c == c_title || c == c_journal {
                // §5.5: "mostly due to non-recognized special
                // characters" — encoding damage (mojibake), with a
                // minority of plain character typos.
                if rng.gen_bool(0.7) {
                    mojibake(old, rng)
                } else {
                    typo(old, rng)
                }
            } else {
                None
            }
        }
        ErrorKind::MissingValue => {
            if c == c_issue || c == c_volume {
                Some(missing_value(rng))
            } else {
                None
            }
        }
        ErrorKind::ViolatedDependency => {
            if c == c_journal {
                let other = vocab::pick(rng, vocab::JOURNALS);
                (*other != old).then(|| other.to_string())
            } else {
                None
            }
        }
    });
    Ok((dirty, clean))
}

#[cfg(test)]
mod tests {
    use super::*;
    use etsb_table::CellFrame;

    #[test]
    fn issn_flip_errors_present() {
        let cfg = GenConfig {
            scale: 0.2,
            seed: 21,
        };
        let (dirty, clean) = generate(&cfg).expect("generate");
        let frame = CellFrame::merge(&dirty, &clean).unwrap();
        let flipped = frame
            .cells()
            .iter()
            .filter(|c| {
                c.label
                    && c.attr == 3
                    && c.value_x
                        .chars()
                        .next()
                        .is_some_and(|ch| ch.is_ascii_alphabetic())
            })
            .count();
        assert!(flipped > 0, "expected Mar-22 style flips");
    }

    #[test]
    fn special_characters_in_alphabet() {
        let cfg = GenConfig {
            scale: 0.1,
            seed: 22,
        };
        let (dirty, clean) = generate(&cfg).expect("generate");
        let frame = CellFrame::merge(&dirty, &clean).unwrap();
        // Unicode decorations should push the alphabet near the paper's 101.
        assert!(
            frame.distinct_chars() > 60,
            "alphabet {}",
            frame.distinct_chars()
        );
    }
}
